"""Trace sinks: where :class:`~repro.observability.Tracer` events go.

Events are flat dicts (see ``docs/observability.md`` for the schema):

* ``{"ev": "enter", "span": ..., "seq": ..., "depth": ..., "t": ..., "ncd": ...}``
* ``{"ev": "exit", ...same..., "dt": ..., "dncd": ...}``
* ``{"ev": "summary", "elapsed_seconds": ..., "ncd_total": ...,
  "ncd_by_site": {...}, "spans": {...}}`` — once, from ``Tracer.close()``.

Three sinks ship: :class:`JsonlSink` (one JSON object per line, the
machine-readable trace), :class:`SummarySink` (end-of-run table on a
stream), and :class:`ListSink` (in-memory, for tests).
"""

from __future__ import annotations

import json
from typing import IO, Any

__all__ = ["TraceSink", "JsonlSink", "SummarySink", "ListSink", "format_summary"]


class TraceSink:
    """Interface: receives every tracer event, then a ``close()``."""

    def emit(self, event: dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (default: nothing)."""


class ListSink(TraceSink):
    """Collects events in memory — the sink the test suite inspects."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def emit(self, event: dict[str, Any]) -> None:
        self.events.append(dict(event))


class JsonlSink(TraceSink):
    """Writes one compact JSON object per event line.

    Parameters
    ----------
    target:
        A path (opened and owned by the sink) or an open text stream
        (flushed but not closed).
    """

    def __init__(self, target: str | IO[str]):
        if isinstance(target, str):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False

    def emit(self, event: dict[str, Any]) -> None:
        self._file.write(json.dumps(event, separators=(",", ":")) + "\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns:
            self._file.close()


def format_summary(summary: dict[str, Any]) -> str:
    """Render a ``Tracer.summary()`` dict as an aligned two-table report."""
    lines = [
        f"elapsed: {summary.get('elapsed_seconds', 0.0):.3f}s, "
        f"distance calls: {summary.get('ncd_total', 0)}"
    ]
    by_site = summary.get("ncd_by_site") or {}
    if by_site:
        total = max(sum(by_site.values()), 1)
        width = max(len(site) for site in by_site)
        lines.append("NCD by site (disjoint; sums to the total):")
        for site, calls in sorted(by_site.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {site:<{width}}  {calls:>12}  {100.0 * calls / total:5.1f}%")
    spans = summary.get("spans") or {}
    if spans:
        width = max(len(name) for name in spans)
        lines.append("spans (inclusive; nested spans double-count):")
        for name, agg in sorted(spans.items(), key=lambda kv: -kv[1]["seconds"]):
            lines.append(
                f"  {name:<{width}}  x{int(agg['count']):<8} "
                f"{agg['seconds']:>9.3f}s  {int(agg['ncd']):>12} calls"
            )
    return "\n".join(lines)


class SummarySink(TraceSink):
    """Prints the final ``summary`` event as a table when the trace closes."""

    def __init__(self, stream: IO[str]):
        self._stream = stream
        self._summary: dict[str, Any] | None = None

    def emit(self, event: dict[str, Any]) -> None:
        if event.get("ev") == "summary":
            self._summary = dict(event)

    def close(self) -> None:
        if self._summary is not None:
            self._stream.write(format_summary(self._summary) + "\n")
