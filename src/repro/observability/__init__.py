"""Observability: phase tracing, NCD site attribution, and run statistics.

The paper evaluates everything in NCD — the number of calls to the
distance function — so this package makes NCD *legible*: a
:class:`Tracer` records nestable phase spans (wall time + NCD deltas)
and charges every counted distance call to the innermost open site via
the :class:`~repro.metrics.base.CallLedger` living in
:mod:`repro.metrics.base`; sinks stream the span events as JSON lines or
render an end-of-run table; :class:`StatsSnapshot` packages tree shape,
cache behaviour, and the attribution histogram into one record.

Tracing is opt-in: every tree, policy, and driver defaults to the
:data:`NULL_TRACER` singleton, whose spans are one shared no-op context
manager — the disabled path allocates nothing and performs no extra
distance calls (the overhead regression test pins this).

See ``docs/observability.md`` for the site taxonomy and trace schema.
"""

from __future__ import annotations

from repro.observability.sinks import (
    JsonlSink,
    ListSink,
    SummarySink,
    TraceSink,
    format_summary,
)
from repro.observability.stats import StatsSnapshot
from repro.observability.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceSink",
    "JsonlSink",
    "SummarySink",
    "ListSink",
    "format_summary",
    "StatsSnapshot",
]
