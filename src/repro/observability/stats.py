"""StatsSnapshot: one structured picture of a tree, its metric, and a trace.

The CF*-tree, the distance function, the cache, and the tracer each hold a
piece of the run's story; :class:`StatsSnapshot` collects them into a
single JSON-compatible record — what ``repro stats <checkpoint>`` prints
and what the benchmark harness embeds per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.metrics.base import DistanceFunction
from repro.metrics.cache import CachedDistance

__all__ = ["StatsSnapshot"]


def _find_cache(metric: Any) -> CachedDistance | None:
    """Walk a wrapper chain (guarded(cached(...)), ...) to the first cache."""
    seen = 0
    while metric is not None and seen < 10:
        if isinstance(metric, CachedDistance):
            return metric
        metric = getattr(metric, "inner", None)
        seen += 1
    return None


@dataclass
class StatsSnapshot:
    """Point-in-time statistics of a (possibly traced) pre-clustering run."""

    #: Objects inserted into the tree so far.
    n_objects: int = 0
    #: Tree nodes (leaf + non-leaf).
    n_nodes: int = 0
    #: Leaf nodes.
    n_leaves: int = 0
    #: Leaf-level sub-clusters.
    n_clusters: int = 0
    #: Tree height (a lone leaf root has height 1).
    height: int = 0
    #: Current threshold requirement ``T``.
    threshold: float = 0.0
    #: Rebuilds performed (Type II re-insertion passes).
    n_rebuilds: int = 0
    #: Node budget ``M`` (``None`` = unbounded).
    max_nodes: int | None = None
    #: ``n_nodes / max_nodes`` — how close the tree is to its next rebuild.
    m_pressure: float | None = None
    #: Outlier clusters currently parked (BIRCH-style outlier handling).
    n_outliers_parked: int = 0
    #: The metric's NCD counter (true evaluations).
    ncd_total: int = 0
    #: Site-attributed NCD (empty unless a tracer/ledger was supplied).
    ncd_by_site: dict[str, int] = field(default_factory=dict)
    #: Cache hits (``None`` when no :class:`CachedDistance` is in the chain).
    cache_hits: int | None = None
    #: Cache misses == true evaluations through the cache.
    cache_misses: int | None = None
    #: Full LRU cache counters (hits/misses/evictions/size/maxsize/
    #: hit_rate; ``None`` when no :class:`CachedDistance` is in the chain).
    cache: dict[str, Any] | None = None
    #: Query-serving counters of a :class:`repro.index.MetricIndex`
    #: (:meth:`~repro.index.IndexQueryStats.as_dict` plus the bound-cache
    #: record; ``None`` until :meth:`apply_index` runs).
    query: dict[str, Any] | None = None
    #: Pruned-routing counters (:class:`repro.core.routing.PruningStats`
    #: as a dict; ``None`` when the policy has no pruning engine).
    pruning: dict[str, int] | None = None
    #: CF* slab-arena occupancy and memory accounting
    #: (:meth:`repro.core.arena.FeatureArena.snapshot`; ``None`` when the
    #: policy keeps no slab arena).
    slab: dict[str, Any] | None = None
    #: Shard attempts retried during a fault-tolerant parallel build.
    shards_retried: int = 0
    #: Worker processes that crashed or were killed for timing out.
    workers_crashed: int = 0
    #: Shards that resumed from a per-shard checkpoint.
    shards_resumed: int = 0
    #: Total exponential-backoff delay scheduled between shard retries.
    backoff_seconds_total: float = 0.0
    #: Subsamples searched by a CLARA-style sampled global phase.
    global_samples: int = 0
    #: Worker-side distance calls across those sample searches.
    global_sample_ncd: int = 0
    #: Aggregate worker wall-clock seconds across the sample searches.
    global_sample_seconds: float = 0.0
    #: Per-sample diagnostics of the sampled global phase (size, NCD,
    #: wall, costs, attempts), in sample order.
    global_phase_samples: list[dict] = field(default_factory=list)

    @classmethod
    def from_tree(
        cls,
        tree: Any,
        metric: DistanceFunction | None = None,
        tracer: Any = None,
    ) -> "StatsSnapshot":
        """Snapshot a CF*-tree (anything with the tree's introspection API).

        ``metric`` defaults to the tree policy's metric; ``tracer`` (a
        :class:`~repro.observability.Tracer`) contributes per-site NCD.
        """
        if metric is None:
            metric = getattr(getattr(tree, "policy", None), "metric", None)
        n_leaves = sum(1 for _ in tree.leaves())
        max_nodes = getattr(tree, "max_nodes", None)
        snapshot = cls(
            n_objects=tree.n_objects,
            n_nodes=tree.n_nodes,
            n_leaves=n_leaves,
            n_clusters=tree.n_clusters,
            height=tree.height,
            threshold=float(tree.threshold),
            n_rebuilds=tree.n_rebuilds,
            max_nodes=max_nodes,
            m_pressure=(tree.n_nodes / max_nodes) if max_nodes else None,
            n_outliers_parked=getattr(tree, "n_outliers_parked", 0),
        )
        if metric is not None:
            snapshot.ncd_total = metric.n_calls
            cache = _find_cache(metric)
            if cache is not None:
                snapshot.cache_hits = cache.n_hits
                snapshot.cache_misses = cache.n_calls
                snapshot.cache = cache.counters()
        if tracer is not None and getattr(tracer, "enabled", False):
            snapshot.ncd_by_site = dict(tracer.calls_by_site)
        pruning_stats = getattr(getattr(tree, "policy", None), "pruning_stats", None)
        if pruning_stats is not None:
            snapshot.pruning = pruning_stats.as_dict()
        arena = getattr(getattr(tree, "policy", None), "arena", None)
        if arena is not None and hasattr(arena, "snapshot"):
            snapshot.slab = arena.snapshot()
        return snapshot

    @classmethod
    def from_model(cls, model: Any, tracer: Any = None) -> "StatsSnapshot":
        """Snapshot a fitted driver (``BUBBLE``/``BUBBLEFM``)."""
        if tracer is None:
            tracer = getattr(model, "tracer", None)
        snapshot = cls.from_tree(model.tree_, metric=model.metric, tracer=tracer)
        report = getattr(model, "ingest_report_", None)
        if report is not None:
            snapshot.apply_report(report)
        snapshot.global_phase_samples = [
            dict(s) for s in getattr(model, "global_phase_samples_", [])
        ]
        return snapshot

    def apply_report(self, report: Any) -> None:
        """Pull fault-tolerance counters from an ingest report (object or
        ``to_dict()`` payload)."""
        if isinstance(report, dict):
            get = report.get
        else:
            def get(name: str, default: Any = 0) -> Any:
                return getattr(report, name, default)
        self.shards_retried = int(get("shards_retried", 0) or 0)
        self.workers_crashed = int(get("workers_crashed", 0) or 0)
        self.shards_resumed = int(get("shards_resumed", 0) or 0)
        self.backoff_seconds_total = float(get("backoff_seconds_total", 0.0) or 0.0)
        self.global_samples = int(get("global_samples", 0) or 0)
        self.global_sample_ncd = int(get("global_sample_ncd", 0) or 0)
        self.global_sample_seconds = float(get("global_sample_seconds", 0.0) or 0.0)

    def apply_index(self, index: Any) -> None:
        """Fold a :class:`repro.index.MetricIndex`'s query counters in.

        Populates :attr:`query` with the cumulative
        :class:`~repro.index.IndexQueryStats` record plus the cross-query
        bound cache's hit/miss/eviction counters.
        """
        self.query = dict(index.stats.as_dict())
        self.query["backend"] = getattr(index, "backend", "?")
        self.query["n_indexed"] = len(index)
        self.query["bound_cache"] = index.bound_cache.as_dict()

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict (what the harness and sinks embed)."""
        return {
            "n_objects": self.n_objects,
            "n_nodes": self.n_nodes,
            "n_leaves": self.n_leaves,
            "n_clusters": self.n_clusters,
            "height": self.height,
            "threshold": self.threshold,
            "n_rebuilds": self.n_rebuilds,
            "max_nodes": self.max_nodes,
            "m_pressure": self.m_pressure,
            "n_outliers_parked": self.n_outliers_parked,
            "ncd_total": self.ncd_total,
            "ncd_by_site": dict(self.ncd_by_site),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache": dict(self.cache) if self.cache is not None else None,
            "query": dict(self.query) if self.query is not None else None,
            "pruning": dict(self.pruning) if self.pruning is not None else None,
            "slab": dict(self.slab) if self.slab is not None else None,
            "shards_retried": self.shards_retried,
            "workers_crashed": self.workers_crashed,
            "shards_resumed": self.shards_resumed,
            "backoff_seconds_total": self.backoff_seconds_total,
            "global_samples": self.global_samples,
            "global_sample_ncd": self.global_sample_ncd,
            "global_sample_seconds": self.global_sample_seconds,
            "global_phase_samples": [dict(s) for s in self.global_phase_samples],
        }

    def format(self) -> str:
        """Aligned key/value table for terminal output."""
        rows: list[tuple[str, str]] = [
            ("objects", str(self.n_objects)),
            ("nodes", str(self.n_nodes)),
            ("leaves", str(self.n_leaves)),
            ("sub-clusters", str(self.n_clusters)),
            ("height", str(self.height)),
            ("threshold", f"{self.threshold:.6g}"),
            ("rebuilds", str(self.n_rebuilds)),
            ("node budget M", str(self.max_nodes) if self.max_nodes else "unbounded"),
        ]
        if self.m_pressure is not None:
            rows.append(("M-pressure", f"{self.m_pressure:.1%}"))
        if self.n_outliers_parked:
            rows.append(("outliers parked", str(self.n_outliers_parked)))
        rows.append(("distance calls", str(self.ncd_total)))
        if self.cache_hits is not None:
            rows.append(("cache hits", str(self.cache_hits)))
            rows.append(("cache misses", str(self.cache_misses)))
        if self.cache is not None:
            rows.append(("cache evictions", str(self.cache.get("evictions", 0))))
            rows.append(
                (
                    "cache occupancy",
                    f"{self.cache.get('size')}/{self.cache.get('maxsize')} "
                    f"(hit rate {float(self.cache.get('hit_rate', 0.0)):.1%})",
                )
            )
        if self.query is not None and self.query.get("n_queries"):
            rows.append(
                (
                    "queries served",
                    f"{self.query.get('n_queries')} "
                    f"({self.query.get('n_knn')} kNN, "
                    f"{self.query.get('n_range')} range, "
                    f"backend {self.query.get('backend')})",
                )
            )
            rows.append(
                (
                    "query NCD",
                    f"{self.query.get('query_calls')} total "
                    f"({float(self.query.get('mean_query_calls', 0.0)):.1f}/query, "
                    f"build {self.query.get('build_calls')})",
                )
            )
            q_total = self.query.get("candidates_total", 0)
            q_pruned = self.query.get("candidates_pruned", 0)
            q_share = q_pruned / q_total if q_total else 0.0
            rows.append(
                ("query pruned", f"{q_pruned}/{q_total} ({q_share:.1%})")
            )
            bc = self.query.get("bound_cache") or {}
            rows.append(
                (
                    "bound cache",
                    f"{bc.get('hits', 0)} hits / {bc.get('misses', 0)} misses "
                    f"(hit rate {float(bc.get('hit_rate', 0.0)):.1%})",
                )
            )
        if self.pruning is not None and self.pruning.get("queries"):
            total = self.pruning.get("candidates_total", 0)
            pruned = self.pruning.get("candidates_pruned", 0)
            share = pruned / total if total else 0.0
            rows.append(("pruned candidates", f"{pruned}/{total} ({share:.1%})"))
            rows.append(
                ("pruning maintenance", str(self.pruning.get("maintenance_evals", 0)))
            )
        if self.slab is not None and self.slab.get("rows_used"):
            rows.append(
                (
                    "slab occupancy",
                    f"{self.slab.get('rows_used')}/{self.slab.get('capacity')} rows "
                    f"({float(self.slab.get('occupancy', 0.0)):.1%})",
                )
            )
            # Negative reduction (near-singleton leaves where the fixed-width
            # slab overallocates) renders as "+x%".
            rows.append(
                (
                    "slab bytes/leaf",
                    f"{self.slab.get('bytes_per_leaf')} "
                    f"(legacy {self.slab.get('legacy_bytes_per_leaf')}, "
                    f"{-float(self.slab.get('bytes_reduction', 0.0)):+.1%})",
                )
            )
        if self.shards_retried or self.workers_crashed or self.shards_resumed:
            rows.append(("shard retries", str(self.shards_retried)))
            rows.append(("worker crashes", str(self.workers_crashed)))
            rows.append(("shards resumed", str(self.shards_resumed)))
            rows.append(("retry backoff", f"{self.backoff_seconds_total:.2f}s"))
        if self.global_samples:
            rows.append(("global samples", str(self.global_samples)))
            rows.append(("sample search NCD", str(self.global_sample_ncd)))
            rows.append(("sample search wall", f"{self.global_sample_seconds:.2f}s"))
        width = max(len(k) for k, _ in rows)
        lines = [f"{k:<{width}}  {v}" for k, v in rows]
        if self.ncd_by_site:
            lines.append("NCD by site:")
            site_width = max(len(site) for site in self.ncd_by_site)
            for site, calls in sorted(self.ncd_by_site.items(), key=lambda kv: -kv[1]):
                lines.append(f"  {site:<{site_width}}  {calls}")
        if self.global_phase_samples:
            lines.append("global-phase samples:")
            for s in self.global_phase_samples:
                lines.append(
                    f"  sample {s.get('sample_id')}: "
                    f"size={s.get('sample_size')} "
                    f"calls={s.get('n_calls')} "
                    f"cost={float(s.get('full_cost', 0.0)):.6g} "
                    f"wall={float(s.get('elapsed_seconds', 0.0)):.2f}s "
                    f"attempts={s.get('n_attempts')}"
                )
        return "\n".join(lines)
