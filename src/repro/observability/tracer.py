"""Phase tracing: nestable spans with wall-time and per-span NCD deltas.

The paper's cost model is NCD — the number of calls to the (expensive)
distance function — so the first question about any run is *where the calls
went*: leaf ``D0`` threshold tests, non-leaf ``D2`` sample routing,
FastMap's ``2k`` incremental mapping, rebuilds. A :class:`Tracer` answers it
two ways at once:

* **spans** — nestable phases (``insert``, ``split``, ``rebuild``,
  ``sample-refresh``, ``fastmap-refit``, ``redistribute``, ...) recording
  wall time and the NCD delta between enter and exit. Spans nest, so their
  aggregates are *inclusive* (a rebuild triggered inside an insert is
  counted in both);
* **sites** — the disjoint attribution of every counted call to the
  innermost open span/site on the shared
  :class:`~repro.metrics.base.CallLedger` stack. Site totals partition NCD
  exactly: their sum equals the global counter of
  :class:`~repro.metrics.base.DistanceFunction`.

Entering a span pushes its name as a site, so un-instrumented calls inside
a phase are charged to the phase itself; instrumented call sites (the
policies push ``leaf-d0``, ``nonleaf-d2``, ``fastmap-map``, ...) win by
being innermost.

The default tracer everywhere is the :data:`NULL_TRACER` singleton whose
``span()`` returns one shared no-op context manager — the disabled hot
insert loop allocates nothing and performs no extra distance calls.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from types import TracebackType
from typing import Any

from repro.exceptions import ParameterError
from repro.metrics.base import CallLedger, activate_ledger, deactivate_ledger

__all__ = ["Tracer", "NullTracer", "NULL_TRACER"]


class _NullContext:
    """A reusable, allocation-free no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The do-nothing tracer: the default on every tree, policy, and driver.

    All methods return shared singletons; tracing code paths stay on the
    hot loop unconditionally, and this class is what makes them free when
    tracing is off.
    """

    __slots__ = ()

    #: False on the null tracer, True on :class:`Tracer`; lets callers skip
    #: work that only matters when a trace is actually recorded.
    enabled = False

    def span(self, name: str) -> _NullContext:
        """A no-op span context."""
        return _NULL_CONTEXT

    def activation(self) -> _NullContext:
        """A no-op ledger-activation context."""
        return _NULL_CONTEXT

    def close(self) -> None:
        """Nothing to flush."""


#: Process-wide shared no-op tracer (stateless, safe to share).
NULL_TRACER = NullTracer()


class _Span:
    """One open span; a context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("tracer", "name", "seq", "depth", "t0", "ncd0")

    def __init__(self, tracer: "Tracer", name: str):
        self.tracer = tracer
        self.name = name
        self.seq = -1
        self.depth = -1
        self.t0 = 0.0
        self.ncd0 = 0

    def __enter__(self) -> "_Span":
        self.tracer._enter_span(self)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self.tracer._exit_span(self)
        return False


class _Activation:
    """Re-entrant activation context binding the tracer's ledger."""

    __slots__ = ("tracer",)

    def __init__(self, tracer: "Tracer"):
        self.tracer = tracer

    def __enter__(self) -> "_Activation":
        self.tracer._activate()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self.tracer._deactivate()
        return False


class Tracer(NullTracer):
    """Records phase spans and site-attributed NCD, feeding zero or more sinks.

    Parameters
    ----------
    sinks:
        :class:`~repro.observability.sinks.TraceSink` instances receiving
        one event dict per span enter/exit (and a final ``summary`` event
        on :meth:`close`). No sinks is fine — span aggregates and the site
        ledger are kept in memory regardless.
    clock:
        Monotonic time source (injectable for deterministic tests).

    Usage::

        tracer = Tracer(sinks=[JsonlSink("trace.jsonl")])
        model = BUBBLE(metric, max_nodes=50, seed=0, tracer=tracer)
        with tracer:                      # activates site attribution
            model.fit(objects)
        tracer.close()                    # flush sinks
        tracer.calls_by_site              # {'leaf-d0': ..., 'nonleaf-d2': ...}

    The drivers also activate the tracer around their own scans, so the
    explicit ``with tracer:`` is only needed when measuring user code
    outside ``fit``/``assign``.
    """

    __slots__ = (
        "ledger",
        "sinks",
        "_clock",
        "_t0",
        "_seq",
        "_open",
        "_aggregates",
        "_activation_depth",
        "_previous_ledger",
        "_closed",
    )

    enabled = True

    def __init__(
        self,
        sinks: Iterable[Any] = (),
        clock: Callable[[], float] = time.perf_counter,
    ):
        #: The site-attribution ledger this tracer activates.
        self.ledger = CallLedger()
        self.sinks = list(sinks)
        self._clock = clock
        self._t0 = clock()
        self._seq = 0
        self._open: list[_Span] = []
        self._aggregates: dict[str, dict[str, float]] = {}
        self._activation_depth = 0
        self._previous_ledger: CallLedger | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Activation (ledger binding)
    # ------------------------------------------------------------------
    def activation(self) -> _Activation:
        """Context manager binding this tracer's ledger for attribution.

        Re-entrant: the drivers wrap their scans in it, and a user-level
        ``with tracer:`` around a whole pipeline nests harmlessly.
        """
        return _Activation(self)

    def __enter__(self) -> "Tracer":
        self._activate()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self._deactivate()
        return False

    def _activate(self) -> None:
        if self._activation_depth == 0:
            self._previous_ledger = activate_ledger(self.ledger)
        self._activation_depth += 1

    def _deactivate(self) -> None:
        if self._activation_depth == 0:
            raise ParameterError("tracer deactivated more times than activated")
        self._activation_depth -= 1
        if self._activation_depth == 0:
            deactivate_ledger(self._previous_ledger)
            self._previous_ledger = None

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str) -> _Span:
        """Open a span named ``name`` (use as a context manager)."""
        return _Span(self, name)

    def _enter_span(self, span: _Span) -> None:
        span.seq = self._seq
        self._seq += 1
        span.depth = len(self._open)
        span.t0 = self._clock() - self._t0
        span.ncd0 = self.ledger.total
        self._open.append(span)
        self.ledger.stack.append(span.name)
        if self.sinks:
            self._emit(
                {
                    "ev": "enter",
                    "span": span.name,
                    "seq": span.seq,
                    "depth": span.depth,
                    "t": span.t0,
                    "ncd": span.ncd0,
                }
            )

    def _exit_span(self, span: _Span) -> None:
        if not self._open or self._open[-1] is not span:
            raise ParameterError(
                f"span {span.name!r} exited out of order; spans must nest"
            )
        self._open.pop()
        if self.ledger.stack and self.ledger.stack[-1] == span.name:
            self.ledger.stack.pop()
        t1 = self._clock() - self._t0
        ncd1 = self.ledger.total
        agg = self._aggregates.get(span.name)
        if agg is None:
            agg = {"count": 0, "seconds": 0.0, "ncd": 0}
            self._aggregates[span.name] = agg
        agg["count"] += 1
        agg["seconds"] += t1 - span.t0
        agg["ncd"] += ncd1 - span.ncd0
        if self.sinks:
            self._emit(
                {
                    "ev": "exit",
                    "span": span.name,
                    "seq": span.seq,
                    "depth": span.depth,
                    "t": t1,
                    "ncd": ncd1,
                    "dt": t1 - span.t0,
                    "dncd": ncd1 - span.ncd0,
                }
            )

    def _emit(self, event: dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(event)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def calls_by_site(self) -> dict[str, int]:
        """Distance calls charged per site (a copy; sums to ``total_calls``)."""
        return dict(self.ledger.by_site)

    @property
    def total_calls(self) -> int:
        """Total distance calls charged while this tracer was active."""
        return self.ledger.total

    @property
    def open_spans(self) -> list[str]:
        """Names of currently open spans, outermost first."""
        return [span.name for span in self._open]

    def span_aggregates(self) -> dict[str, dict[str, float]]:
        """Per-span-name totals: ``{name: {count, seconds, ncd}}``.

        Spans nest, so these are inclusive totals — unlike
        :attr:`calls_by_site`, they do not partition NCD.
        """
        return {name: dict(agg) for name, agg in self._aggregates.items()}

    def summary(self) -> dict[str, Any]:
        """Everything measured so far, as one JSON-compatible dict."""
        return {
            "elapsed_seconds": self._clock() - self._t0,
            "ncd_total": self.ledger.total,
            "ncd_by_site": dict(self.ledger.by_site),
            "spans": self.span_aggregates(),
        }

    def close(self) -> None:
        """Emit a final ``summary`` event and close all sinks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.sinks:
            event = {"ev": "summary"}
            event.update(self.summary())
            self._emit(event)
        for sink in self.sinks:
            sink.close()
