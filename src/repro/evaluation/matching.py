"""Matching discovered clusters to ground-truth classes."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError

__all__ = ["confusion_matrix", "majority_mapping", "hungarian_accuracy"]


def _check_labels(labels_true, labels_pred) -> tuple[np.ndarray, np.ndarray]:
    lt = np.asarray(labels_true, dtype=np.intp)
    lp = np.asarray(labels_pred, dtype=np.intp)
    if lt.shape != lp.shape or lt.ndim != 1:
        raise ParameterError(
            f"label arrays must be equal-length 1-d, got {lt.shape} and {lp.shape}"
        )
    if lt.size == 0:
        raise ParameterError("label arrays must be non-empty")
    if lt.min() < 0 or lp.min() < 0:
        raise ParameterError("labels must be non-negative integers")
    return lt, lp


def confusion_matrix(labels_true, labels_pred) -> np.ndarray:
    """Contingency table: rows are true classes, columns predicted clusters."""
    lt, lp = _check_labels(labels_true, labels_pred)
    n_true = int(lt.max()) + 1
    n_pred = int(lp.max()) + 1
    out = np.zeros((n_true, n_pred), dtype=np.int64)
    np.add.at(out, (lt, lp), 1)
    return out


def majority_mapping(labels_true, labels_pred) -> np.ndarray:
    """Map each predicted cluster to the true class of most of its members.

    Returns an array ``m`` with ``m[pred_cluster] = true_class``. This is
    how we operationalize the paper's "misplaced string": a record is
    misplaced when it disagrees with its cluster's majority class.
    """
    cm = confusion_matrix(labels_true, labels_pred)
    return cm.argmax(axis=0)


def hungarian_accuracy(labels_true, labels_pred) -> float:
    """Best-case accuracy under an optimal one-to-one cluster/class matching.

    Uses scipy's linear_sum_assignment; stricter than the majority mapping
    because each class may claim at most one cluster.
    """
    from scipy.optimize import linear_sum_assignment

    cm = confusion_matrix(labels_true, labels_pred)
    rows, cols = linear_sum_assignment(-cm)
    return float(cm[rows, cols].sum()) / float(cm.sum())
