"""Clustering-quality and cost metrics used in the paper's evaluation.

Section 6.1 defines: **distortion** (tightness of the clusters), **clustroid
quality (CQ)** (how close discovered centers are to the true centroids), and
**NCD** (number of calls to the distance function, read straight off any
:class:`~repro.metrics.DistanceFunction`). Section 7 adds the count of
**misplaced strings** for the data-cleaning application.
"""

from repro.evaluation.matching import (
    confusion_matrix,
    hungarian_accuracy,
    majority_mapping,
)
from repro.evaluation.metrics import (
    adjusted_rand_index,
    clustroid_quality,
    distortion,
    min_possible_clustroid_quality,
    misplaced_count,
    rand_index,
    silhouette_score,
)

__all__ = [
    "distortion",
    "clustroid_quality",
    "min_possible_clustroid_quality",
    "misplaced_count",
    "silhouette_score",
    "rand_index",
    "adjusted_rand_index",
    "confusion_matrix",
    "majority_mapping",
    "hungarian_accuracy",
]
