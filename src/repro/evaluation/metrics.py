"""Quality metrics: distortion, clustroid quality, misplacement, Rand indices."""

from __future__ import annotations

import numpy as np

from repro.evaluation.matching import _check_labels, majority_mapping
from repro.exceptions import ParameterError

__all__ = [
    "distortion",
    "clustroid_quality",
    "min_possible_clustroid_quality",
    "misplaced_count",
    "rand_index",
    "adjusted_rand_index",
    "silhouette_score",
]


def distortion(points, labels, centers=None) -> float:
    """Sum of squared distances of points to their cluster centers.

    The paper's definition (Section 6.1) measures against the **centroid**
    of each discovered cluster; pass ``centers`` to measure against other
    representatives (e.g. clustroids) instead.
    """
    pts = np.asarray(points, dtype=np.float64)
    labs = np.asarray(labels, dtype=np.intp)
    if len(pts) != len(labs):
        raise ParameterError("points and labels must have equal length")
    if len(pts) == 0:
        raise ParameterError("distortion of an empty dataset is undefined")
    total = 0.0
    for cluster in np.unique(labs):
        member = pts[labs == cluster]
        ref = (
            member.mean(axis=0)
            if centers is None
            else np.asarray(centers[int(cluster)], dtype=np.float64)
        )
        diff = member - ref
        total += float(np.einsum("ij,ij->", diff, diff))
    return total


def clustroid_quality(true_centers, found_centers) -> float:
    """CQ: mean distance from each actual centroid to its closest discovered
    center (Section 6.1). Lower is better; bounded below by how close any
    dataset object can be to the centroid (see
    :func:`min_possible_clustroid_quality`)."""
    tc = np.asarray(true_centers, dtype=np.float64)
    fc = np.asarray(found_centers, dtype=np.float64)
    if tc.ndim != 2 or fc.ndim != 2 or tc.shape[1] != fc.shape[1]:
        raise ParameterError("centers must be 2-d arrays of equal dimensionality")
    if len(tc) == 0 or len(fc) == 0:
        raise ParameterError("center sets must be non-empty")
    total = 0.0
    for center in tc:
        diff = fc - center
        total += float(np.sqrt(np.einsum("ij,ij->i", diff, diff).min()))
    return total / len(tc)


def min_possible_clustroid_quality(true_centers, points, labels) -> float:
    """The floor on CQ for clustroid-producing algorithms: the mean distance
    from each actual centroid to the closest *actual point* of its cluster
    (the paper reports 0.212 for DS20d.50c.100K)."""
    tc = np.asarray(true_centers, dtype=np.float64)
    pts = np.asarray(points, dtype=np.float64)
    labs = np.asarray(labels, dtype=np.intp)
    total = 0.0
    for cluster, center in enumerate(tc):
        member = pts[labs == cluster]
        if len(member) == 0:
            raise ParameterError(f"true cluster {cluster} has no points")
        diff = member - center
        total += float(np.sqrt(np.einsum("ij,ij->i", diff, diff).min()))
    return total / len(tc)


def misplaced_count(labels_true, labels_pred) -> int:
    """Number of records placed in the "wrong" cluster (Section 7).

    A record is counted as misplaced when its true class differs from the
    majority true class of the cluster it was assigned to.
    """
    lt, lp = _check_labels(labels_true, labels_pred)
    mapping = majority_mapping(lt, lp)
    return int(np.sum(mapping[lp] != lt))


def rand_index(labels_true, labels_pred) -> float:
    """Fraction of object pairs on which the two labelings agree."""
    lt, lp = _check_labels(labels_true, labels_pred)
    n = lt.size
    if n < 2:
        return 1.0
    same_true = lt[:, None] == lt[None, :]
    same_pred = lp[:, None] == lp[None, :]
    agree = np.triu(same_true == same_pred, k=1).sum()
    return float(agree) / (n * (n - 1) // 2)


def adjusted_rand_index(labels_true, labels_pred) -> float:
    """Rand index adjusted for chance (Hubert & Arabie)."""
    from repro.evaluation.matching import confusion_matrix

    cm = confusion_matrix(labels_true, labels_pred).astype(np.float64)
    n = cm.sum()
    sum_comb_cells = (cm * (cm - 1) / 2).sum()
    a = cm.sum(axis=1)
    b = cm.sum(axis=0)
    sum_comb_a = (a * (a - 1) / 2).sum()
    sum_comb_b = (b * (b - 1) / 2).sum()
    total_pairs = n * (n - 1) / 2
    expected = sum_comb_a * sum_comb_b / total_pairs if total_pairs else 0.0
    max_index = 0.5 * (sum_comb_a + sum_comb_b)
    if max_index == expected:
        return 1.0
    return float((sum_comb_cells - expected) / (max_index - expected))


def silhouette_score(
    metric,
    objects,
    labels,
    sample_size: int | None = 500,
    seed=None,
) -> float:
    """Mean silhouette coefficient — a quality metric that needs only ``d``.

    For each object, ``a`` is its mean distance to its own cluster's other
    members and ``b`` the smallest mean distance to another cluster; the
    silhouette is ``(b - a) / max(a, b)`` in [-1, 1]. Unlike distortion this
    works in *any* distance space (no centroids required), which makes it
    the natural internal quality measure for BUBBLE's output.

    Parameters
    ----------
    metric:
        The distance function (NCD accumulates on it).
    objects, labels:
        The clustering to score.
    sample_size:
        Objects sampled for scoring (the full computation is O(n^2) distance
        calls); ``None`` scores every object. All objects still serve as
        potential neighbours.
    seed:
        Sampling seed.
    """
    from repro.utils.rng import ensure_rng

    labs = np.asarray(labels, dtype=np.intp)
    objects = list(objects)
    if len(objects) != len(labs):
        raise ParameterError("objects and labels must have equal length")
    if len(objects) < 2:
        raise ParameterError("silhouette requires at least two objects")
    clusters: dict[int, list[int]] = {}
    for i, lab in enumerate(labs):
        clusters.setdefault(int(lab), []).append(i)
    if len(clusters) < 2:
        raise ParameterError("silhouette requires at least two clusters")

    rng = ensure_rng(seed)
    indices = np.arange(len(objects))
    if sample_size is not None and sample_size < len(objects):
        indices = rng.choice(len(objects), size=sample_size, replace=False)

    total, counted = 0.0, 0
    for i in indices:
        own = int(labs[i])
        own_members = [j for j in clusters[own] if j != i]
        if not own_members:
            continue  # singleton clusters have no defined silhouette
        a = float(np.mean(metric.one_to_many(objects[int(i)], [objects[j] for j in own_members])))
        b = np.inf
        for other, members in clusters.items():
            if other == own:
                continue
            mean_d = float(
                np.mean(metric.one_to_many(objects[int(i)], [objects[j] for j in members]))
            )
            b = min(b, mean_d)
        denom = max(a, b)
        total += 0.0 if denom == 0 else (b - a) / denom
        counted += 1
    if counted == 0:
        raise ParameterError("all sampled objects were singletons")
    return total / counted
