"""Terminal-friendly plotting for the paper's figures.

The evaluation environment is a terminal, so the scatter plots of
Figures 1–3 and the line plots of Figures 4–6 are rendered as ASCII/Unicode
text. These renderers are deliberately simple — fixed canvas, automatic
axis scaling, multiple series by marker character — but faithful enough to
eyeball whether the DS2 clustroids trace the sine wave.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ParameterError

__all__ = ["ascii_scatter", "ascii_lines"]


def _canvas(width: int, height: int) -> list[list[str]]:
    return [[" "] * width for _ in range(height)]


def _bounds(xs: np.ndarray, ys: np.ndarray) -> tuple[float, float, float, float]:
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    return x_lo, x_hi, y_lo, y_hi


def ascii_scatter(
    series: dict[str, np.ndarray],
    width: int = 72,
    height: int = 20,
    title: str | None = None,
) -> str:
    """Render 2-d point sets as a text scatter plot.

    Parameters
    ----------
    series:
        Mapping of label -> ``(n, 2)`` array. Each series gets its own
        marker; overlapping cells show the later series' marker.
    width, height:
        Canvas size in characters.

    Returns
    -------
    The plot as a multi-line string (axes annotated with data bounds).
    """
    if not series:
        raise ParameterError("ascii_scatter requires at least one series")
    markers = "o*x+#@%&"
    all_pts = np.vstack([np.asarray(p, dtype=float).reshape(-1, 2) for p in series.values()])
    x_lo, x_hi, y_lo, y_hi = _bounds(all_pts[:, 0], all_pts[:, 1])
    canvas = _canvas(width, height)
    legend = []
    for (label, pts), marker in zip(series.items(), markers):
        pts = np.asarray(pts, dtype=float).reshape(-1, 2)
        legend.append(f"{marker} {label}")
        cols = ((pts[:, 0] - x_lo) / (x_hi - x_lo) * (width - 1)).round().astype(int)
        rows = ((pts[:, 1] - y_lo) / (y_hi - y_lo) * (height - 1)).round().astype(int)
        for c, r in zip(cols, rows):
            canvas[height - 1 - r][c] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y_max = {y_hi:g}")
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"y_min = {y_lo:g}   x: [{x_lo:g}, {x_hi:g}]   " + "   ".join(legend))
    return "\n".join(lines)


def ascii_lines(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 72,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Render one or more y-series over shared x values as a text line plot.

    Points are plotted (not interpolated); with monotone x and a dense
    canvas this reads like a line chart, which is all Figures 4–6 need.
    """
    if not series:
        raise ParameterError("ascii_lines requires at least one series")
    xs = np.asarray(x, dtype=float)
    for label, ys in series.items():
        if len(ys) != len(xs):
            raise ParameterError(
                f"series {label!r} has {len(ys)} values for {len(xs)} x points"
            )
    packed = {
        label: np.column_stack([xs, np.asarray(ys, dtype=float)])
        for label, ys in series.items()
    }
    return ascii_scatter(packed, width=width, height=height, title=title)
