"""Distance functions over arbitrary metric spaces.

The paper's cost model treats the distance function ``d`` as a black box that
may be expensive (e.g. edit distance), so the *number of calls to d* (NCD) is
a first-class evaluation metric. Every distance function in this package
counts its calls; batch entry points (:meth:`DistanceFunction.one_to_many`,
:meth:`DistanceFunction.pairwise`) count one call per object pair while
letting vector metrics vectorize the arithmetic with numpy.
"""

from repro.metrics.base import DistanceFunction, FunctionDistance
from repro.metrics.cache import CachedDistance
from repro.metrics.curves import DiscreteFrechetDistance, discrete_frechet
from repro.metrics.discrete import DiscreteMetric, HammingDistance, JaccardDistance
from repro.metrics.tagged import TaggedMetric
from repro.metrics.string import (
    DamerauLevenshteinDistance,
    EditDistance,
    RelativeEditDistance,
    WeightedEditDistance,
    edit_distance,
)
from repro.metrics.vector import (
    AngularDistance,
    CanberraDistance,
    ChebyshevDistance,
    EuclideanDistance,
    ManhattanDistance,
    MinkowskiDistance,
)

__all__ = [
    "DistanceFunction",
    "FunctionDistance",
    "CachedDistance",
    "EuclideanDistance",
    "ManhattanDistance",
    "ChebyshevDistance",
    "AngularDistance",
    "CanberraDistance",
    "MinkowskiDistance",
    "EditDistance",
    "WeightedEditDistance",
    "DamerauLevenshteinDistance",
    "RelativeEditDistance",
    "edit_distance",
    "HammingDistance",
    "JaccardDistance",
    "DiscreteMetric",
    "TaggedMetric",
    "DiscreteFrechetDistance",
    "discrete_frechet",
]
