"""Metrics on curves/trajectories.

A showcase of the paper's central premise: BUBBLE clusters *anything* with a
metric. The discrete Fréchet distance is a true metric on polygonal curves
(sequences of points) — the classic "dog-walking" distance: the smallest
leash length that lets a walker traverse one curve and the dog the other,
both moving monotonically. Like the edit distance it is an O(mn) dynamic
program, i.e. exactly the kind of expensive ``d`` that motivates BUBBLE-FM.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.exceptions import MetricError
from repro.metrics.base import DistanceFunction

__all__ = ["DiscreteFrechetDistance", "discrete_frechet"]


def discrete_frechet(curve_a: Any, curve_b: Any) -> float:
    """Discrete Fréchet distance between two point sequences.

    Parameters
    ----------
    curve_a, curve_b:
        Arrays of shape ``(m, dim)`` and ``(n, dim)`` (or nested sequences
        coercible to them).

    Returns
    -------
    The min-over-couplings max-leash-length, via the standard O(mn) dynamic
    program (Eiter & Mannila 1994).
    """
    a = np.asarray(curve_a, dtype=np.float64)
    b = np.asarray(curve_b, dtype=np.float64)
    if a.ndim == 1:
        a = a[:, None]
    if b.ndim == 1:
        b = b[:, None]
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise MetricError(
            f"curves must be (m, dim) arrays of equal dim, got {a.shape} and {b.shape}"
        )
    if len(a) == 0 or len(b) == 0:
        raise MetricError("curves must contain at least one point")
    m, n = len(a), len(b)
    # Pairwise point distances, vectorized.
    diff = a[:, None, :] - b[None, :, :]
    pd = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))

    # ca[i, j] = Fréchet distance of prefixes a[:i+1], b[:j+1].
    ca = np.empty((m, n), dtype=np.float64)
    ca[0, 0] = pd[0, 0]
    for j in range(1, n):
        ca[0, j] = max(ca[0, j - 1], pd[0, j])
    for i in range(1, m):
        ca[i, 0] = max(ca[i - 1, 0], pd[i, 0])
        row_prev = ca[i - 1]
        row = ca[i]
        for j in range(1, n):
            row[j] = max(min(row_prev[j], row_prev[j - 1], row[j - 1]), pd[i, j])
    return float(ca[m - 1, n - 1])


class DiscreteFrechetDistance(DistanceFunction):
    """Discrete Fréchet distance as a :class:`DistanceFunction`.

    Objects are point sequences (``(m, dim)`` arrays or nested lists). A
    true metric on curves — symmetric, zero only between identical
    sequences' geometries, and triangle-inequality-respecting — so the whole
    BUBBLE/BUBBLE-FM machinery (and the M-tree/VP-tree indexes) applies to
    trajectory data unchanged.

    Examples
    --------
    >>> m = DiscreteFrechetDistance()
    >>> m.distance([[0, 0], [1, 0]], [[0, 1], [1, 1]])
    1.0
    """

    name = "discrete-frechet"

    def _distance(self, a: Any, b: Any) -> float:
        return discrete_frechet(a, b)
