"""Memoizing wrapper around a distance function.

Hierarchical post-clustering and the RED comparator repeatedly measure the
same object pairs; caching those pairs trades memory for NCD. The wrapper
delegates counting to the inner metric, so NCD reflects *actual* evaluations
— a cache hit costs nothing, exactly as it would in a real deployment.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.exceptions import ParameterError
from repro.metrics.base import DistanceFunction

__all__ = ["CachedDistance"]


def _default_key(obj: object) -> object:
    """Hashable cache key for the object types the library ships.

    Hashable objects (strings, tuples, numbers) pass through unchanged;
    numpy arrays — unhashable — are keyed by dtype, shape, and raw bytes.
    Module-level (not a lambda) so a :class:`CachedDistance` with the
    default key survives pickling, e.g. when shipped to a shard worker by
    :mod:`repro.parallel`.
    """
    if isinstance(obj, np.ndarray):
        return (obj.dtype.str, obj.shape, obj.tobytes())
    return obj


class CachedDistance(DistanceFunction):
    """LRU cache in front of another :class:`DistanceFunction`.

    Parameters
    ----------
    inner:
        The metric whose evaluations are cached.
    maxsize:
        Maximum number of cached pairs; the least recently used pair is
        evicted beyond this. ``None`` means unbounded.
    key:
        Function mapping an object to a hashable cache key. The default
        passes hashable objects through and keys numpy vectors by their
        dtype, shape, and bytes; pass a custom callable for other
        unhashable object types.

    Notes
    -----
    ``n_calls`` on the wrapper counts only cache *misses* (true evaluations,
    mirroring the inner metric); ``n_hits`` counts avoided evaluations, and
    ``n_evictions`` how many pairs LRU eviction dropped. Eviction never
    skews accounting: a re-measured evicted pair is a genuine miss (the
    evaluation really happens again), so hit + miss totals stay exact.

    The batched entry points (:meth:`one_to_many`, :meth:`pairwise`,
    :meth:`cross`) route every pair through the cache with scalar-loop
    accounting — per batch row, cached pairs are hits, repeated pairs
    within the row are hits after their first occurrence, and the remaining
    unique misses are gathered with **one** ``inner.one_to_many`` dispatch,
    so vectorized inner metrics keep their batch advantage while ``n_hits``
    and ``n_calls`` land exactly where a pair-by-pair loop would put them.
    """

    def __init__(
        self,
        inner: DistanceFunction,
        maxsize: int | None = 1_000_000,
        key: Callable[[object], object] | None = None,
    ):
        super().__init__()
        if not isinstance(inner, DistanceFunction):
            raise ParameterError("inner must be a DistanceFunction")
        if maxsize is not None and maxsize <= 0:
            raise ParameterError(f"maxsize must be positive or None, got {maxsize}")
        self.inner = inner
        self.maxsize = maxsize
        self._key = key if key is not None else _default_key
        self._cache: OrderedDict[tuple, float] = OrderedDict()
        self.n_hits = 0
        self.n_evictions = 0
        self.name = f"cached({inner.name})"

    @property
    def n_calls(self) -> int:
        """True evaluations performed by the wrapped metric."""
        return self.inner.n_calls

    @property
    def size(self) -> int:
        """Pairs currently held by the LRU store."""
        return len(self._cache)

    @property
    def hit_rate(self) -> float:
        """Share of lookups served from the cache (0.0 when unused)."""
        total = self.n_hits + self.n_calls
        return self.n_hits / total if total else 0.0

    def counters(self) -> dict[str, object]:
        """JSON-compatible record of the LRU counters (what
        :class:`~repro.observability.StatsSnapshot` embeds as ``cache``)."""
        return {
            "hits": self.n_hits,
            "misses": self.n_calls,
            "evictions": self.n_evictions,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": round(self.hit_rate, 4),
        }

    def reset_counter(self) -> None:
        self.inner.reset_counter()
        self.n_hits = 0

    @staticmethod
    def _order(ka: Any, kb: Any) -> tuple:
        # Symmetric key: order the two halves so d(a,b) and d(b,a) share one
        # slot. Mixed-type keys raise TypeError; numpy-like keys raise
        # ValueError (elementwise comparison) — canonicalize via repr then.
        try:
            if kb < ka:
                ka, kb = kb, ka
        except (TypeError, ValueError):
            if repr(kb) < repr(ka):
                ka, kb = kb, ka
        return (ka, kb)

    def _pair_key(self, a: Any, b: Any) -> tuple:
        return self._order(self._key(a), self._key(b))

    def _store(self, key: tuple, value: float) -> None:
        self._cache[key] = value
        if self.maxsize is not None and len(self._cache) > self.maxsize:
            self._cache.popitem(last=False)
            self.n_evictions += 1

    def distance(self, a: Any, b: Any) -> float:
        key = self._pair_key(a, b)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.n_hits += 1
            return cached
        value = self.inner.distance(a, b)
        self._store(key, value)
        return value

    def one_to_many(self, obj: Any, objects: Sequence) -> np.ndarray:
        n = len(objects)
        out = np.empty(n, dtype=np.float64)
        if n == 0:
            return out
        ka = self._key(obj)
        keys = [self._order(ka, self._key(o)) for o in objects]
        missing: list[int] = []
        pending: set = set()
        repeats: list[int] = []
        for j, key in enumerate(keys):
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.n_hits += 1
                out[j] = cached
            elif key in pending:
                # A pair already missed earlier in this batch: the scalar
                # loop would find it freshly cached, so it is a hit.
                self.n_hits += 1
                repeats.append(j)
            else:
                pending.add(key)
                missing.append(j)
        if missing:
            values = self.inner.one_to_many(obj, [objects[j] for j in missing])
            resolved: dict[tuple, float] = {}
            for pos, j in enumerate(missing):
                value = float(values[pos])
                out[j] = value
                resolved[keys[j]] = value
                self._store(keys[j], value)
            for j in repeats:
                out[j] = resolved[keys[j]]
        return out

    def pairwise(self, objects: Sequence) -> np.ndarray:
        # Route every pair through the cache: the base-class implementation
        # would call the raw hook, bypassing both memoization and the inner
        # metric's NCD counter. Each row above the diagonal is one batched
        # cache-aware gather.
        n = len(objects)
        out = np.zeros((n, n), dtype=np.float64)
        for i in range(n - 1):
            row = self.one_to_many(objects[i], objects[i + 1 :])
            out[i, i + 1 :] = row
            out[i + 1 :, i] = row
        return out

    def cross(self, objects_a: Sequence, objects_b: Sequence) -> np.ndarray:
        # Route every pair through the cache so repeated cross-gathers (D2
        # between the same entry summaries, exact merges, the parallel
        # global matrix) hit memoized pairs; each row's unique misses go to
        # the inner metric as one batched gather.
        out = np.empty((len(objects_a), len(objects_b)), dtype=np.float64)
        for i, a in enumerate(objects_a):
            out[i] = self.one_to_many(a, objects_b)
        return out

    def _distance(self, a: Any, b: Any) -> float:  # pragma: no cover - bypassed by distance()
        # Wrapper hook-to-hook delegation: counting happens in the inner
        # metric's public API, which every overridden entry point above uses.
        return self.inner._distance(a, b)  # reprolint: disable=RPL001 -- hook delegation; the public wrapper counts
