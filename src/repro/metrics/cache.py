"""Memoizing wrapper around a distance function.

Hierarchical post-clustering and the RED comparator repeatedly measure the
same object pairs; caching those pairs trades memory for NCD. The wrapper
delegates counting to the inner metric, so NCD reflects *actual* evaluations
— a cache hit costs nothing, exactly as it would in a real deployment.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.exceptions import ParameterError
from repro.metrics.base import DistanceFunction

__all__ = ["CachedDistance"]


class CachedDistance(DistanceFunction):
    """LRU cache in front of another :class:`DistanceFunction`.

    Parameters
    ----------
    inner:
        The metric whose evaluations are cached.
    maxsize:
        Maximum number of cached pairs; the least recently used pair is
        evicted beyond this. ``None`` means unbounded.
    key:
        Function mapping an object to a hashable cache key. Defaults to the
        object itself, which works for strings and tuples; pass e.g.
        ``lambda v: v.tobytes()`` for numpy vectors.

    Notes
    -----
    ``n_calls`` on the wrapper counts only cache *misses* (true evaluations,
    mirroring the inner metric); ``n_hits`` counts avoided evaluations, and
    ``n_evictions`` how many pairs LRU eviction dropped. Eviction never
    skews accounting: a re-measured evicted pair is a genuine miss (the
    evaluation really happens again), so hit + miss totals stay exact.
    """

    def __init__(
        self,
        inner: DistanceFunction,
        maxsize: int | None = 1_000_000,
        key: Callable[[object], object] | None = None,
    ):
        super().__init__()
        if not isinstance(inner, DistanceFunction):
            raise ParameterError("inner must be a DistanceFunction")
        if maxsize is not None and maxsize <= 0:
            raise ParameterError(f"maxsize must be positive or None, got {maxsize}")
        self.inner = inner
        self.maxsize = maxsize
        self._key = key if key is not None else (lambda obj: obj)
        self._cache: OrderedDict[tuple, float] = OrderedDict()
        self.n_hits = 0
        self.n_evictions = 0
        self.name = f"cached({inner.name})"

    @property
    def n_calls(self) -> int:
        """True evaluations performed by the wrapped metric."""
        return self.inner.n_calls

    def reset_counter(self) -> None:
        self.inner.reset_counter()
        self.n_hits = 0

    def _pair_key(self, a: Any, b: Any) -> tuple:
        ka, kb = self._key(a), self._key(b)
        # Symmetric key: order the two halves so d(a,b) and d(b,a) share one
        # slot. Mixed-type keys raise TypeError; numpy-like keys raise
        # ValueError (elementwise comparison) — canonicalize via repr then.
        try:
            if kb < ka:
                ka, kb = kb, ka
        except (TypeError, ValueError):
            if repr(kb) < repr(ka):
                ka, kb = kb, ka
        return (ka, kb)

    def distance(self, a: Any, b: Any) -> float:
        key = self._pair_key(a, b)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.n_hits += 1
            return cached
        value = self.inner.distance(a, b)
        self._cache[key] = value
        if self.maxsize is not None and len(self._cache) > self.maxsize:
            self._cache.popitem(last=False)
            self.n_evictions += 1
        return value

    def one_to_many(self, obj: Any, objects: Sequence) -> np.ndarray:
        return np.fromiter(
            (self.distance(obj, o) for o in objects),
            dtype=np.float64,
            count=len(objects),
        )

    def pairwise(self, objects: Sequence) -> np.ndarray:
        # Route every pair through the cache: the base-class implementation
        # would call the raw hook, bypassing both memoization and the inner
        # metric's NCD counter.
        n = len(objects)
        out = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i + 1, n):
                # This IS the all-pairs primitive, so the nested scan is the point.
                d = self.distance(objects[i], objects[j])  # reprolint: disable=RPL004
                out[i, j] = d
                out[j, i] = d
        return out

    def cross(self, objects_a: Sequence, objects_b: Sequence) -> np.ndarray:
        # Route every pair through the cache so repeated cross-gathers (D2
        # between the same entry summaries, exact merges) hit memoized pairs.
        out = np.empty((len(objects_a), len(objects_b)), dtype=np.float64)
        for i, a in enumerate(objects_a):
            out[i] = self.one_to_many(a, objects_b)
        return out

    def _distance(self, a: Any, b: Any) -> float:  # pragma: no cover - bypassed by distance()
        # Wrapper hook-to-hook delegation: counting happens in the inner
        # metric's public API, which every overridden entry point above uses.
        return self.inner._distance(a, b)  # reprolint: disable=RPL001
