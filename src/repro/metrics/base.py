"""Abstract distance function with NCD (number-of-calls-to-d) accounting.

The BIRCH* framework and both BUBBLE algorithms interact with data objects
*only* through a :class:`DistanceFunction`. Implementations provide a scalar
``_distance`` and may override ``_one_to_many`` with a vectorized version;
the public wrappers maintain the call counter that the paper reports as NCD
(Section 6.1).

Besides the per-metric total, this module hosts the **site-attribution
ledger** behind :mod:`repro.observability`: while a :class:`CallLedger` is
active, every counted call is additionally charged to the innermost *site*
label on the ledger's stack (``leaf-d0`` leaf routing, ``nonleaf-d2`` sample
routing, ``fastmap-map`` incremental mapping, ...; see
``docs/observability.md`` for the taxonomy). Counting and charging share one
code path (:meth:`DistanceFunction._count`), so the attributed totals sum
*exactly* to ``n_calls`` — the conservation law the regression tests pin.
With no ledger active the cost is a single ``None`` check per counted batch.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

__all__ = [
    "DistanceFunction",
    "FunctionDistance",
    "CallLedger",
    "UNATTRIBUTED_SITE",
    "activate_ledger",
    "deactivate_ledger",
    "active_ledger",
    "push_site",
    "pop_site",
]

#: Site label for calls counted while a ledger is active but no span or
#: site is open (e.g. user code measuring distances between phases).
UNATTRIBUTED_SITE = "unattributed"


class CallLedger:
    """Site-attributed NCD accounting: who spent the distance calls.

    A ledger keeps a stack of *site* labels and a ``by_site`` histogram;
    :meth:`charge` books ``n`` calls against the innermost open site (or
    :data:`UNATTRIBUTED_SITE` when the stack is empty). At most one ledger
    is active at a time (see :func:`activate_ledger`); while active, every
    :class:`DistanceFunction` in the process charges it from the same
    statement that increments its own ``n_calls`` counter, so

    ``sum(ledger.by_site.values()) == ledger.total``

    always holds, and equals the per-metric NCD delta whenever a single
    metric is in play for the whole activation window.
    """

    __slots__ = ("stack", "by_site", "total")

    def __init__(self) -> None:
        #: Innermost-last stack of open site labels.
        self.stack: list[str] = []
        #: Calls charged per site label.
        self.by_site: dict[str, int] = {}
        #: Total calls charged (== sum of ``by_site`` values).
        self.total = 0

    def charge(self, n: int) -> None:
        """Book ``n`` distance calls against the innermost open site."""
        site = self.stack[-1] if self.stack else UNATTRIBUTED_SITE
        by_site = self.by_site
        by_site[site] = by_site.get(site, 0) + n
        self.total += n


#: The process-wide active ledger (``None`` = attribution disabled).
_ACTIVE_LEDGER: CallLedger | None = None


def activate_ledger(ledger: CallLedger) -> CallLedger | None:
    """Make ``ledger`` the active attribution target; returns the previous
    one (re-activate it via :func:`deactivate_ledger` when done)."""
    global _ACTIVE_LEDGER
    previous = _ACTIVE_LEDGER
    _ACTIVE_LEDGER = ledger
    return previous


def deactivate_ledger(previous: CallLedger | None = None) -> None:
    """Deactivate the active ledger, restoring ``previous`` (if given)."""
    global _ACTIVE_LEDGER
    _ACTIVE_LEDGER = previous


def active_ledger() -> CallLedger | None:
    """The currently active :class:`CallLedger`, or ``None``."""
    return _ACTIVE_LEDGER


def push_site(label: str) -> None:
    """Open attribution site ``label`` on the active ledger (no-op when
    attribution is disabled). Pair with :func:`pop_site` in a ``finally``."""
    ledger = _ACTIVE_LEDGER
    if ledger is not None:
        ledger.stack.append(label)


def pop_site() -> None:
    """Close the innermost site opened by :func:`push_site`.

    Tolerates an empty stack so a push skipped because attribution was
    disabled never underflows its paired pop.
    """
    ledger = _ACTIVE_LEDGER
    if ledger is not None and ledger.stack:
        ledger.stack.pop()


class DistanceFunction(ABC):
    """A distance function ``d : S x S -> R`` over a domain of objects.

    Implementations must satisfy the metric axioms the paper assumes:
    non-negativity, identity of indiscernibles, symmetry, and the triangle
    inequality. The library never verifies them at runtime (that would cost
    extra distance calls), but the test suite property-checks each shipped
    metric.

    Attributes
    ----------
    n_calls:
        Number of object pairs measured so far; the paper's NCD metric.
        Batch methods count one call per pair.
    """

    #: Human-readable identifier used in experiment reports.
    name: str = "distance"

    def __init__(self) -> None:
        self._n_calls = 0

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def n_calls(self) -> int:
        """Total number of distance evaluations (the paper's NCD)."""
        return self._n_calls

    def reset_counter(self) -> None:
        """Reset the NCD counter to zero (e.g. between experiment phases)."""
        self._n_calls = 0

    def _count(self, n: int) -> None:
        """Book ``n`` true evaluations: the NCD counter plus, when a
        :class:`CallLedger` is active, site attribution.

        Every counted path — here and in wrappers that own their counting,
        like :class:`~repro.robustness.GuardedMetric` — must go through
        this method; it is what keeps the per-site ledger and ``n_calls``
        in exact agreement.
        """
        self._n_calls += n
        ledger = _ACTIVE_LEDGER
        if ledger is not None:
            ledger.charge(n)

    def count_external(self, n: int, site: str | None = None) -> None:
        """Book ``n`` evaluations performed *outside* this process or object.

        The parallel build (:mod:`repro.parallel`) runs each shard with its
        own metric copy in a worker process; when the shard results come
        home, the parent re-books the worker-side call counts here so a
        single metric keeps the authoritative NCD total and, via
        :meth:`_count`, the active :class:`CallLedger` keeps partitioning
        ``n_calls`` exactly. ``site`` attributes the absorbed calls to the
        worker's original site label (``leaf-d0``, ``nonleaf-d2``, ...);
        ``None`` books them against the innermost open site.

        No distance values flow through this method — only accounting.
        """
        if n < 0:
            raise ValueError(f"cannot absorb a negative call count ({n})")
        if n == 0:
            return
        if site is None:
            self._count(n)
            return
        push_site(site)
        try:
            self._count(n)
        finally:
            pop_site()

    # ------------------------------------------------------------------
    # Public measuring API (counted)
    # ------------------------------------------------------------------
    def distance(self, a: Any, b: Any) -> float:
        """Return ``d(a, b)`` as a ``float``; counts one call.

        The result is coerced to ``float`` so user-supplied callables that
        return ints or numpy scalars (common for edit distances and other
        counting metrics) still satisfy the scalar contract downstream code
        relies on.
        """
        self._count(1)
        return float(self._distance(a, b))

    def one_to_many(self, obj: Any, objects: Sequence) -> np.ndarray:
        """Return distances from ``obj`` to each element of ``objects``.

        Counts ``len(objects)`` calls. Subclasses with vectorizable metrics
        override :meth:`_one_to_many`; the default loops over
        :meth:`_distance`.
        """
        n = len(objects)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        self._count(n)
        return self._one_to_many(obj, objects)

    def pairwise(self, objects: Sequence) -> np.ndarray:
        """Return the full symmetric distance matrix over ``objects``.

        Counts ``n * (n - 1) / 2`` calls (symmetry is exploited; the
        diagonal is free).
        """
        n = len(objects)
        pairs = n * (n - 1) // 2
        if pairs:
            self._count(pairs)
        return self._pairwise(objects)

    def cross(self, objects_a: Sequence, objects_b: Sequence) -> np.ndarray:
        """Return the ``|A| x |B|`` cross-distance matrix between two sets.

        Counts ``|A| * |B|`` calls. This is the batched gather behind D2
        computations and exact CF* merges: vectorized metrics pay one
        dispatch for the whole block instead of one per row.
        """
        na, nb = len(objects_a), len(objects_b)
        if na == 0 or nb == 0:
            return np.empty((na, nb), dtype=np.float64)
        self._count(na * nb)
        return self._cross(objects_a, objects_b)

    def __call__(self, a: Any, b: Any) -> float:
        return self.distance(a, b)

    # ------------------------------------------------------------------
    # Implementation hooks (uncounted)
    # ------------------------------------------------------------------
    @abstractmethod
    def _distance(self, a: Any, b: Any) -> float:
        """Compute ``d(a, b)`` without touching the counter."""

    def _one_to_many(self, obj: Any, objects: Sequence) -> np.ndarray:
        return np.fromiter(
            (self._distance(obj, o) for o in objects),
            dtype=np.float64,
            count=len(objects),
        )

    def _pairwise(self, objects: Sequence) -> np.ndarray:
        n = len(objects)
        out = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i + 1, n):
                d = self._distance(objects[i], objects[j])
                out[i, j] = d
                out[j, i] = d
        return out

    def _cross(self, objects_a: Sequence, objects_b: Sequence) -> np.ndarray:
        return np.stack([self._one_to_many(a, objects_b) for a in objects_a])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_calls={self._n_calls})"


class FunctionDistance(DistanceFunction):
    """Adapt a plain Python callable ``f(a, b) -> float`` into a metric.

    This is the extension point for user-defined distance spaces: any
    function satisfying the metric axioms can drive BUBBLE/BUBBLE-FM.

    Examples
    --------
    >>> metric = FunctionDistance(lambda a, b: abs(a - b), name="abs-diff")
    >>> metric.distance(3, 7)
    4.0
    >>> metric.n_calls
    1
    """

    def __init__(self, func: Callable[[object, object], float], name: str = "custom"):
        super().__init__()
        if not callable(func):
            raise TypeError("func must be callable")
        self._func = func
        self.name = name

    def _distance(self, a: Any, b: Any) -> float:
        return self._func(a, b)
