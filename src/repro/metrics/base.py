"""Abstract distance function with NCD (number-of-calls-to-d) accounting.

The BIRCH* framework and both BUBBLE algorithms interact with data objects
*only* through a :class:`DistanceFunction`. Implementations provide a scalar
``_distance`` and may override ``_one_to_many`` with a vectorized version;
the public wrappers maintain the call counter that the paper reports as NCD
(Section 6.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

__all__ = ["DistanceFunction", "FunctionDistance"]


class DistanceFunction(ABC):
    """A distance function ``d : S x S -> R`` over a domain of objects.

    Implementations must satisfy the metric axioms the paper assumes:
    non-negativity, identity of indiscernibles, symmetry, and the triangle
    inequality. The library never verifies them at runtime (that would cost
    extra distance calls), but the test suite property-checks each shipped
    metric.

    Attributes
    ----------
    n_calls:
        Number of object pairs measured so far; the paper's NCD metric.
        Batch methods count one call per pair.
    """

    #: Human-readable identifier used in experiment reports.
    name: str = "distance"

    def __init__(self) -> None:
        self._n_calls = 0

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def n_calls(self) -> int:
        """Total number of distance evaluations (the paper's NCD)."""
        return self._n_calls

    def reset_counter(self) -> None:
        """Reset the NCD counter to zero (e.g. between experiment phases)."""
        self._n_calls = 0

    # ------------------------------------------------------------------
    # Public measuring API (counted)
    # ------------------------------------------------------------------
    def distance(self, a: Any, b: Any) -> float:
        """Return ``d(a, b)`` as a ``float``; counts one call.

        The result is coerced to ``float`` so user-supplied callables that
        return ints or numpy scalars (common for edit distances and other
        counting metrics) still satisfy the scalar contract downstream code
        relies on.
        """
        self._n_calls += 1
        return float(self._distance(a, b))

    def one_to_many(self, obj: Any, objects: Sequence) -> np.ndarray:
        """Return distances from ``obj`` to each element of ``objects``.

        Counts ``len(objects)`` calls. Subclasses with vectorizable metrics
        override :meth:`_one_to_many`; the default loops over
        :meth:`_distance`.
        """
        n = len(objects)
        self._n_calls += n
        if n == 0:
            return np.empty(0, dtype=np.float64)
        return self._one_to_many(obj, objects)

    def pairwise(self, objects: Sequence) -> np.ndarray:
        """Return the full symmetric distance matrix over ``objects``.

        Counts ``n * (n - 1) / 2`` calls (symmetry is exploited; the
        diagonal is free).
        """
        n = len(objects)
        self._n_calls += n * (n - 1) // 2
        return self._pairwise(objects)

    def __call__(self, a: Any, b: Any) -> float:
        return self.distance(a, b)

    # ------------------------------------------------------------------
    # Implementation hooks (uncounted)
    # ------------------------------------------------------------------
    @abstractmethod
    def _distance(self, a: Any, b: Any) -> float:
        """Compute ``d(a, b)`` without touching the counter."""

    def _one_to_many(self, obj: Any, objects: Sequence) -> np.ndarray:
        return np.fromiter(
            (self._distance(obj, o) for o in objects),
            dtype=np.float64,
            count=len(objects),
        )

    def _pairwise(self, objects: Sequence) -> np.ndarray:
        n = len(objects)
        out = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i + 1, n):
                d = self._distance(objects[i], objects[j])
                out[i, j] = d
                out[j, i] = d
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_calls={self._n_calls})"


class FunctionDistance(DistanceFunction):
    """Adapt a plain Python callable ``f(a, b) -> float`` into a metric.

    This is the extension point for user-defined distance spaces: any
    function satisfying the metric axioms can drive BUBBLE/BUBBLE-FM.

    Examples
    --------
    >>> metric = FunctionDistance(lambda a, b: abs(a - b), name="abs-diff")
    >>> metric.distance(3, 7)
    4.0
    >>> metric.n_calls
    1
    """

    def __init__(self, func: Callable[[object, object], float], name: str = "custom"):
        super().__init__()
        if not callable(func):
            raise TypeError("func must be callable")
        self._func = func
        self.name = name

    def _distance(self, a: Any, b: Any) -> float:
        return self._func(a, b)
