"""String metrics: edit distance and variants.

The paper motivates the distance-space setting with the edit distance, whose
``O(mn)`` cost dominates clustering time on string data (Sections 1 and 7).
This module provides:

* :class:`EditDistance` — Levenshtein distance, the metric used by the
  data-cleaning application (Section 7);
* :class:`WeightedEditDistance` — per-operation costs (a metric as long as
  the costs are symmetric and positive);
* :class:`DamerauLevenshteinDistance` — adds adjacent transposition, which
  matches one of the corruption classes in bibliographic data;
* :class:`RelativeEditDistance` — length-normalized edit distance as used by
  the RED comparator of French, Powell and Schulman.

All DP loops are two-row and support an optional ``upper_bound`` early exit:
once every entry of the current row exceeds the bound the true distance
cannot come back below it, so the caller-supplied bound is returned instead.

Batched gathers (the ``one_to_many`` row a tree descent or an index query
issues) run the unit-cost Levenshtein DP over a whole block of targets at
once (:func:`levenshtein_block`): targets are padded into one code-point
matrix and each query character advances every target's DP row with a few
vectorized numpy operations, replacing ``len(objects)`` scalar DP loops
with one ``O(len(query))``-step block recurrence. Results and counted-call
accounting are bit-identical to the scalar loop.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.exceptions import MetricError, ParameterError
from repro.metrics.base import DistanceFunction

__all__ = [
    "edit_distance",
    "damerau_levenshtein",
    "levenshtein_block",
    "EditDistance",
    "WeightedEditDistance",
    "DamerauLevenshteinDistance",
    "RelativeEditDistance",
]


def edit_distance(
    a: str,
    b: str,
    insert_cost: float = 1.0,
    delete_cost: float = 1.0,
    substitute_cost: float = 1.0,
    upper_bound: float | None = None,
) -> float:
    """Weighted Levenshtein distance between two strings.

    Parameters
    ----------
    a, b:
        The strings to compare.
    insert_cost, delete_cost, substitute_cost:
        Per-operation costs. Defaults give the classic unit-cost edit
        distance. ``insert_cost`` must equal ``delete_cost`` for the result
        to be symmetric (and hence a metric); :class:`WeightedEditDistance`
        enforces this.
    upper_bound:
        If given, the computation stops as soon as the distance provably
        exceeds it and returns ``upper_bound`` itself. Useful when the caller
        only needs to know whether two strings are within a threshold.

    Returns
    -------
    float
        The minimum total cost of transforming ``a`` into ``b``. Integral
        for unit costs.
    """
    if a == b:
        return 0.0
    la, lb = len(a), len(b)
    if la == 0:
        total = lb * insert_cost
        return min(total, upper_bound) if upper_bound is not None else total
    if lb == 0:
        total = la * delete_cost
        return min(total, upper_bound) if upper_bound is not None else total
    # Ensure the inner loop runs over the longer string for fewer row swaps.
    prev = [j * insert_cost for j in range(lb + 1)]
    curr = [0.0] * (lb + 1)
    for i in range(1, la + 1):
        curr[0] = i * delete_cost
        ca = a[i - 1]
        row_min = curr[0]
        for j in range(1, lb + 1):
            cost_sub = prev[j - 1] + (0.0 if ca == b[j - 1] else substitute_cost)
            cost_del = prev[j] + delete_cost
            cost_ins = curr[j - 1] + insert_cost
            best = cost_sub
            if cost_del < best:
                best = cost_del
            if cost_ins < best:
                best = cost_ins
            curr[j] = best
            if best < row_min:
                row_min = best
        if upper_bound is not None and row_min > upper_bound:
            return float(upper_bound)
        prev, curr = curr, prev
    return float(prev[lb])


def damerau_levenshtein(a: str, b: str) -> float:
    """Restricted Damerau-Levenshtein distance (adjacent transpositions).

    Uses the optimal-string-alignment recurrence with three rows; each pair
    of adjacent characters may be transposed at cost 1.
    """
    if a == b:
        return 0.0
    la, lb = len(a), len(b)
    if la == 0:
        return float(lb)
    if lb == 0:
        return float(la)
    prev2 = [0.0] * (lb + 1)
    prev = [float(j) for j in range(lb + 1)]
    curr = [0.0] * (lb + 1)
    for i in range(1, la + 1):
        curr[0] = float(i)
        ca = a[i - 1]
        for j in range(1, lb + 1):
            cb = b[j - 1]
            cost = 0.0 if ca == cb else 1.0
            best = min(prev[j - 1] + cost, prev[j] + 1.0, curr[j - 1] + 1.0)
            if i > 1 and j > 1 and ca == b[j - 2] and a[i - 2] == cb:
                best = min(best, prev2[j - 2] + 1.0)
            curr[j] = best
        prev2, prev, curr = prev, curr, prev2
    return float(prev[lb])


#: Pad sentinel for the block DP's code-point matrix: not a valid Unicode
#: code point, so it never equals a query character and padded columns keep
#: accumulating cost — they can never leak into a real column's minimum at
#: or before the target's true length.
_PAD = np.uint32(0xFFFFFFFF)


def _codes(s: str) -> np.ndarray:
    """Unicode code points of ``s`` as a uint32 vector."""
    return np.frombuffer(s.encode("utf-32-le"), dtype=np.uint32)


def levenshtein_block(query: str, targets: Sequence[str]) -> np.ndarray:
    """Unit-cost Levenshtein distances from ``query`` to every target.

    One vectorized DP over a padded code-point matrix: for each query
    character the whole block's DP row advances with a handful of numpy
    operations (substitution/deletion elementwise, then the insertion
    running minimum via ``np.minimum.accumulate`` on cost-minus-column,
    the standard trick that turns the left-to-right dependency into an
    associative prefix scan). Exact — integral distances, bit-identical
    to :func:`edit_distance` per pair.
    """
    n = len(targets)
    out = np.empty(n, dtype=np.float64)
    if n == 0:
        return out
    q = _codes(query)
    lens = np.fromiter((len(t) for t in targets), count=n, dtype=np.int64)
    if len(q) == 0:
        return lens.astype(np.float64)
    width = int(lens.max())
    if width == 0:
        out[:] = float(len(q))
        return out
    block = np.full((n, width), _PAD, dtype=np.uint32)
    for row, t in enumerate(targets):
        if t:
            block[row, : len(t)] = _codes(t)
    arange = np.arange(width + 1, dtype=np.int64)
    prev = np.broadcast_to(arange, (n, width + 1)).copy()
    for i, code in enumerate(q, start=1):
        sub = prev[:, :-1] + (block != code)
        dele = prev[:, 1:] + 1
        stepped = np.minimum(sub, dele)
        # Insertion closes over the row: curr[j] = min_{j' <= j}
        # (cand[j'] + (j - j')) with cand[0] = i (the empty-target column).
        cand = np.concatenate(
            [np.full((n, 1), i, dtype=np.int64), stepped], axis=1
        )
        prev = np.minimum.accumulate(cand - arange, axis=1) + arange
    out[:] = prev[np.arange(n), lens]
    return out


def _require_str(x: Any) -> str:
    if not isinstance(x, str):
        raise MetricError(f"string metric expects str objects, got {type(x).__name__}")
    return x


class EditDistance(DistanceFunction):
    """Unit-cost Levenshtein distance — the paper's canonical expensive metric.

    Batched gathers (``one_to_many``, and ``cross``/``pairwise`` built on
    it) use the vectorized block DP of :func:`levenshtein_block` instead of
    a scalar loop when no ``upper_bound`` early exit is configured; the
    counted-call accounting is unchanged (the public wrappers charge by
    batch size before dispatch) and the results are bit-identical.
    """

    name = "edit-distance"

    def __init__(self, upper_bound: float | None = None):
        super().__init__()
        if upper_bound is not None and upper_bound <= 0:
            raise ParameterError(f"upper_bound must be > 0, got {upper_bound}")
        self.upper_bound = upper_bound

    def _distance(self, a: Any, b: Any) -> float:
        return edit_distance(_require_str(a), _require_str(b), upper_bound=self.upper_bound)

    def _one_to_many(self, obj: Any, objects: Sequence) -> np.ndarray:
        if self.upper_bound is not None:
            # The early-exit contract is per-pair; keep the scalar loop.
            return super()._one_to_many(obj, objects)
        query = _require_str(obj)
        return levenshtein_block(query, [_require_str(t) for t in objects])


class WeightedEditDistance(DistanceFunction):
    """Edit distance with custom operation costs.

    ``indel_cost`` is shared by insertion and deletion so the function stays
    symmetric; ``substitute_cost`` must not exceed ``2 * indel_cost`` or the
    triangle inequality could be violated through delete+insert paths.
    """

    def __init__(self, indel_cost: float = 1.0, substitute_cost: float = 1.0):
        super().__init__()
        if indel_cost <= 0 or substitute_cost <= 0:
            raise ParameterError("edit operation costs must be positive")
        if substitute_cost > 2 * indel_cost:
            raise ParameterError(
                "substitute_cost must be <= 2 * indel_cost to remain a metric "
                f"(got substitute={substitute_cost}, indel={indel_cost})"
            )
        self.indel_cost = float(indel_cost)
        self.substitute_cost = float(substitute_cost)
        self.name = f"weighted-edit(indel={indel_cost:g},sub={substitute_cost:g})"

    def _distance(self, a: Any, b: Any) -> float:
        return edit_distance(
            _require_str(a),
            _require_str(b),
            insert_cost=self.indel_cost,
            delete_cost=self.indel_cost,
            substitute_cost=self.substitute_cost,
        )


class DamerauLevenshteinDistance(DistanceFunction):
    """Edit distance that also counts adjacent transpositions as one operation.

    Matches the "transposition of characters" corruption class the paper
    lists for bibliographic strings. Note the restricted (OSA) variant is not
    a true metric in pathological cases; the unrestricted variant is, but the
    OSA form is what approximate-matching systems typically deploy and it
    behaves metrically on natural-language name data.
    """

    name = "damerau-levenshtein"

    def _distance(self, a: Any, b: Any) -> float:
        return damerau_levenshtein(_require_str(a), _require_str(b))


class RelativeEditDistance(DistanceFunction):
    """Length-normalized edit distance ``ed(a, b) / max(|a|, |b|)``.

    This is the similarity notion behind the RED clustering comparator
    (French, Powell & Schulman; used as the baseline in Table 3): two
    variants of one long name can differ by several characters, so the
    threshold must scale with string length.
    """

    name = "relative-edit-distance"

    def _distance(self, a: Any, b: Any) -> float:
        a, b = _require_str(a), _require_str(b)
        longer = max(len(a), len(b))
        if longer == 0:
            return 0.0
        return edit_distance(a, b) / longer
