"""Minkowski-family metrics over coordinate vectors.

The paper's synthetic experiments (Section 6.1) generate k-dimensional
vectors but deliberately treat them as opaque objects: "we do not exploit the
operations specific to coordinate spaces, and treat the vectors in the
dataset merely as objects. The distance between any two objects is returned
by the Euclidean distance function." These classes implement that contract —
the tree code only ever calls ``distance``/``one_to_many`` — while the
numpy-backed batch path keeps pure-Python overhead off the critical loop.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.exceptions import MetricError, ParameterError
from repro.metrics.base import DistanceFunction

__all__ = [
    "MinkowskiDistance",
    "EuclideanDistance",
    "ManhattanDistance",
    "ChebyshevDistance",
    "AngularDistance",
    "CanberraDistance",
    "as_matrix",
]


def as_matrix(objects: Sequence) -> np.ndarray:
    """Stack a sequence of vectors into a 2-d float64 matrix.

    Accepts an existing 2-d array (returned as-is after dtype coercion), a
    list of 1-d arrays, or a list of tuples/lists.
    """
    mat = np.asarray(objects, dtype=np.float64)
    if mat.ndim == 1:
        mat = mat.reshape(len(objects), -1)
    if mat.ndim != 2:
        raise MetricError(
            f"vector metric expects a sequence of 1-d vectors; got shape {mat.shape}"
        )
    return mat


class MinkowskiDistance(DistanceFunction):
    """The Lp metric ``d(x, y) = (sum |x_i - y_i|^p)^(1/p)`` for ``p >= 1``."""

    def __init__(self, p: float = 2.0):
        super().__init__()
        if not np.isfinite(p) or p < 1:
            raise ParameterError(f"Minkowski order p must satisfy p >= 1, got {p}")
        self.p = float(p)
        self.name = f"minkowski(p={self.p:g})"

    def _distance(self, a: Any, b: Any) -> float:
        va = np.asarray(a, dtype=np.float64)
        vb = np.asarray(b, dtype=np.float64)
        if va.ndim != 1 or vb.ndim != 1:
            raise MetricError(
                f"vector metric expects 1-d vectors, got shapes {va.shape} and {vb.shape}"
            )
        diff = np.abs(va - vb)
        if self.p == 2.0:
            return float(np.sqrt(np.dot(diff, diff)))
        if self.p == 1.0:
            return float(diff.sum())
        return float((diff**self.p).sum() ** (1.0 / self.p))

    def _one_to_many(self, obj: Any, objects: Sequence) -> np.ndarray:
        mat = as_matrix(objects)
        vec = np.asarray(obj, dtype=np.float64)
        if vec.ndim != 1:
            raise MetricError(f"vector metric expects a 1-d vector, got shape {vec.shape}")
        if vec.shape[-1] != mat.shape[1]:
            raise MetricError(
                f"dimension mismatch: object has {vec.shape[-1]} coordinates, "
                f"collection has {mat.shape[1]}"
            )
        diff = np.abs(mat - vec)
        if self.p == 2.0:
            return np.sqrt(np.einsum("ij,ij->i", diff, diff))
        if self.p == 1.0:
            return diff.sum(axis=1)
        return (diff**self.p).sum(axis=1) ** (1.0 / self.p)

    def _pairwise(self, objects: Sequence) -> np.ndarray:
        mat = as_matrix(objects)
        if self.p == 2.0:
            sq = np.einsum("ij,ij->i", mat, mat)
            gram = mat @ mat.T
            d2 = sq[:, None] + sq[None, :] - 2.0 * gram
            np.maximum(d2, 0.0, out=d2)
            np.fill_diagonal(d2, 0.0)
            return np.sqrt(d2)
        diff = np.abs(mat[:, None, :] - mat[None, :, :])
        if self.p == 1.0:
            return diff.sum(axis=2)
        return (diff**self.p).sum(axis=2) ** (1.0 / self.p)

    def _cross(self, objects_a: Sequence, objects_b: Sequence) -> np.ndarray:
        mat_a = as_matrix(objects_a)
        mat_b = as_matrix(objects_b)
        if mat_a.shape[1] != mat_b.shape[1]:
            raise MetricError(
                f"dimension mismatch: {mat_a.shape[1]} vs {mat_b.shape[1]} coordinates"
            )
        # Row-by-row |a_i - B| keeps each row bit-identical to the
        # corresponding `_one_to_many(a_i, objects_b)` result, which the
        # pruned-routing equivalence guarantee relies on.
        diff = np.abs(mat_a[:, None, :] - mat_b[None, :, :])
        if self.p == 2.0:
            return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        if self.p == 1.0:
            return diff.sum(axis=2)
        return (diff**self.p).sum(axis=2) ** (1.0 / self.p)


class EuclideanDistance(MinkowskiDistance):
    """The L2 metric; the distance function for all synthetic vector datasets."""

    def __init__(self) -> None:
        super().__init__(p=2.0)
        self.name = "euclidean"


class ManhattanDistance(MinkowskiDistance):
    """The L1 (city-block) metric."""

    def __init__(self) -> None:
        super().__init__(p=1.0)
        self.name = "manhattan"


class ChebyshevDistance(DistanceFunction):
    """The L-infinity metric ``d(x, y) = max_i |x_i - y_i|``."""

    name = "chebyshev"

    def _distance(self, a: Any, b: Any) -> float:
        diff = np.abs(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64))
        return float(diff.max()) if diff.size else 0.0

    def _one_to_many(self, obj: Any, objects: Sequence) -> np.ndarray:
        mat = as_matrix(objects)
        vec = np.asarray(obj, dtype=np.float64)
        return np.abs(mat - vec).max(axis=1)


class AngularDistance(DistanceFunction):
    """The angle between two vectors, ``arccos(cos_sim) / pi`` in [0, 1].

    Unlike raw cosine *dissimilarity* (``1 - cos``), the angle satisfies the
    triangle inequality, so BUBBLE's pruning and threshold logic remain
    sound. Useful for direction-only data (text embeddings, spectra). Zero
    vectors are not measurable.
    """

    name = "angular"

    def _distance(self, a: Any, b: Any) -> float:
        va = np.asarray(a, dtype=np.float64)
        vb = np.asarray(b, dtype=np.float64)
        na = float(np.linalg.norm(va))
        nb = float(np.linalg.norm(vb))
        if na == 0.0 or nb == 0.0:
            raise MetricError("angular distance is undefined for zero vectors")
        cos = float(np.dot(va, vb)) / (na * nb)
        return float(np.arccos(np.clip(cos, -1.0, 1.0)) / np.pi)

    def _one_to_many(self, obj: Any, objects: Sequence) -> np.ndarray:
        mat = as_matrix(objects)
        vec = np.asarray(obj, dtype=np.float64)
        nv = float(np.linalg.norm(vec))
        norms = np.linalg.norm(mat, axis=1)
        if nv == 0.0 or np.any(norms == 0.0):
            raise MetricError("angular distance is undefined for zero vectors")
        cos = (mat @ vec) / (norms * nv)
        return np.arccos(np.clip(cos, -1.0, 1.0)) / np.pi


class CanberraDistance(DistanceFunction):
    """Canberra distance: ``sum_i |x_i - y_i| / (|x_i| + |y_i|)``.

    A metric that weights differences near zero heavily; common for
    non-negative count data. Terms where both coordinates are zero
    contribute nothing (the standard convention).
    """

    name = "canberra"

    def _distance(self, a: Any, b: Any) -> float:
        va = np.asarray(a, dtype=np.float64)
        vb = np.asarray(b, dtype=np.float64)
        num = np.abs(va - vb)
        den = np.abs(va) + np.abs(vb)
        mask = den > 0
        return float((num[mask] / den[mask]).sum())

    def _one_to_many(self, obj: Any, objects: Sequence) -> np.ndarray:
        mat = as_matrix(objects)
        vec = np.asarray(obj, dtype=np.float64)
        num = np.abs(mat - vec)
        den = np.abs(mat) + np.abs(vec)
        with np.errstate(invalid="ignore", divide="ignore"):
            terms = np.where(den > 0, num / den, 0.0)
        return terms.sum(axis=1)
