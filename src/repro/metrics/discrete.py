"""Additional discrete metrics for user-defined distance spaces.

These are not used by the paper's experiments but round out the library for
downstream users clustering categorical or set-valued data, and they give the
property-based tests more metric instances to check the BIRCH* machinery
against.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import MetricError
from repro.metrics.base import DistanceFunction

__all__ = ["HammingDistance", "JaccardDistance", "DiscreteMetric"]


class HammingDistance(DistanceFunction):
    """Number of positions at which two equal-length sequences differ."""

    name = "hamming"

    def _distance(self, a: Any, b: Any) -> float:
        if len(a) != len(b):
            raise MetricError(
                f"Hamming distance requires equal lengths, got {len(a)} and {len(b)}"
            )
        return float(sum(x != y for x, y in zip(a, b)))


class JaccardDistance(DistanceFunction):
    """``1 - |A ∩ B| / |A ∪ B]`` over finite sets; a metric on sets."""

    name = "jaccard"

    def _distance(self, a: Any, b: Any) -> float:
        sa, sb = set(a), set(b)
        if not sa and not sb:
            return 0.0
        return 1.0 - len(sa & sb) / len(sa | sb)


class DiscreteMetric(DistanceFunction):
    """The trivial metric: 0 if objects are equal, 1 otherwise.

    Useful as a degenerate stress case for the CF*-tree: every distinct
    object is equidistant from every other, so no geometry can help.
    """

    name = "discrete"

    def _distance(self, a: Any, b: Any) -> float:
        return 0.0 if a == b else 1.0
