"""Measuring tagged objects ``(tag, obj)`` by their object component.

Index structures (M-tree) store opaque objects, but callers usually need to
recover *which* input an answer corresponds to. Wrapping items as
``(index, obj)`` pairs and the metric in :class:`TaggedMetric` keeps
identity without perturbing distances — and without any extra distance
calls, since the wrapper delegates counting to the inner metric.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.exceptions import ParameterError
from repro.metrics.base import DistanceFunction

__all__ = ["TaggedMetric"]


class TaggedMetric(DistanceFunction):
    """Distance over ``(tag, obj)`` pairs, delegating to an inner metric.

    ``n_calls`` reflects the inner metric's counter, so NCD accounting is
    unchanged by the wrapping.
    """

    def __init__(self, inner: DistanceFunction):
        super().__init__()
        if not isinstance(inner, DistanceFunction):
            raise ParameterError("inner must be a DistanceFunction")
        self.inner = inner
        self.name = f"tagged({inner.name})"

    @property
    def n_calls(self) -> int:
        return self.inner.n_calls

    def reset_counter(self) -> None:
        self.inner.reset_counter()

    def distance(self, a: Any, b: Any) -> float:
        return self.inner.distance(a[1], b[1])

    def one_to_many(self, obj: Any, objects: Sequence) -> np.ndarray:
        return self.inner.one_to_many(obj[1], [o[1] for o in objects])

    def _distance(self, a: Any, b: Any) -> float:
        # Wrapper hook-to-hook delegation: NCD is counted once, by whichever
        # public wrapper (this one's or the inner metric's) was entered.
        return self.inner._distance(a[1], b[1])  # reprolint: disable=RPL001 -- hook delegation; the public wrapper counts
