"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is invalid (wrong type, range, or combination)."""


class EmptyDatasetError(ReproError, ValueError):
    """An operation that requires at least one object received none."""


class NotFittedError(ReproError, RuntimeError):
    """A model method that requires a completed fit was called before fitting."""


class MetricError(ReproError, ValueError):
    """A distance function received objects it cannot measure."""


class TreeInvariantError(ReproError, RuntimeError):
    """An internal CF*-tree invariant was violated.

    This signals a bug in the tree maintenance code rather than bad user
    input; it is raised by the consistency checker used in tests.
    """
