"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "EmptyDatasetError",
    "NotFittedError",
    "MetricError",
    "MetricValueError",
    "MetricBudgetExceededError",
    "DeadlineExceededError",
    "QuarantineOverflowError",
    "CheckpointError",
    "StaleIndexError",
    "TreeInvariantError",
    "WorkerCrashError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is invalid (wrong type, range, or combination)."""


class EmptyDatasetError(ReproError, ValueError):
    """An operation that requires at least one object received none."""


class NotFittedError(ReproError, RuntimeError):
    """A model method that requires a completed fit was called before fitting."""


class MetricError(ReproError, ValueError):
    """A distance function received objects it cannot measure."""


class MetricValueError(MetricError):
    """A distance function returned a value that violates the metric contract.

    Raised by :class:`repro.robustness.GuardedMetric` when the wrapped
    function produces a NaN, an infinity, a negative distance, or (when
    symmetry spot-checks are enabled) ``d(a, b)`` and ``d(b, a)`` that
    disagree beyond tolerance.
    """


class MetricBudgetExceededError(ReproError, RuntimeError):
    """The distance-call (NCD) budget of a guarded metric was exhausted.

    Raised *before* the call that would overrun ``max_calls``, so the
    recorded NCD never exceeds the budget. Catch this to stop a scan
    gracefully — state built so far (tree, checkpoints) remains valid.
    """


class DeadlineExceededError(ReproError, RuntimeError):
    """The wall-clock deadline of a guarded metric passed.

    Raised on the first distance call after ``deadline_seconds`` elapses;
    like :class:`MetricBudgetExceededError` it aborts the scan without
    corrupting already-built state.
    """


class QuarantineOverflowError(ReproError, RuntimeError):
    """Too many objects were quarantined during a fault-tolerant scan.

    Raised when a quarantine buffer with a ``max_size`` would overflow —
    the circuit breaker distinguishing "a few bad records" (tolerable)
    from "the metric or the data feed is systematically broken" (abort).
    """


class CheckpointError(ReproError, ValueError):
    """A checkpoint file is missing, corrupt, or incompatible.

    Raised by :func:`repro.persistence.load_checkpoint` and by
    ``fit(..., resume_from=...)`` when the snapshot cannot be restored
    (wrong format version, truncated payload, or an algorithm mismatch).
    """


class WorkerCrashError(ReproError, RuntimeError):
    """A shard worker process died or hung during a parallel build.

    Raised by the shard supervisor (:mod:`repro.parallel.pool`) when a
    worker exits without delivering its result (SIGKILL, OOM kill, hard
    crash in native code) or overruns its per-shard timeout. The failed
    shard is retried with exponential backoff up to ``max_shard_retries``
    and finally re-executed inline in the parent; this exception only
    reaches the caller when every recovery path failed too.
    """


class StaleIndexError(ReproError, RuntimeError):
    """A metric index was queried after its backing structure changed.

    Raised by the ``cftree`` backend of :mod:`repro.index` when the
    CF*-tree it was built over has inserted objects, rebuilt, or changed
    shape since :meth:`~repro.index.CFTreeIndex.from_tree` ran — the
    cached anchor geometry would silently return wrong neighbours.
    Rebuild the index from the current tree to recover.
    """


class TreeInvariantError(ReproError, RuntimeError):
    """An internal CF*-tree invariant was violated.

    This signals a bug in the tree maintenance code rather than bad user
    input; it is raised by the consistency checker used in tests.
    """
