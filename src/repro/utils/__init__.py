"""Small shared utilities: seeded RNG handling, validation, sampling."""

from repro.utils.proc import peak_rss_kb
from repro.utils.rng import ensure_rng
from repro.utils.sampling import reservoir_sample, sample_without_replacement
from repro.utils.validation import (
    check_integer,
    check_positive,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "peak_rss_kb",
    "reservoir_sample",
    "sample_without_replacement",
    "check_integer",
    "check_positive",
    "check_probability",
]
