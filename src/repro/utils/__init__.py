"""Small shared utilities: seeded RNG handling, validation, sampling,
compensated numerics."""

from repro.utils.numerics import CompensatedAccumulator, compensated_add, neumaier_sum
from repro.utils.proc import peak_rss_kb
from repro.utils.rng import ensure_rng
from repro.utils.sampling import reservoir_sample, sample_without_replacement
from repro.utils.validation import (
    check_integer,
    check_positive,
    check_probability,
)

__all__ = [
    "CompensatedAccumulator",
    "compensated_add",
    "ensure_rng",
    "neumaier_sum",
    "peak_rss_kb",
    "reservoir_sample",
    "sample_without_replacement",
    "check_integer",
    "check_positive",
    "check_probability",
]
