"""Process resource introspection used by workers and the benchmark harness."""

from __future__ import annotations

import resource
import sys

__all__ = ["peak_rss_kb"]


def peak_rss_kb() -> int:
    """Peak resident set size of the calling process, in KiB.

    ``ru_maxrss`` is reported in KiB on Linux but in bytes on macOS; the
    value is normalized so BENCH records compare across platforms.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        peak //= 1024
    return int(peak)
