"""Compensated (Neumaier) floating-point accumulation.

The BIRCH*-family features maintain running sums of squared distances —
RowSums at BUBBLE leaves, the squared-deviation total of the vector CF —
over arbitrarily long insertion streams. A naive ``acc += x`` loop loses
up to one ulp *of the running total* per addition, so after ``n`` absorbs
the drift is ``O(n * eps * max_prefix)``: a single large addend early in
the stream silently swallows every small addend that follows (classic
example: ``1e16 + 1.0 + 1.0 + ...`` never moves).

Neumaier's variant of Kahan summation keeps a second float carrying the
rounding error of every addition, restoring the lost low-order bits when
the compensated value is read back. The error of ``sum + compensation``
is ``O(eps)`` relative, *independent of stream length and magnitude
spread* — which is what BETULA (Lang & Schubert, PAPERS.md) exploits to
keep BIRCH cluster features stable at scale, and what the CF* slab arena
(:mod:`repro.core.arena`) uses for its RowSum columns.

Three entry points:

* :func:`neumaier_sum` — one-shot compensated sum of a 1-D array;
* :func:`compensated_add` — **vectorized** in-place Neumaier update of
  parallel ``(sums, comps)`` ndarrays, the batch RowSum primitive (one
  fused update for a whole slab row instead of a scalar Python loop);
* :class:`CompensatedAccumulator` — a scalar running accumulator for
  single-value streams (the vector CF's SSE).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "CompensatedAccumulator",
    "compensated_add",
    "neumaier_sum",
]


def compensated_add(
    sums: np.ndarray, comps: np.ndarray, deltas: np.ndarray
) -> None:
    """Add ``deltas`` into the ``(sums, comps)`` pair in place, Neumaier-style.

    ``sums`` and ``comps`` are parallel float64 arrays (typically views
    into one slab row); the represented value of slot ``i`` is
    ``sums[i] + comps[i]``. Each slot absorbs ``deltas[i]`` with its
    rounding error captured in ``comps[i]``, so a slot's drift stays
    ``O(eps)`` relative no matter how many times it is updated or how the
    addend magnitudes are spread.

    All three arrays must share a shape; ``sums`` and ``comps`` must be
    writable float64 (views are fine — the update is fully vectorized).
    """
    totals = sums + deltas
    # Neumaier: whichever operand is larger in magnitude determines which
    # low-order bits the addition just rounded away.
    err_big_sum = (sums - totals) + deltas
    err_big_delta = (deltas - totals) + sums
    comps += np.where(np.abs(sums) >= np.abs(deltas), err_big_sum, err_big_delta)
    sums[...] = totals


def neumaier_sum(values: np.ndarray) -> float:
    """Compensated sum of a 1-D array; error ``O(eps)`` relative.

    Equivalent to ``math.fsum`` for practical purposes at a fraction of
    the cost for float64 inputs (single pass, two floats of state).
    """
    total = 0.0
    comp = 0.0
    for x in np.asarray(values, dtype=np.float64).ravel():
        v = float(x)
        t = total + v
        if abs(total) >= abs(v):
            comp += (total - t) + v
        else:
            comp += (v - t) + total
        total = t
    return total + comp


class CompensatedAccumulator:
    """Scalar Neumaier accumulator for long single-value streams.

    >>> acc = CompensatedAccumulator(1e16)
    >>> for _ in range(1000):
    ...     acc.add(1.0)
    >>> acc.value == 1e16 + 1000.0
    True

    The pair ``(total, compensation)`` is exposed so container types (the
    CF* slab, checkpoints) can persist the exact accumulator state and
    resume bit-equivalently.
    """

    __slots__ = ("total", "compensation")

    def __init__(self, value: float = 0.0, compensation: float = 0.0) -> None:
        self.total = float(value)
        self.compensation = float(compensation)

    def add(self, x: float) -> None:
        """Absorb one addend, capturing its rounding error."""
        v = float(x)
        t = self.total + v
        if abs(self.total) >= abs(v):
            self.compensation += (self.total - t) + v
        else:
            self.compensation += (v - t) + self.total
        self.total = t

    def add_many(self, values: np.ndarray) -> None:
        """Absorb a batch of addends (order-stable, same as repeated add)."""
        for x in np.asarray(values, dtype=np.float64).ravel():
            self.add(float(x))

    def merge(self, other: "CompensatedAccumulator") -> None:
        """Fold another accumulator in without losing either compensation."""
        self.add(other.total)
        self.add(other.compensation)

    @property
    def value(self) -> float:
        """The compensated running total."""
        return self.total + self.compensation

    def copy(self) -> "CompensatedAccumulator":
        return CompensatedAccumulator(self.total, self.compensation)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompensatedAccumulator({self.value!r})"
