"""Parameter validation helpers.

These raise :class:`repro.exceptions.ParameterError` with uniform messages so
that configuration mistakes surface early, at construction time, rather than
deep inside a tree insertion.
"""

from __future__ import annotations

import numbers

from repro.exceptions import ParameterError

__all__ = ["check_integer", "check_positive", "check_probability"]


def check_integer(value, name: str, minimum: int | None = None) -> int:
    """Validate that ``value`` is an integer (optionally ``>= minimum``)."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ParameterError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ParameterError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_positive(value, name: str, allow_zero: bool = False) -> float:
    """Validate that ``value`` is a positive (or non-negative) real number."""
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise ParameterError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if allow_zero:
        if value < 0:
            raise ParameterError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise ParameterError(f"{name} must be > 0, got {value}")
    return value


def check_probability(value, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise ParameterError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ParameterError(f"{name} must be in [0, 1], got {value}")
    return value
