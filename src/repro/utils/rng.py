"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that may
be ``None``, an integer, or an existing :class:`numpy.random.Generator`.
:func:`ensure_rng` normalizes all three into a ``Generator`` so call sites
never branch on the argument type.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng"]


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an ``int`` for a reproducible
        stream, or an existing ``Generator`` which is returned unchanged (so
        a caller can thread one generator through a whole experiment).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
