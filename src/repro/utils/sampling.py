"""Sampling primitives used by the CF*-tree sample-object machinery."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["reservoir_sample", "sample_without_replacement"]


def sample_without_replacement(
    items: Sequence,
    k: int,
    seed: int | np.random.Generator | None = None,
) -> list:
    """Return ``min(k, len(items))`` distinct items chosen uniformly.

    Unlike :meth:`numpy.random.Generator.choice`, this works for sequences of
    arbitrary Python objects (strings, tuples, user types) without coercing
    them into a numpy array.
    """
    rng = ensure_rng(seed)
    n = len(items)
    if k >= n:
        return list(items)
    idx = rng.choice(n, size=k, replace=False)
    return [items[int(i)] for i in idx]


def reservoir_sample(
    stream: Iterable,
    k: int,
    seed: int | np.random.Generator | None = None,
) -> list:
    """Classic reservoir sampling: k uniform samples from a one-pass stream.

    Used where the BIRCH* framework must sample from data it cannot hold in
    memory (e.g. picking initial FastMap pivot candidates from a data scan).
    """
    rng = ensure_rng(seed)
    reservoir: list = []
    for i, item in enumerate(stream):
        if i < k:
            reservoir.append(item)
        else:
            j = int(rng.integers(0, i + 1))
            if j < k:
                reservoir[j] = item
    return reservoir
