"""M-tree: a dynamic index for similarity search in metric spaces.

The paper cites Ciaccia, Patella & Zezula (VLDB 1997) when it notes that
"the distance function associated with a distance space can be
computationally very expensive". The M-tree is the canonical answer on the
*search* side: a height-balanced, disk-style index that supports exact range
and k-nearest-neighbour queries using only the metric and the triangle
inequality to prune.

In this reproduction it complements the CF*-tree: BUBBLE's tree routes
approximately (good enough for guiding insertions); an M-tree over the final
clustroids gives the *exact* second-phase labeling of Section 6.1 at far
fewer distance calls than a linear scan when there are many sub-clusters.
"""

from repro.mtree.mtree import MTree

__all__ = ["MTree"]
