"""M-tree (Ciaccia, Patella & Zezula, VLDB 1997) for exact metric search.

Structure
---------
Every node holds up to ``node_capacity`` entries. A leaf entry is a data
object plus its distance to the parent routing object; an internal entry is
a *routing object* with a covering radius, the distance to its own parent,
and a child node containing everything within the covering radius.

Queries prune with two triangle-inequality tests, cheapest first:

1. parent filter (no distance call): an entry with distance-to-parent
   ``d_p`` under a parent at distance ``d_qp`` from the query cannot contain
   anything within ``r`` of the query if ``|d_qp - d_p| > r + r_cov``;
2. direct filter (one call): compute ``d(q, routing)``; prune the subtree if
   ``d(q, routing) - r_cov > r``.

Splits promote the farthest pair of entries and partition the rest to the
closer promoted object (the paper's ``mM_RAD``-style confirmed promotion is
approximated by farthest-pair, which behaves comparably and needs no
quadratic confirmation step).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Iterable

import numpy as np

from repro.exceptions import EmptyDatasetError, ParameterError, TreeInvariantError
from repro.metrics.base import DistanceFunction
from repro.utils.validation import check_integer

__all__ = ["MTree"]


class _Entry:
    """One slot of an M-tree node.

    For leaf entries ``child is None`` and ``radius == 0``; for routing
    entries ``child`` is the covered subtree and ``radius`` its covering
    radius. ``dist_to_parent`` is ``None`` at the root (no parent routing
    object to measure against).
    """

    __slots__ = ("obj", "dist_to_parent", "radius", "child")

    def __init__(self, obj, dist_to_parent=None, radius: float = 0.0, child=None):
        self.obj = obj
        self.dist_to_parent = dist_to_parent
        self.radius = radius
        self.child = child


class _Node:
    __slots__ = ("entries", "is_leaf")

    def __init__(self, is_leaf: bool, entries: list[_Entry] | None = None):
        self.is_leaf = is_leaf
        self.entries: list[_Entry] = entries if entries is not None else []


class MTree:
    """Dynamic exact similarity index over an arbitrary metric space.

    Parameters
    ----------
    metric:
        The distance function; every evaluation counts toward its NCD.
    node_capacity:
        Maximum entries per node (≥ 2 required so splits can distribute).

    Examples
    --------
    >>> from repro.metrics import EditDistance
    >>> tree = MTree(EditDistance(), node_capacity=4)
    >>> for w in ["cat", "cart", "dog", "dig", "cog"]:
    ...     tree.insert(w)
    >>> sorted(obj for _, obj in tree.knn("cot", 2))
    ['cat', 'cog']
    """

    def __init__(self, metric: DistanceFunction, node_capacity: int = 8):
        if not isinstance(metric, DistanceFunction):
            raise ParameterError("metric must be a DistanceFunction")
        self.metric = metric
        self.node_capacity = check_integer(node_capacity, "node_capacity", minimum=2)
        self._root = _Node(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def insert(self, obj) -> None:
        """Insert one object."""
        split = self._insert_into(self._root, obj, parent_routing=None)
        if split is not None:
            self._grow_root(split)
        self._size += 1

    def build(self, objects: Iterable) -> "MTree":
        """Insert every object of an iterable; returns self."""
        for obj in objects:
            self.insert(obj)
        return self

    def _insert_into(self, node: _Node, obj, parent_routing):
        if node.is_leaf:
            dist = (
                None
                if parent_routing is None
                else self.metric.distance(obj, parent_routing)
            )
            node.entries.append(_Entry(obj, dist_to_parent=dist))
            if len(node.entries) > self.node_capacity:
                return self._split(node)
            return None

        # Choose the child: prefer one whose covering radius already
        # contains the object; otherwise the one needing least enlargement.
        dists = self.metric.one_to_many(obj, [e.obj for e in node.entries])
        inside = [i for i in range(len(dists)) if dists[i] <= node.entries[i].radius]
        if inside:
            best = min(inside, key=lambda i: dists[i])
        else:
            best = min(
                range(len(dists)), key=lambda i: dists[i] - node.entries[i].radius
            )
            node.entries[best].radius = float(dists[best])
        entry = node.entries[best]
        split = self._insert_into(entry.child, obj, parent_routing=entry.obj)
        if split is not None:
            left, right = split
            node.entries.pop(best)
            for new_entry in (left, right):
                if parent_routing is not None:
                    new_entry.dist_to_parent = self.metric.distance(
                        new_entry.obj, parent_routing
                    )
                node.entries.append(new_entry)
            if len(node.entries) > self.node_capacity:
                return self._split(node)
        return None

    def _split(self, node: _Node) -> tuple[_Entry, _Entry]:
        """Promote the farthest pair, partition to the closer promoted
        object, and return the two new routing entries."""
        entries = node.entries
        dm = self.metric.pairwise([e.obj for e in entries])
        flat = int(np.argmax(dm))
        ia, ib = divmod(flat, dm.shape[0])
        if ia == ib:  # all-identical objects: arbitrary halves
            half = len(entries) // 2
            groups = (list(range(half)), list(range(half, len(entries))))
        else:
            group_a, group_b = [], []
            for i in range(len(entries)):
                (group_a if dm[i, ia] <= dm[i, ib] else group_b).append(i)
            groups = (group_a, group_b)
            if not groups[0] or not groups[1]:  # pragma: no cover - defensive
                half = len(entries) // 2
                groups = (list(range(half)), list(range(half, len(entries))))

        promoted = []
        for anchor, idx_group in zip((ia, ib), groups):
            routing_obj = entries[anchor].obj
            child = _Node(is_leaf=node.is_leaf)
            radius = 0.0
            for i in idx_group:
                e = entries[i]
                d = float(dm[i, anchor])
                e.dist_to_parent = d
                child.entries.append(e)
                radius = max(radius, d + e.radius)
            promoted.append(_Entry(routing_obj, radius=radius, child=child))
        return promoted[0], promoted[1]

    def _grow_root(self, split: tuple[_Entry, _Entry]) -> None:
        left, right = split
        self._root = _Node(is_leaf=False, entries=[left, right])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, query, radius: float) -> list:
        """All indexed objects within ``radius`` of ``query`` (inclusive)."""
        if radius < 0:
            raise ParameterError(f"radius must be >= 0, got {radius}")
        out: list = []
        self._range(self._root, query, radius, d_query_parent=None, out=out)
        return out

    def _range(self, node: _Node, query, radius, d_query_parent, out) -> None:
        for e in node.entries:
            # Parent filter: free of distance calls.
            if (
                d_query_parent is not None
                and e.dist_to_parent is not None
                and abs(d_query_parent - e.dist_to_parent) > radius + e.radius
            ):
                continue
            d = self.metric.distance(query, e.obj)
            if node.is_leaf:
                if d <= radius:
                    out.append(e.obj)
            elif d <= radius + e.radius:
                self._range(e.child, query, radius, d_query_parent=d, out=out)

    def knn(self, query, k: int) -> list[tuple[float, object]]:
        """The ``k`` nearest objects as ``(distance, object)``, ascending.

        Uses best-first search on a priority queue of subtree lower bounds,
        shrinking the pruning radius as neighbours are confirmed.
        """
        k = check_integer(k, "k", minimum=1)
        if self._size == 0:
            raise EmptyDatasetError("knn on an empty MTree")
        counter = itertools.count()  # tie-breaker: objects may not be orderable
        # (lower_bound, tiebreak, node, d_query_parent)
        frontier: list = [(0.0, next(counter), self._root, None)]
        best: list[tuple[float, int, object]] = []  # max-heap via negation

        def current_radius() -> float:
            return -best[0][0] if len(best) == k else np.inf

        while frontier:
            lower, _, node, d_qp = heapq.heappop(frontier)
            if lower > current_radius():
                break
            for e in node.entries:
                if (
                    d_qp is not None
                    and e.dist_to_parent is not None
                    and abs(d_qp - e.dist_to_parent) > current_radius() + e.radius
                ):
                    continue
                # Best-first search prunes via the triangle inequality; the
                # inner loop is bounded by node capacity, and these counted
                # calls are exactly the query cost the index exists to shrink.
                d = self.metric.distance(query, e.obj)  # reprolint: disable=RPL004 -- triangle-pruned search; inner loop bounded by node capacity
                if node.is_leaf:
                    if d <= current_radius():
                        heapq.heappush(best, (-d, next(counter), e.obj))
                        if len(best) > k:
                            heapq.heappop(best)
                else:
                    bound = max(d - e.radius, 0.0)
                    if bound <= current_radius():
                        heapq.heappush(frontier, (bound, next(counter), e.child, d))
        return sorted((-neg, obj) for neg, _, obj in best)

    def nearest(self, query) -> tuple[float, object]:
        """Convenience: the single nearest object as ``(distance, object)``."""
        return self.knn(query, 1)[0]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        h, node = 1, self._root
        while not node.is_leaf:
            node = node.entries[0].child
            h += 1
        return h

    def items(self) -> Iterable:
        """Iterate over all indexed objects."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for e in node.entries:
                    yield e.obj
            else:
                stack.extend(e.child for e in node.entries)

    def check_invariants(self) -> None:
        """Verify covering radii and entry counts; raise on violation."""
        count = 0
        stack: list[tuple[_Node, object, float]] = [(self._root, None, np.inf)]
        while stack:
            node, routing, radius = stack.pop()
            if len(node.entries) > self.node_capacity:
                raise TreeInvariantError(
                    f"node holds {len(node.entries)} > capacity {self.node_capacity}"
                )
            for e in node.entries:
                if routing is not None:
                    # NCD-neutral audit: invariant checks must not perturb the
                    # call counter (cf. repro.analysis.audit).
                    d = self.metric._distance(e.obj, routing)  # reprolint: disable=RPL001 -- NCD-neutral invariant audit
                    if e.dist_to_parent is None or abs(d - e.dist_to_parent) > 1e-9:
                        raise TreeInvariantError("stale dist_to_parent")
                    if d - 1e-9 > radius:
                        raise TreeInvariantError("entry outside covering radius")
                if node.is_leaf:
                    count += 1
                else:
                    stack.append((e.child, e.obj, e.radius))
        if count != self._size:
            raise TreeInvariantError(f"size {self._size} != walked {count}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MTree(size={self._size}, height={self.height})"
