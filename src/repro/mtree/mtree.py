"""M-tree (Ciaccia, Patella & Zezula, VLDB 1997) for exact metric search.

Structure
---------
Every node holds up to ``node_capacity`` entries. A leaf entry is a data
object plus its distance to the parent routing object; an internal entry is
a *routing object* with a covering radius, the distance to its own parent,
and a child node containing everything within the covering radius.

Queries prune with two triangle-inequality tests, cheapest first:

1. parent filter (no distance call): an entry with distance-to-parent
   ``d_p`` under a parent at distance ``d_qp`` from the query cannot contain
   anything within ``r`` of the query if ``|d_qp - d_p| > r + r_cov``;
2. direct filter (one batched gather per node): compute ``d(q, routing)``
   for every surviving entry at once; prune the subtree if
   ``d(q, routing) - r_cov > r``.

Splits promote the farthest pair of entries and partition the rest to the
closer promoted object (the paper's ``mM_RAD``-style confirmed promotion is
approximated by farthest-pair, which behaves comparably and needs no
quadratic confirmation step).

The tree implements the :class:`repro.index.MetricIndex` protocol: objects
are indexed by insertion order, :meth:`~MTree.nearest`/:meth:`~MTree.within`
return typed :class:`~repro.index.QueryResult` records, per-node gathers go
through one counted ``one_to_many`` batch, and exact distances persist
across queries in the shared :class:`~repro.index.QueryBoundCache`. Routing
objects are copies of indexed objects and share their index, so a distance
paid on the way down is free when the leaf copy is reached.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from repro.exceptions import EmptyDatasetError, TreeInvariantError
from repro.index.base import (
    QUERY_BUILD_SITE,
    MetricIndex,
    NeighborHeap,
    QueryBoundCache,
    QuerySession,
)
from repro.metrics.base import DistanceFunction, pop_site, push_site
from repro.utils.validation import check_integer

__all__ = ["MTree"]


class _Entry:
    """One slot of an M-tree node.

    For leaf entries ``child is None`` and ``radius == 0``; for routing
    entries ``child`` is the covered subtree and ``radius`` its covering
    radius. ``dist_to_parent`` is ``None`` at the root (no parent routing
    object to measure against). ``index`` is the object's position in
    insertion order; a routing entry carries the index of the leaf object
    it was promoted from.
    """

    __slots__ = ("obj", "index", "dist_to_parent", "radius", "child")

    def __init__(
        self,
        obj: Any,
        index: int,
        dist_to_parent: float | None = None,
        radius: float = 0.0,
        child: "_Node | None" = None,
    ):
        self.obj = obj
        self.index = index
        self.dist_to_parent = dist_to_parent
        self.radius = radius
        self.child = child


class _Node:
    __slots__ = ("entries", "is_leaf")

    def __init__(self, is_leaf: bool, entries: list[_Entry] | None = None):
        self.is_leaf = is_leaf
        self.entries: list[_Entry] = entries if entries is not None else []


class MTree(MetricIndex):
    """Dynamic exact similarity index over an arbitrary metric space.

    Parameters
    ----------
    metric:
        The distance function; every evaluation counts toward its NCD.
    node_capacity:
        Maximum entries per node (≥ 2 required so splits can distribute).
    bound_cache:
        Optional shared :class:`~repro.index.QueryBoundCache`; defaults to
        a private one.

    Examples
    --------
    >>> from repro.metrics import EditDistance
    >>> tree = MTree(EditDistance(), node_capacity=4)
    >>> for w in ["cat", "cart", "dog", "dig", "cog"]:
    ...     tree.insert(w)
    >>> sorted(obj for _, obj in tree.knn("cot", 2))
    ['cat', 'cog']
    >>> [n.index for n in tree.nearest("cot", 1)]
    [0]
    """

    backend = "mtree"

    def __init__(
        self,
        metric: DistanceFunction,
        node_capacity: int = 8,
        bound_cache: QueryBoundCache | None = None,
    ):
        super().__init__(metric, bound_cache=bound_cache)
        self.node_capacity = check_integer(node_capacity, "node_capacity", minimum=2)
        self._root = _Node(is_leaf=True)
        self._size = 0
        self._objects: list[Any] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def insert(self, obj: Any) -> None:
        """Insert one object (its index is the current size)."""
        start_calls = self.metric.n_calls
        push_site(QUERY_BUILD_SITE)
        try:
            split = self._insert_into(
                self._root, obj, self._size, parent_routing=None
            )
            if split is not None:
                self._grow_root(split)
        finally:
            pop_site()
        self._objects.append(obj)
        self._size += 1
        self._count_build(start_calls)

    def build(self, objects: Iterable[Any]) -> "MTree":
        """Insert every object of an iterable; returns self."""
        for obj in objects:
            self.insert(obj)
        return self

    def _insert_into(
        self, node: _Node, obj: Any, index: int, parent_routing: Any
    ) -> tuple[_Entry, _Entry] | None:
        if node.is_leaf:
            dist = (
                None
                if parent_routing is None
                else float(self.metric.one_to_many(obj, [parent_routing])[0])
            )
            node.entries.append(_Entry(obj, index, dist_to_parent=dist))
            if len(node.entries) > self.node_capacity:
                return self._split(node)
            return None

        # Choose the child: prefer one whose covering radius already
        # contains the object; otherwise the one needing least enlargement.
        dists = self.metric.one_to_many(obj, [e.obj for e in node.entries])
        inside = [i for i in range(len(dists)) if dists[i] <= node.entries[i].radius]
        if inside:
            best = min(inside, key=lambda i: dists[i])
        else:
            best = min(
                range(len(dists)), key=lambda i: dists[i] - node.entries[i].radius
            )
            node.entries[best].radius = float(dists[best])
        entry = node.entries[best]
        split = self._insert_into(entry.child, obj, index, parent_routing=entry.obj)
        if split is not None:
            left, right = split
            node.entries.pop(best)
            if parent_routing is not None:
                # One batched gather re-measures both promoted entries.
                pair = self.metric.one_to_many(
                    parent_routing, [left.obj, right.obj]
                )
                left.dist_to_parent = float(pair[0])
                right.dist_to_parent = float(pair[1])
            node.entries.extend((left, right))
            if len(node.entries) > self.node_capacity:
                return self._split(node)
        return None

    def _split(self, node: _Node) -> tuple[_Entry, _Entry]:
        """Promote the farthest pair, partition to the closer promoted
        object, and return the two new routing entries."""
        entries = node.entries
        dm = self.metric.pairwise([e.obj for e in entries])
        flat = int(np.argmax(dm))
        ia, ib = divmod(flat, dm.shape[0])
        if ia == ib:  # all-identical objects: arbitrary halves
            half = len(entries) // 2
            groups = (list(range(half)), list(range(half, len(entries))))
        else:
            group_a, group_b = [], []
            for i in range(len(entries)):
                (group_a if dm[i, ia] <= dm[i, ib] else group_b).append(i)
            groups = (group_a, group_b)
            if not groups[0] or not groups[1]:  # pragma: no cover - defensive
                half = len(entries) // 2
                groups = (list(range(half)), list(range(half, len(entries))))

        promoted = []
        for anchor, idx_group in zip((ia, ib), groups):
            routing = entries[anchor]
            child = _Node(is_leaf=node.is_leaf)
            radius = 0.0
            for i in idx_group:
                e = entries[i]
                d = float(dm[i, anchor])
                e.dist_to_parent = d
                child.entries.append(e)
                radius = max(radius, d + e.radius)
            promoted.append(
                _Entry(routing.obj, routing.index, radius=radius, child=child)
            )
        return promoted[0], promoted[1]

    def _grow_root(self, split: tuple[_Entry, _Entry]) -> None:
        left, right = split
        self._root = _Node(is_leaf=False, entries=[left, right])

    # ------------------------------------------------------------------
    # MetricIndex protocol
    # ------------------------------------------------------------------
    @property
    def objects(self) -> Sequence[Any]:
        return self._objects

    def __len__(self) -> int:
        return self._size

    def _check_ready(self) -> None:
        if self._size == 0:
            raise EmptyDatasetError("query on an empty MTree")

    def _survivors(
        self,
        node: _Node,
        d_qp: float | None,
        tau: float,
        session: QuerySession,
    ) -> list[_Entry]:
        """Entries passing the (distance-free) parent filter at radius tau."""
        out = []
        for e in node.entries:
            if d_qp is not None and e.dist_to_parent is not None:
                session.bound_checks += 1
                if abs(d_qp - e.dist_to_parent) > tau + e.radius:
                    continue
            out.append(e)
        return out

    def _knn(
        self, session: QuerySession, obj: Any, k: int
    ) -> list[tuple[float, int]]:
        heap = NeighborHeap(k)
        counter = itertools.count()  # tie-breaker: nodes are not orderable
        # (lower_bound, tiebreak, node, d_query_parent)
        frontier: list[tuple[float, int, _Node, float | None]] = [
            (0.0, next(counter), self._root, None)
        ]
        while frontier:
            lower, _, node, d_qp = heapq.heappop(frontier)
            session.bound_checks += 1
            if lower > heap.tau:
                break
            survivors = self._survivors(node, d_qp, heap.tau, session)
            if not survivors:
                continue
            dists = session.measure_many([e.index for e in survivors])
            for e, value in zip(survivors, dists):
                d = float(value)
                # Routing objects are indexed objects too: offering them
                # tightens tau early and the heap dedupes by index.
                heap.offer(e.index, d)
                if not node.is_leaf:
                    bound = max(d - e.radius, 0.0)
                    session.bound_checks += 1
                    if bound <= heap.tau:
                        heapq.heappush(
                            frontier, (bound, next(counter), e.child, d)
                        )
        return heap.items()

    def _range(
        self, session: QuerySession, obj: Any, radius: float
    ) -> list[tuple[float, int]]:
        hits: dict[int, float] = {}
        stack: list[tuple[_Node, float | None]] = [(self._root, None)]
        while stack:
            node, d_qp = stack.pop()
            survivors = self._survivors(node, d_qp, radius, session)
            if not survivors:
                continue
            dists = session.measure_many([e.index for e in survivors])
            for e, value in zip(survivors, dists):
                d = float(value)
                if node.is_leaf:
                    if d <= radius:
                        hits[e.index] = d
                elif d <= radius + e.radius:
                    if d <= radius:
                        hits[e.index] = d
                    stack.append((e.child, d))
        return [(d, i) for i, d in hits.items()]

    # ------------------------------------------------------------------
    # Legacy query surface (kept for existing call sites)
    # ------------------------------------------------------------------
    def range_query(self, query: Any, radius: float) -> list:
        """All indexed objects within ``radius`` of ``query`` (inclusive)."""
        return [n.obj for n in self.within(query, radius)]

    def knn(self, query: Any, k: int) -> list[tuple[float, object]]:
        """The ``k`` nearest objects as ``(distance, object)``, ascending."""
        return [(n.distance, n.obj) for n in self.nearest(query, k)]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        h, node = 1, self._root
        while not node.is_leaf:
            node = node.entries[0].child
            h += 1
        return h

    def items(self) -> Iterable[Any]:
        """Iterate over all indexed objects."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for e in node.entries:
                    yield e.obj
            else:
                stack.extend(e.child for e in node.entries)

    def check_invariants(self) -> None:
        """Verify covering radii, entry counts, and index wiring."""
        count = 0
        stack: list[tuple[_Node, object, float]] = [(self._root, None, np.inf)]
        while stack:
            node, routing, radius = stack.pop()
            if len(node.entries) > self.node_capacity:
                raise TreeInvariantError(
                    f"node holds {len(node.entries)} > capacity {self.node_capacity}"
                )
            for e in node.entries:
                if e.obj is not self._objects[e.index]:
                    raise TreeInvariantError("entry index points at wrong object")
                if routing is not None:
                    # NCD-neutral audit: invariant checks must not perturb the
                    # call counter (cf. repro.analysis.audit).
                    d = self.metric._distance(e.obj, routing)  # reprolint: disable=RPL001 -- NCD-neutral invariant audit
                    if e.dist_to_parent is None or abs(d - e.dist_to_parent) > 1e-9:
                        raise TreeInvariantError("stale dist_to_parent")
                    if d - 1e-9 > radius:
                        raise TreeInvariantError("entry outside covering radius")
                if node.is_leaf:
                    count += 1
                else:
                    stack.append((e.child, e.obj, e.radius))
        if count != self._size:
            raise TreeInvariantError(f"size {self._size} != walked {count}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MTree(size={self._size}, height={self.height})"
