"""Landmark MDS: an alternative incremental distance-preserving mapper.

Section 5.2.2 of the paper observes that the mapping algorithm behind
BUBBLE-FM's image spaces is pluggable. Landmark MDS (de Silva & Tenenbaum)
is the natural alternative to FastMap:

1. choose ``m`` landmark objects (max-min farthest-point sampling);
2. run classical MDS on the ``m x m`` landmark distance matrix — exact for
   Euclidean-realizable distances, least-squares otherwise;
3. map any object by *triangulation* from its ``m`` distances to the
   landmarks: ``x = -1/2 * L⁺ (δ² - μ)`` where ``L⁺`` is the pseudo-inverse
   of the landmark coordinate matrix and ``μ`` the mean squared landmark
   distances.

Cost: fitting needs ``m(m-1)/2 + (N - m) * m`` distance calls; mapping a new
object needs ``m`` calls (vs FastMap's ``2k``), with a typically more
faithful image space because all axes come from one eigendecomposition
instead of sequential residual projections.

The class mirrors :class:`~repro.fastmap.FastMap`'s interface
(``fit`` / ``transform`` / ``transform_many`` / ``n_pivot_calls_per_object``)
so BUBBLE-FM can swap mappers.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.fastmap.mds import classical_mds
from repro.metrics.base import DistanceFunction
from repro.utils.rng import ensure_rng

__all__ = ["LandmarkMDS"]


class LandmarkMDS:
    """Embed a distance space into R^k via landmarks + triangulation.

    Parameters
    ----------
    metric:
        The distance function of the space (NCD accumulates on it).
    k:
        Image dimensionality.
    n_landmarks:
        Landmarks to use; defaults to ``2k + 2`` (at least ``k + 1`` are
        needed for a rank-k embedding; extras stabilize the least squares).
    seed:
        Seed/generator for the random start of the max-min sweep.
    """

    def __init__(
        self,
        metric: DistanceFunction,
        k: int,
        n_landmarks: int | None = None,
        seed: int | np.random.Generator | None = None,
    ):
        if not isinstance(metric, DistanceFunction):
            raise ParameterError("metric must be a DistanceFunction")
        if k < 1:
            raise ParameterError(f"image dimensionality k must be >= 1, got {k}")
        self.metric = metric
        self.k = int(k)
        if n_landmarks is None:
            n_landmarks = 2 * k + 2
        if n_landmarks < k + 1:
            raise ParameterError(
                f"n_landmarks must be >= k + 1 = {k + 1}, got {n_landmarks}"
            )
        self.n_landmarks = int(n_landmarks)
        self._rng = ensure_rng(seed)
        self.embedding_: np.ndarray | None = None
        self.landmarks_: list = []
        self._pinv: np.ndarray | None = None  # (k, m)
        self._mean_sq: np.ndarray | None = None  # (m,)

    # ------------------------------------------------------------------
    def fit(self, objects: Sequence) -> np.ndarray:
        """Embed ``objects``; landmarks are chosen among them."""
        n = len(objects)
        if n == 0:
            raise EmptyDatasetError("LandmarkMDS.fit requires at least one object")
        objects = list(objects)
        m = min(self.n_landmarks, n)

        landmark_idx = self._choose_landmarks(objects, m)
        self.landmarks_ = [objects[i] for i in landmark_idx]
        dm = self.metric.pairwise(self.landmarks_)
        coords = classical_mds(dm, self.k)

        # Triangulation operator for new objects.
        centered = coords - coords.mean(axis=0)
        self._pinv = np.linalg.pinv(centered)
        self._mean_sq = (dm**2).mean(axis=1)

        embedding = np.empty((n, self.k), dtype=np.float64)
        landmark_set = {int(i): pos for pos, i in enumerate(landmark_idx)}
        for i, obj in enumerate(objects):
            if i in landmark_set:
                embedding[i] = centered[landmark_set[i]]
            else:
                embedding[i] = self.transform(obj)
        self.embedding_ = embedding
        return embedding

    def _choose_landmarks(self, objects: list, m: int) -> list[int]:
        """Max-min (farthest point) sampling: spread landmarks out."""
        n = len(objects)
        if m >= n:
            return list(range(n))
        first = int(self._rng.integers(0, n))
        chosen = [first]
        min_dist = self.metric.one_to_many(objects[first], objects)
        for _ in range(m - 1):
            nxt = int(np.argmax(min_dist))
            if min_dist[nxt] <= 0:
                # Remaining objects duplicate chosen landmarks; fill randomly.
                remaining = [i for i in range(n) if i not in chosen]
                fill = self._rng.choice(
                    len(remaining), size=m - len(chosen), replace=False
                )
                chosen.extend(remaining[int(i)] for i in fill)
                break
            chosen.append(nxt)
            min_dist = np.minimum(
                min_dist, self.metric.one_to_many(objects[nxt], objects)
            )
        return chosen

    # ------------------------------------------------------------------
    def transform(self, obj) -> np.ndarray:
        """Map one object with exactly ``m`` distance calls."""
        if self._pinv is None:
            raise NotFittedError("LandmarkMDS.transform called before fit")
        deltas = self.metric.one_to_many(obj, self.landmarks_)
        return -0.5 * self._pinv @ (deltas**2 - self._mean_sq)  # reprolint: disable=RPL105 -- irreducible: Landmark-MDS triangulation is *defined* as double-centering the squared-distance row (de Silva & Tenenbaum); single-shot linear algebra, no accumulation to stabilize

    def transform_many(self, objects: Sequence) -> np.ndarray:
        if len(objects) == 0:
            return np.empty((0, self.k), dtype=np.float64)
        return np.vstack([self.transform(o) for o in objects])

    @property
    def n_pivot_calls_per_object(self) -> int:
        """Distance calls to incrementally map one object (= #landmarks)."""
        return len(self.landmarks_) if self.landmarks_ else self.n_landmarks
