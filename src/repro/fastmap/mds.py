"""Classical (Torgerson) multidimensional scaling and embedding diagnostics.

Lemma 4.1 of the paper guarantees that any finite distance space embeds
exactly into R^k for some ``k < N`` *when the distances are Euclidean-
realizable*; classical MDS constructs that embedding from the full distance
matrix via double centering. It needs all ``N(N-1)/2`` distances and cubic
time, which is exactly why the paper dismisses plain MDS for large N and
reaches for FastMap — but for small object sets it provides exact ground
truth that the test suite compares FastMap against.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import EmptyDatasetError, ParameterError
from repro.metrics.base import DistanceFunction

__all__ = ["classical_mds", "stress"]


def classical_mds(
    distance_matrix: np.ndarray,
    k: int,
) -> np.ndarray:
    """Embed objects into R^k from their full distance matrix.

    Parameters
    ----------
    distance_matrix:
        Symmetric ``(N, N)`` matrix of pairwise distances.
    k:
        Target dimensionality. If the space embeds exactly in fewer than
        ``k`` dimensions the extra coordinates are zero.

    Returns
    -------
    ``(N, k)`` array of coordinates whose pairwise Euclidean distances best
    approximate (exactly reproduce, when realizable) the input distances.
    """
    dm = np.asarray(distance_matrix, dtype=np.float64)
    if dm.ndim != 2 or dm.shape[0] != dm.shape[1]:
        raise ParameterError(f"distance_matrix must be square, got shape {dm.shape}")
    n = dm.shape[0]
    if n == 0:
        raise EmptyDatasetError("classical_mds requires at least one object")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    # Double centering: B = -1/2 * J D^2 J with J = I - 1/n 11^T.
    d2 = dm**2
    row_mean = d2.mean(axis=1, keepdims=True)
    col_mean = d2.mean(axis=0, keepdims=True)
    grand_mean = d2.mean()
    b = -0.5 * (d2 - row_mean - col_mean + grand_mean)
    eigvals, eigvecs = np.linalg.eigh(b)
    # eigh returns ascending order; take the k largest non-negative components.
    order = np.argsort(eigvals)[::-1]
    eigvals = eigvals[order][:k]
    eigvecs = eigvecs[:, order][:, :k]
    eigvals = np.clip(eigvals, 0.0, None)
    coords = eigvecs * np.sqrt(eigvals)
    if coords.shape[1] < k:
        coords = np.hstack([coords, np.zeros((n, k - coords.shape[1]))])
    return coords


def stress(
    objects: Sequence,
    images: np.ndarray,
    metric: DistanceFunction,
) -> float:
    """Kruskal stress-1 of an embedding: 0 means exact distance preservation.

    ``sqrt( sum (d_ij - ||x_i - x_j||)^2 / sum d_ij^2 )`` over all pairs.
    Counts ``N(N-1)/2`` distance calls, so use it for diagnostics on small
    samples, not inside algorithms.
    """
    n = len(objects)
    if n < 2:
        return 0.0
    images = np.asarray(images, dtype=np.float64)
    d_true = metric.pairwise(objects)
    diff = images[:, None, :] - images[None, :, :]
    d_img = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    iu = np.triu_indices(n, k=1)
    num = float(((d_true[iu] - d_img[iu]) ** 2).sum())
    den = float((d_true[iu] ** 2).sum())
    if den == 0.0:
        return 0.0
    return float(np.sqrt(num / den))
