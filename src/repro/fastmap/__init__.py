"""Distance-preserving transformations into coordinate ("image") spaces.

:class:`FastMap` (Faloutsos & Lin, SIGMOD 1995) is the workhorse: it embeds
N objects of any distance space into R^k with O(N·k) distance calls and can
*incrementally* map a new object with just 2k calls — the property BUBBLE-FM
exploits at non-leaf nodes (Section 5.1 of the paper).

:func:`classical_mds` is the exact (but O(N^2)-distance, O(N^3)-time)
Torgerson construction behind Lemma 4.1; the tests use it as ground truth
for FastMap's approximation on small inputs.
"""

from repro.fastmap.fastmap import FastMap
from repro.fastmap.landmark import LandmarkMDS
from repro.fastmap.mds import classical_mds, stress

__all__ = ["FastMap", "LandmarkMDS", "classical_mds", "stress"]
