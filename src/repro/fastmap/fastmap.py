"""FastMap: linear-time approximate distance-preserving embedding.

Following Faloutsos & Lin (SIGMOD 1995), each of the ``k`` image-space axes
is defined by a pair of *pivot objects* ``(O_a, O_b)`` chosen to be far
apart. An object ``O`` projects onto the axis through the cosine law::

    x = (d'^2(O_a, O) + d'^2(O_a, O_b) - d'^2(O_b, O)) / (2 * d'(O_a, O_b))

where ``d'`` is the distance *in the hyperplane orthogonal to all previous
axes*, computed from the original distance and the coordinates found so
far::

    d'^2(x, y) = d^2(x, y) - sum_{previous axes j} (x_j - y_j)^2

Fitting N objects costs ``(2 * iterations + 1) * N`` distance calls per axis
(the pivot search scans the dataset ``2 * iterations`` times, projection
reuses the final scan plus one more); the paper summarizes this as
``3 N k c``. Incrementally mapping one new object costs exactly ``2k`` calls
— this is what BUBBLE-FM banks on.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.metrics.base import DistanceFunction
from repro.utils.rng import ensure_rng

__all__ = ["FastMap"]


class FastMap:
    """Embed a distance space into R^k, with incremental mapping of new objects.

    Parameters
    ----------
    metric:
        The distance function of the space. Call counts accumulate on it.
    k:
        Image dimensionality (number of axes).
    iterations:
        Passes of the choose-distant-objects heuristic per axis (the
        parameter ``c`` in the paper, "typically set to 1 or 2").
    seed:
        Seed or generator for the random starting object of the pivot search.

    Attributes
    ----------
    embedding_:
        ``(N, k)`` array of image vectors for the fitted objects.
    pivot_objects_:
        List of ``k`` pivot pairs ``(O_a, O_b)``.
    axis_lengths_:
        ``d'(O_a, O_b)`` per axis; an entry of 0 marks a degenerate axis
        (all remaining coordinates are 0).

    Examples
    --------
    >>> from repro.metrics import EuclideanDistance
    >>> import numpy as np
    >>> pts = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 4.0], [3.0, 4.0]])
    >>> fm = FastMap(EuclideanDistance(), k=2, seed=0)
    >>> images = fm.fit(list(pts))
    >>> images.shape
    (4, 2)
    """

    def __init__(
        self,
        metric: DistanceFunction,
        k: int,
        iterations: int = 2,
        seed: int | np.random.Generator | None = None,
    ):
        if not isinstance(metric, DistanceFunction):
            raise ParameterError("metric must be a DistanceFunction")
        if k < 1:
            raise ParameterError(f"image dimensionality k must be >= 1, got {k}")
        if iterations < 1:
            raise ParameterError(f"iterations must be >= 1, got {iterations}")
        self.metric = metric
        self.k = int(k)
        self.iterations = int(iterations)
        self._rng = ensure_rng(seed)
        self.embedding_: np.ndarray | None = None
        self.pivot_objects_: list[tuple[object, object]] = []
        self.axis_lengths_: list[float] = []
        # Image coordinates of each axis's pivots on all *previous* axes,
        # needed to reduce original distances during incremental mapping.
        self._pivot_coords_a: list[np.ndarray] = []
        self._pivot_coords_b: list[np.ndarray] = []

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, objects: Sequence) -> np.ndarray:
        """Compute image vectors for ``objects`` and remember the pivots.

        Returns the ``(N, k)`` embedding; also stored as ``embedding_``.
        """
        n = len(objects)
        if n == 0:
            raise EmptyDatasetError("FastMap.fit requires at least one object")
        objects = list(objects)
        coords = np.zeros((n, self.k), dtype=np.float64)
        self.pivot_objects_ = []
        self.axis_lengths_ = []
        self._pivot_coords_a = []
        self._pivot_coords_b = []

        for axis in range(self.k):
            ia, ib, dist_ab2, dists_a2 = self._choose_pivots(objects, coords, axis)
            self.pivot_objects_.append((objects[ia], objects[ib]))
            self._pivot_coords_a.append(coords[ia, :axis].copy())
            self._pivot_coords_b.append(coords[ib, :axis].copy())
            if dist_ab2 <= 0.0:
                # All remaining inter-object distance is exhausted: every
                # object is at the same point in the residual space.
                self.axis_lengths_.append(0.0)
                continue
            dist_ab = float(np.sqrt(dist_ab2))
            self.axis_lengths_.append(dist_ab)
            dists_b2 = self._reduced_sq_to_all(objects[ib], coords[ib, :axis], objects, coords, axis)
            coords[:, axis] = (dists_a2 + dist_ab2 - dists_b2) / (2.0 * dist_ab)  # reprolint: disable=RPL105 -- irreducible: FastMap's projection (Eq. 3) is *defined* on squared residual distances; it is a single-shot cosine-law evaluation, not an accumulation, so there is no stable incremental form to rewrite into
        self.embedding_ = coords
        return coords

    def _choose_pivots(
        self,
        objects: list,
        coords: np.ndarray,
        axis: int,
    ) -> tuple[int, int, float, np.ndarray]:
        """Choose-distant-objects heuristic for axis ``axis``.

        Returns ``(index_a, index_b, d'^2(a, b), d'^2(a, *))`` where the last
        element is reused for the projection step (saving a scan).
        """
        n = len(objects)
        ib = int(self._rng.integers(0, n))
        ia = ib
        dists_from_a = np.zeros(n)
        for _ in range(self.iterations):
            dists_from_b = self._reduced_sq_to_all(
                objects[ib], coords[ib, :axis], objects, coords, axis
            )
            ia_new = int(np.argmax(dists_from_b))
            dists_from_a = self._reduced_sq_to_all(
                objects[ia_new], coords[ia_new, :axis], objects, coords, axis
            )
            ib_new = int(np.argmax(dists_from_a))
            ia, ib = ia_new, ib_new
            if ia == ib:
                break
        dist_ab2 = float(dists_from_a[ib]) if ia != ib else 0.0
        return ia, ib, dist_ab2, dists_from_a

    def _reduced_sq_to_all(
        self,
        obj,
        obj_coords: np.ndarray,
        objects: list,
        coords: np.ndarray,
        axis: int,
    ) -> np.ndarray:
        """``d'^2`` from ``obj`` to every fitted object in the residual space."""
        orig = self.metric.one_to_many(obj, objects)
        reduced = orig**2
        if axis > 0:
            diffs = coords[:, :axis] - obj_coords
            reduced -= np.einsum("ij,ij->i", diffs, diffs)
            np.maximum(reduced, 0.0, out=reduced)
        return reduced

    # ------------------------------------------------------------------
    # Incremental mapping
    # ------------------------------------------------------------------
    def transform(self, obj) -> np.ndarray:
        """Map one new object into the image space with exactly 2k distance calls."""
        if self.embedding_ is None:
            raise NotFittedError("FastMap.transform called before fit")
        x = np.zeros(self.k, dtype=np.float64)
        for axis, (pivot_a, pivot_b) in enumerate(self.pivot_objects_):
            d_oa = self.metric.distance(obj, pivot_a)
            d_ob = self.metric.distance(obj, pivot_b)
            length = self.axis_lengths_[axis]
            if length <= 0.0:
                continue
            da2 = d_oa**2 - _sq_norm(x[:axis] - self._pivot_coords_a[axis])
            db2 = d_ob**2 - _sq_norm(x[:axis] - self._pivot_coords_b[axis])
            da2 = max(da2, 0.0)
            db2 = max(db2, 0.0)
            x[axis] = (da2 + length**2 - db2) / (2.0 * length)  # reprolint: disable=RPL105 -- irreducible: same single-shot FastMap projection formula as fit(); defined on squared distances, nothing accumulates across calls
        return x

    def transform_many(self, objects: Sequence) -> np.ndarray:
        """Map a sequence of new objects; ``2k`` calls each."""
        if len(objects) == 0:
            return np.empty((0, self.k), dtype=np.float64)
        return np.vstack([self.transform(o) for o in objects])

    @property
    def n_pivot_calls_per_object(self) -> int:
        """Distance calls needed to incrementally map one object (= 2k)."""
        return 2 * self.k


def _sq_norm(v: np.ndarray) -> float:
    return float(np.dot(v, v)) if v.size else 0.0
