"""Hierarchical agglomerative clustering — the "global phase".

The paper's evaluation methodology (Section 6.1) further clusters the
clustroids of the sub-clusters returned by BUBBLE/BUBBLE-FM with a
hierarchical clustering algorithm to obtain the required number of clusters.
This package provides a distance-matrix-based agglomerative clusterer with
the classic Lance–Williams linkages, including size-weighted average linkage
so sub-cluster populations influence merges.
"""

from repro.hac.agglomerative import AgglomerativeClusterer, linkage_matrix

__all__ = ["AgglomerativeClusterer", "linkage_matrix"]
