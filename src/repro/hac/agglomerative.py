"""Agglomerative clustering over a distance matrix (Lance–Williams).

Works in any distance space: it only needs the pairwise distance matrix of
the items (for the paper's pipelines, the clustroids of the sub-clusters
found by the pre-clustering phase — a few hundred items, so the O(n^3)
worst case is immaterial next to the data scan).

Supported linkages (Lance–Williams update coefficients):

========== =====================================================
single      d(k, i∪j) = min(d(k,i), d(k,j))
complete    d(k, i∪j) = max(d(k,i), d(k,j))
average     size-weighted UPGMA: (n_i d(k,i) + n_j d(k,j)) / (n_i + n_j)
weighted    WPGMA: (d(k,i) + d(k,j)) / 2
========== =====================================================

Initial item sizes default to 1 but may be set to sub-cluster populations
via ``weights``, which makes ``average`` linkage respect how many objects
each clustroid stands for.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.metrics.base import DistanceFunction

__all__ = ["AgglomerativeClusterer", "linkage_matrix"]

_LINKAGES = ("single", "complete", "average", "weighted")
_METHODS = ("auto", "generic", "nn-chain")


def _lw_update(linkage: str, di: np.ndarray, dj: np.ndarray, ni: float, nj: float) -> np.ndarray:
    """Lance-Williams distance update for merging clusters i and j."""
    if linkage == "single":
        return np.minimum(di, dj)
    if linkage == "complete":
        return np.maximum(di, dj)
    if linkage == "average":
        return (ni * di + nj * dj) / (ni + nj)
    return 0.5 * (di + dj)  # weighted


class AgglomerativeClusterer:
    """Bottom-up hierarchical clustering with a chosen linkage.

    Parameters
    ----------
    n_clusters:
        Number of flat clusters to cut the dendrogram into. Mutually
        exclusive with ``distance_threshold``.
    linkage:
        One of ``single``, ``complete``, ``average``, ``weighted``.
    distance_threshold:
        Stop merging once the closest pair is farther than this; the number
        of clusters then depends on the data.

    Attributes
    ----------
    labels_:
        Flat cluster index per input item.
    merges_:
        List of ``(a, b, dist)`` in merge order, where ``a``/``b`` are
        cluster ids (item index for originals, ``n + k`` for the cluster
        created by merge ``k``) — the dendrogram.
    """

    def __init__(
        self,
        n_clusters: int | None = None,
        linkage: str = "average",
        distance_threshold: float | None = None,
        method: str = "auto",
    ):
        if linkage not in _LINKAGES:
            raise ParameterError(f"linkage must be one of {_LINKAGES}, got {linkage!r}")
        if method not in _METHODS:
            raise ParameterError(f"method must be one of {_METHODS}, got {method!r}")
        if (n_clusters is None) == (distance_threshold is None):
            raise ParameterError(
                "exactly one of n_clusters and distance_threshold must be given"
            )
        if n_clusters is not None and n_clusters < 1:
            raise ParameterError(f"n_clusters must be >= 1, got {n_clusters}")
        if distance_threshold is not None and distance_threshold < 0:
            raise ParameterError("distance_threshold must be >= 0")
        self.n_clusters = n_clusters
        self.linkage = linkage
        self.distance_threshold = distance_threshold
        #: ``generic`` is the O(n^3) masked-argmin loop; ``nn-chain`` the
        #: O(n^2) nearest-neighbour-chain algorithm (valid for all four
        #: supported linkages, which are reducible). ``auto`` picks
        #: nn-chain.
        self.method = method
        self.labels_: np.ndarray | None = None
        self.merges_: list[tuple[int, int, float]] = []

    # ------------------------------------------------------------------
    def fit(
        self,
        distance_matrix: np.ndarray | None = None,
        objects: Sequence | None = None,
        metric: DistanceFunction | None = None,
        weights: Sequence[float] | None = None,
    ) -> "AgglomerativeClusterer":
        """Cluster from a distance matrix, or from objects plus a metric.

        Exactly one of ``distance_matrix`` or (``objects`` and ``metric``)
        must be supplied. ``weights`` sets initial item sizes (sub-cluster
        populations) for size-aware linkages.
        """
        if distance_matrix is None:
            if objects is None or metric is None:
                raise ParameterError(
                    "provide either distance_matrix or both objects and metric"
                )
            distance_matrix = metric.pairwise(objects)
        dm = np.array(distance_matrix, dtype=np.float64, copy=True)
        if dm.ndim != 2 or dm.shape[0] != dm.shape[1]:
            raise ParameterError(f"distance matrix must be square, got {dm.shape}")
        n = dm.shape[0]
        if n == 0:
            raise EmptyDatasetError("cannot cluster zero items")
        if self.n_clusters is not None and self.n_clusters > n:
            raise ParameterError(
                f"n_clusters={self.n_clusters} exceeds number of items {n}"
            )
        sizes = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
        if sizes.shape != (n,):
            raise ParameterError(f"weights must have shape ({n},), got {sizes.shape}")

        np.fill_diagonal(dm, np.inf)
        if self.method == "generic":
            self._fit_generic(dm, sizes)
        else:
            self._fit_nn_chain(dm, sizes)
        return self

    # ------------------------------------------------------------------
    # O(n^3) reference implementation: repeated global argmin.
    # ------------------------------------------------------------------
    def _fit_generic(self, dm: np.ndarray, sizes: np.ndarray) -> None:
        n = dm.shape[0]
        self.merges_ = []
        active = np.ones(n, dtype=bool)
        cluster_id = list(range(n))
        members: dict[int, list[int]] = {i: [i] for i in range(n)}

        target = self.n_clusters if self.n_clusters is not None else 1
        remaining = n
        while remaining > target:
            masked = np.where(active[:, None] & active[None, :], dm, np.inf)
            flat = int(np.argmin(masked))
            i, j = divmod(flat, n)
            best = masked[i, j]
            if not np.isfinite(best):
                break
            if self.distance_threshold is not None and best > self.distance_threshold:
                break
            if j < i:
                i, j = j, i
            new_row = _lw_update(self.linkage, dm[i], dm[j], sizes[i], sizes[j])
            dm[i, :] = new_row
            dm[:, i] = new_row
            dm[i, i] = np.inf
            sizes[i] += sizes[j]
            active[j] = False
            new_id = n + len(self.merges_)
            self.merges_.append((cluster_id[i], cluster_id[j], float(best)))
            members[new_id] = members.pop(cluster_id[i]) + members.pop(cluster_id[j])
            cluster_id[i] = new_id
            remaining -= 1

        labels = np.empty(n, dtype=np.intp)
        for flat_label, row in enumerate(np.flatnonzero(active)):
            for item in members[cluster_id[row]]:
                labels[item] = flat_label
        self.labels_ = labels

    # ------------------------------------------------------------------
    # O(n^2) nearest-neighbour chain (Benzecri / Murtagh).
    # ------------------------------------------------------------------
    def _fit_nn_chain(self, dm: np.ndarray, sizes: np.ndarray) -> None:
        """Build the full dendrogram by following chains of nearest
        neighbours until a reciprocal pair is found, then cut it.

        Valid because every supported linkage is *reducible*: merging two
        clusters never brings the merged cluster closer to a third than
        either constituent was, so a reciprocal-nearest-neighbour pair
        remains one under unrelated merges and the chain never invalidates.
        The merges are discovered out of height order; cutting sorts them.
        """
        n = dm.shape[0]
        if n == 1:
            self.merges_ = []
            self.labels_ = np.zeros(1, dtype=np.intp)
            return
        active = np.ones(n, dtype=bool)
        cluster_id = list(range(n))
        dendrogram: list[tuple[int, int, float]] = []
        chain: list[int] = []

        while len(dendrogram) < n - 1:
            if not chain:
                chain.append(int(np.flatnonzero(active)[0]))
            while True:
                top = chain[-1]
                row = np.where(active, dm[top], np.inf)
                row[top] = np.inf
                nn = int(np.argmin(row))
                # Prefer the chain predecessor on ties to guarantee
                # reciprocal pairs terminate the walk.
                if len(chain) >= 2 and row[chain[-2]] <= row[nn]:
                    nn = chain[-2]
                if len(chain) >= 2 and nn == chain[-2]:
                    break
                chain.append(nn)
            b = chain.pop()
            a = chain.pop()
            dist = float(dm[a, b])
            new_row = _lw_update(self.linkage, dm[a], dm[b], sizes[a], sizes[b])
            dm[a, :] = new_row
            dm[:, a] = new_row
            dm[a, a] = np.inf
            sizes[a] += sizes[b]
            active[b] = False
            dendrogram.append((cluster_id[a], cluster_id[b], dist))
            cluster_id[a] = n + len(dendrogram) - 1

        self._cut_dendrogram(dendrogram, n)

    def _cut_dendrogram(self, dendrogram: list[tuple[int, int, float]], n: int) -> None:
        """Apply merges in height order until the stop rule fires."""
        order = sorted(range(len(dendrogram)), key=lambda k: dendrogram[k][2])
        # Union-find over original cluster ids (0..2n-2).
        parent = list(range(2 * n - 1))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        target = self.n_clusters if self.n_clusters is not None else 1
        remaining = n
        applied: list[tuple[int, int, float]] = []
        for k in order:
            if remaining <= target:
                break
            a, b, dist = dendrogram[k]
            if self.distance_threshold is not None and dist > self.distance_threshold:
                break
            new_id = n + k
            root = find(a)
            parent[root] = new_id
            root = find(b)
            parent[root] = new_id
            applied.append((a, b, dist))
            remaining -= 1
        self.merges_ = applied

        roots: dict[int, int] = {}
        labels = np.empty(n, dtype=np.intp)
        for item in range(n):
            root = find(item)
            if root not in roots:
                roots[root] = len(roots)
            labels[item] = roots[root]
        self.labels_ = labels

    # ------------------------------------------------------------------
    @property
    def n_clusters_(self) -> int:
        """Number of flat clusters actually produced."""
        if self.labels_ is None:
            raise NotFittedError("AgglomerativeClusterer has not been fitted")
        return int(self.labels_.max()) + 1

    def cluster_members(self) -> list[list[int]]:
        """Item indices of each flat cluster, by label."""
        if self.labels_ is None:
            raise NotFittedError("AgglomerativeClusterer has not been fitted")
        out: list[list[int]] = [[] for _ in range(self.n_clusters_)]
        for idx, lab in enumerate(self.labels_):
            out[int(lab)].append(idx)
        return out


def linkage_matrix(merges: list[tuple[int, int, float]], n: int) -> np.ndarray:
    """Convert a merge history to a scipy-style ``(n-1, 4)`` linkage matrix.

    Column 3 (the new cluster's size) is reconstructed from the history.
    Useful for plotting dendrograms with scipy without depending on it here.
    """
    sizes = {i: 1 for i in range(n)}
    out = np.zeros((len(merges), 4), dtype=np.float64)
    for k, (a, b, dist) in enumerate(merges):
        size = sizes[a] + sizes[b]
        sizes[n + k] = size
        out[k] = (a, b, dist, size)
    return out
