"""CLARA: sampled medoid search, parallel across the shard worker pool.

CLARANS over all leaf clustroids is the last sequential bottleneck of the
pipeline: each swap evaluation costs O(N) distance calls against the full
clustroid set. CLARA (Kaufman & Rousseeuw) sidesteps the quadratic blow-up
by drawing ``n_samples`` small subsamples, running the medoid search on
each sample independently, and keeping whichever candidate medoid set
scores best on the *full* dataset. The per-sample searches share nothing,
so they fan out across the same :class:`~repro.parallel.pool.ShardSupervisor`
worker pool the sharded build uses — crash detection, retries with fresh
metric copies, and inline fallback included.

Determinism: the sample draws and the per-sample search seeds both derive
from the root seed via ``SeedSequence.spawn``, samples are drawn in the
parent before dispatch, the supervisor returns results in task order, and
candidates are scored in that fixed order with a strict ``<`` best — so
the fitted medoids are a pure function of ``(objects, weights, seed,
n_samples, sample_size)`` and in particular independent of ``n_jobs``.

Accounting: each worker counts its sample search on a private metric copy
under its own :class:`~repro.metrics.base.CallLedger` with the
``global-sample`` site open; the parent re-books every successful
attempt's calls through
:func:`~repro.parallel.build.rebook_worker_calls` under a
``global-sample`` span, and scores candidates with batched ``cross()``
gathers under a ``global-assign`` span — so ``sum(by_site) == n_calls``
keeps holding through the sampled global phase, and calls spent by
crashed attempts die unbooked with the attempt.
"""

from __future__ import annotations

import os
import pickle
import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.clarans.clarans import CLARANS
from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.metrics.base import (
    CallLedger,
    DistanceFunction,
    activate_ledger,
    deactivate_ledger,
    pop_site,
    push_site,
)
from repro.observability.tracer import NULL_TRACER, NullTracer
from repro.parallel.build import _metric_blob, rebook_worker_calls
from repro.parallel.pool import ShardSupervisor
from repro.robustness.injection import ChaosPolicy

__all__ = ["CLARA", "SampleTask", "SampleResult", "run_sample"]

#: Site/span label for worker-side sample searches (and their re-booking).
SAMPLE_SITE = "global-sample"
#: Span label for the parent-side full-dataset candidate scoring.
ASSIGN_SITE = "global-assign"


@dataclass
class SampleTask:
    """One sample's medoid search, as shipped to a worker."""

    #: Position of this sample in the draw order (supervisor contract).
    shard_id: int
    #: Global indices of the sampled objects (into the fit sequence).
    indices: np.ndarray
    #: The sampled objects themselves, in index order.
    objects: list[Any]
    n_clusters: int
    num_local: int
    max_neighbors: int | None
    #: This worker's private metric copy (counter reset on arrival).
    metric: DistanceFunction
    #: Sample-derived seed for the CLARANS search (``None`` = fresh entropy).
    seed: int | None
    #: Zero-based attempt number (the supervisor bumps this on retries).
    attempt: int = 0
    #: Seeded fault schedule for chaos drills (``None`` in production).
    chaos: ChaosPolicy | None = None


@dataclass
class SampleResult:
    """What one sample search sends home: candidate medoids plus accounting."""

    shard_id: int
    #: Winning medoids as *global* indices into the fit sequence.
    medoid_indices: list[int]
    #: CLARANS cost on the sample (not the selection criterion — the parent
    #: re-scores every candidate on the full dataset).
    sample_cost: float
    #: Distance calls spent by this worker (its metric copy's NCD).
    n_calls: int
    #: Per-site split of ``n_calls`` (sums exactly to it).
    by_site: dict[str, int] = field(default_factory=dict)
    #: Worker wall-clock seconds for the whole sample search.
    elapsed_seconds: float = 0.0


def run_sample(task: SampleTask) -> SampleResult:
    """Run CLARANS on one sample; module-level so ``spawn`` can pickle it.

    Works identically inline (``n_jobs=1``) and in a worker process: the
    search runs on the task's private metric copy under a fresh
    :class:`CallLedger` with the ``global-sample`` site open, so every call
    comes home site-attributed and the parent's re-booking preserves the
    conservation law.
    """
    start = time.perf_counter()
    metric = task.metric
    if task.chaos is not None:
        # Same splice point as the sharded build: injected faults must hit
        # whatever guard machinery the real metric chain carries.
        metric = task.chaos.wrap_metric(metric, task.shard_id, task.attempt)
    metric.reset_counter()
    objects: Any = task.objects
    if task.chaos is not None:
        # The scheduled kill fires while the search materializes the sample.
        objects = task.chaos.stream(task.objects, task.shard_id, task.attempt)
    search = CLARANS(
        task.n_clusters,
        metric,
        num_local=task.num_local,
        max_neighbors=task.max_neighbors,
        seed=task.seed,
    )
    ledger = CallLedger()
    previous = activate_ledger(ledger)
    push_site(SAMPLE_SITE)
    try:
        search.fit(objects)
    finally:
        pop_site()
        deactivate_ledger(previous)
    assert search.medoid_indices_ is not None and search.cost_ is not None
    return SampleResult(
        shard_id=task.shard_id,
        medoid_indices=[int(task.indices[i]) for i in search.medoid_indices_],
        sample_cost=float(search.cost_),
        n_calls=metric.n_calls,
        by_site=dict(ledger.by_site),
        elapsed_seconds=time.perf_counter() - start,
    )


class CLARA:
    """Sampled k-medoid search: CLARANS per subsample, best by full cost.

    Parameters
    ----------
    n_clusters:
        Number of medoids ``k``.
    metric:
        The parent distance function; it must pickle (each worker gets a
        private copy) and it keeps the authoritative NCD total.
    n_samples:
        Subsamples to draw and search (the classic recommendation is 5).
    sample_size:
        Objects per subsample; defaults to the classic ``40 + 2k``, and is
        clamped into ``[k, N]``.
    num_local, max_neighbors:
        Passed through to each per-sample :class:`CLARANS` search.
    n_jobs:
        Worker processes for the sample searches; ``<= 1`` runs them
        inline. Never affects the fitted result.
    seed:
        Root seed. Must be an int or ``None`` — per-sample draw and search
        seeds are spawned from it, so a ``Generator`` (whose state the
        spawn cannot reproduce) is rejected.
    tracer:
        Observability tracer; sample re-booking lands under a
        ``global-sample`` span, full-dataset scoring under
        ``global-assign``.
    max_retries, retry_backoff:
        Supervisor retry policy for crashed/failed sample workers.
    chaos:
        Seeded fault schedule for drills (sample ids play the shard-id
        role).

    Attributes
    ----------
    medoids_:
        The winning medoid objects.
    medoid_indices_:
        Their positions in the fitted object sequence.
    labels_:
        Index of the closest winning medoid per object.
    cost_:
        Weighted full-dataset cost of the winning medoid set.
    sample_costs_:
        Full-dataset cost of every candidate, in sample order.
    best_sample_:
        Index of the winning sample.
    sample_summaries_:
        Per-sample dicts (size, NCD, wall, attempts) for reports.
    """

    def __init__(
        self,
        n_clusters: int,
        metric: DistanceFunction,
        *,
        n_samples: int = 5,
        sample_size: int | None = None,
        num_local: int = 2,
        max_neighbors: int | None = None,
        n_jobs: int = 1,
        seed: int | None = None,
        tracer: NullTracer = NULL_TRACER,
        max_retries: int = 2,
        retry_backoff: float = 0.25,
        chaos: ChaosPolicy | None = None,
    ) -> None:
        if n_clusters < 1:
            raise ParameterError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_samples < 1:
            raise ParameterError(f"n_samples must be >= 1, got {n_samples}")
        if sample_size is not None and sample_size < 1:
            raise ParameterError(f"sample_size must be >= 1, got {sample_size}")
        if isinstance(seed, np.random.Generator):
            raise ParameterError(
                "CLARA derives per-sample seeds from the root seed with "
                "SeedSequence.spawn, so seed must be an int or None, not a "
                "Generator"
            )
        self.n_clusters = int(n_clusters)
        self.metric = metric
        self.n_samples = int(n_samples)
        self.sample_size = None if sample_size is None else int(sample_size)
        self.num_local = int(num_local)
        self.max_neighbors = max_neighbors
        self.n_jobs = int(n_jobs)
        self.seed = seed if seed is None else int(seed)
        self.tracer = tracer
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.chaos = chaos
        self.medoids_: list[Any] | None = None
        self.medoid_indices_: list[int] | None = None
        self.labels_: np.ndarray | None = None
        self.cost_: float | None = None
        self.sample_costs_: list[float] | None = None
        self.best_sample_: int | None = None
        self.sample_summaries_: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    def _sample_seeds(self) -> list[tuple[int | None, int | None]]:
        """``(draw_seed, search_seed)`` per sample, spawned from the root."""
        if self.seed is None:
            return [(None, None)] * self.n_samples
        children = np.random.SeedSequence(self.seed).spawn(self.n_samples)
        seeds = []
        for child in children:
            draw, search = child.spawn(2)
            seeds.append(
                (
                    int(draw.generate_state(1, dtype=np.uint64)[0]),
                    int(search.generate_state(1, dtype=np.uint64)[0]),
                )
            )
        return seeds

    def _draw_indices(
        self, n: int, size: int, weights: np.ndarray, draw_seed: int | None
    ) -> np.ndarray:
        """Population-weighted sample of ``size`` distinct object indices."""
        if size >= n:
            return np.arange(n)
        rng = np.random.default_rng(draw_seed)
        return np.sort(
            rng.choice(n, size=size, replace=False, p=weights / weights.sum())
        )

    # ------------------------------------------------------------------
    def fit(
        self, objects: Sequence[Any], weights: Sequence[float] | None = None
    ) -> "CLARA":
        """Draw, search, and score the samples; keep the best medoid set.

        ``weights`` (e.g. leaf-cluster populations when the objects are
        clustroids) bias both the subsample draws and the full-dataset
        cost; omitted, every object weighs 1.
        """
        objs = list(objects)
        n = len(objs)
        if n == 0:
            raise EmptyDatasetError("CLARA.fit requires at least one object")
        if self.n_clusters > n:
            raise ParameterError(
                f"n_clusters={self.n_clusters} exceeds dataset size {n}"
            )
        w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
        if w.shape != (n,):
            raise ParameterError(f"weights must have length {n}, got shape {w.shape}")
        if not np.all(w > 0):
            raise ParameterError("weights must be strictly positive")

        k = self.n_clusters
        size = self.sample_size if self.sample_size is not None else 40 + 2 * k
        size = min(n, max(k, size))
        seeds = self._sample_seeds()
        blob = _metric_blob(self.metric)
        if self.chaos is not None:
            # Kills may only fire in worker processes, never in this parent.
            self.chaos.arm(os.getpid())

        tasks = []
        for sample_id, (draw_seed, search_seed) in enumerate(seeds):
            indices = self._draw_indices(n, size, w, draw_seed)
            tasks.append(
                SampleTask(
                    shard_id=sample_id,
                    indices=indices,
                    objects=[objs[int(i)] for i in indices],
                    n_clusters=k,
                    num_local=self.num_local,
                    max_neighbors=self.max_neighbors,
                    metric=pickle.loads(blob),
                    seed=search_seed,
                    chaos=self.chaos,
                )
            )

        tracer = self.tracer
        metric = self.metric

        def prepare_attempt(task: SampleTask, attempt: int) -> SampleTask:
            if attempt > 0:
                # A retry must replay the sample search from the identical
                # starting state the failed attempt had.
                task.metric = pickle.loads(blob)
            return task

        def absorb(result: SampleResult) -> None:
            # Re-book the successful attempt's worker-side calls on the
            # parent metric, preserving the worker's site labels, so the
            # ledger keeps partitioning n_calls exactly.
            with tracer.span(SAMPLE_SITE):
                rebook_worker_calls(metric, result.by_site, result.n_calls)

        supervisor = ShardSupervisor(
            tasks,
            n_jobs=self.n_jobs,
            runner=run_sample,
            max_retries=self.max_retries,
            backoff=self.retry_backoff,
            prepare_attempt=prepare_attempt,
            on_result=absorb,
        )

        with tracer.activation():
            results = supervisor.run()

            # Score every candidate on the full dataset in fixed sample
            # order; strict < makes ties resolve to the lowest sample id,
            # independent of worker completion order.
            best_cost = np.inf
            best_sample = -1
            best_labels: np.ndarray | None = None
            best_indices: list[int] | None = None
            sample_costs: list[float] = []
            with tracer.span(ASSIGN_SITE):
                for result in results:
                    medoid_objs = [objs[i] for i in result.medoid_indices]
                    dmat = metric.cross(medoid_objs, objs)
                    cost = float((dmat.min(axis=0) * w).sum())
                    sample_costs.append(cost)
                    if cost < best_cost:
                        best_cost = cost
                        best_sample = result.shard_id
                        best_labels = np.asarray(dmat.argmin(axis=0), dtype=np.intp)
                        best_indices = list(result.medoid_indices)

        if best_labels is None or best_indices is None:  # pragma: no cover
            raise NotFittedError("CLARA produced no candidate medoid set")

        failures = [f.shard_id for f in supervisor.stats.failures]
        self.sample_summaries_ = [
            {
                "sample_id": result.shard_id,
                "sample_size": len(tasks[result.shard_id].indices),
                "n_calls": result.n_calls,
                "elapsed_seconds": result.elapsed_seconds,
                "sample_cost": result.sample_cost,
                "full_cost": sample_costs[result.shard_id],
                "n_attempts": failures.count(result.shard_id) + 1,
            }
            for result in results
        ]
        self.sample_costs_ = sample_costs
        self.best_sample_ = best_sample
        self.medoid_indices_ = best_indices
        self.medoids_ = [objs[i] for i in best_indices]
        self.labels_ = best_labels
        self.cost_ = float(best_cost)
        return self

    # ------------------------------------------------------------------
    @property
    def n_clusters_(self) -> int:
        if self.medoids_ is None:
            raise NotFittedError("CLARA has not been fitted")
        return len(self.medoids_)
