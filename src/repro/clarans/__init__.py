"""CLARANS: randomized medoid search (Ng & Han, VLDB 1994).

Section 2 discusses CLARANS as the prior medoid-based method for spatial
data mining; we include a faithful implementation as a main-memory
comparator — it illustrates exactly the drawbacks the paper cites (all
objects must fit in memory; cost grows steeply with N), which the
ablation benchmarks quantify.
"""

from repro.clarans.clarans import CLARANS

__all__ = ["CLARANS"]
