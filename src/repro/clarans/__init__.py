"""CLARANS: randomized medoid search (Ng & Han, VLDB 1994).

Section 2 discusses CLARANS as the prior medoid-based method for spatial
data mining; we include a faithful implementation as a main-memory
comparator — it illustrates exactly the drawbacks the paper cites (all
objects must fit in memory; cost grows steeply with N), which the
ablation benchmarks quantify.

:mod:`repro.clarans.clara` adds the CLARA-style sampled variant: multiple
subsamples searched in parallel across the shard worker pool, candidates
scored by full-dataset cost, exact CLARANS kept as the quality reference.
"""

from repro.clarans.clara import CLARA, SampleResult, SampleTask, run_sample
from repro.clarans.clarans import CLARANS

__all__ = ["CLARANS", "CLARA", "SampleTask", "SampleResult", "run_sample"]
