"""CLARANS: Clustering Large Applications based on RANdomized Search.

K-medoid clustering as a search over the graph whose nodes are medoid sets
and whose edges swap one medoid for one non-medoid. From a random node,
CLARANS examines up to ``max_neighbors`` random swaps; any cost-improving
swap is taken immediately, and a node none of whose sampled neighbours
improves it is a local optimum. The best of ``num_local`` local optima wins.

The swap evaluation uses the standard incremental cost delta from cached
nearest/second-nearest medoid distances, so one candidate swap costs O(N)
distance calls rather than O(N * K).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.metrics.base import DistanceFunction
from repro.utils.rng import ensure_rng

__all__ = ["CLARANS"]


class CLARANS:
    """Randomized k-medoid search over a distance space.

    Parameters
    ----------
    n_clusters:
        Number of medoids ``k``.
    metric:
        The distance function (NCD accumulates on it).
    num_local:
        Local optima to collect (the paper's ``numlocal``; default 2).
    max_neighbors:
        Random swaps examined per node before declaring a local optimum;
        defaults to ``max(250, 1.25% of k * (N - k))`` as recommended by
        Ng & Han.
    seed:
        Seed or generator.

    Attributes
    ----------
    medoids_:
        The winning medoid objects.
    labels_:
        Index of the closest medoid per object.
    cost_:
        Total distance of objects to their closest medoid.
    """

    def __init__(
        self,
        n_clusters: int,
        metric: DistanceFunction,
        num_local: int = 2,
        max_neighbors: int | None = None,
        seed=None,
    ):
        if n_clusters < 1:
            raise ParameterError(f"n_clusters must be >= 1, got {n_clusters}")
        if num_local < 1:
            raise ParameterError(f"num_local must be >= 1, got {num_local}")
        if max_neighbors is not None and max_neighbors < 1:
            raise ParameterError(f"max_neighbors must be >= 1, got {max_neighbors}")
        self.n_clusters = int(n_clusters)
        self.metric = metric
        self.num_local = int(num_local)
        self.max_neighbors = max_neighbors
        self._rng = ensure_rng(seed)
        self.medoids_: list | None = None
        self.labels_: np.ndarray | None = None
        self.cost_: float | None = None

    # ------------------------------------------------------------------
    def fit(self, objects: Sequence) -> "CLARANS":
        objects = list(objects)
        n = len(objects)
        if n == 0:
            raise EmptyDatasetError("CLARANS.fit requires at least one object")
        if self.n_clusters > n:
            raise ParameterError(f"n_clusters={self.n_clusters} exceeds dataset size {n}")
        k = self.n_clusters
        max_neighbors = self.max_neighbors
        if max_neighbors is None:
            max_neighbors = max(250, int(0.0125 * k * (n - k)))

        best_cost = np.inf
        best_medoids: np.ndarray | None = None
        for _ in range(self.num_local):
            medoids = self._rng.choice(n, size=k, replace=False)
            nearest, second, near_lab = self._distances_to_medoids(objects, medoids)
            cost = float(nearest.sum())
            examined = 0
            while examined < max_neighbors:
                swap_out = int(self._rng.integers(0, k))
                swap_in = int(self._rng.integers(0, n))
                if swap_in in medoids:
                    examined += 1
                    continue
                delta, d_new = self._swap_delta(
                    objects, medoids, swap_out, swap_in, nearest, second, near_lab
                )
                if delta < -1e-12:
                    medoids[swap_out] = swap_in
                    nearest, second, near_lab = self._apply_swap(
                        objects, medoids, swap_out, d_new, nearest, second, near_lab
                    )
                    cost += delta
                    examined = 0
                else:
                    examined += 1
            if cost < best_cost:
                best_cost = cost
                best_medoids = medoids.copy()

        nearest, _, labels = self._distances_to_medoids(objects, best_medoids)
        self.medoids_ = [objects[int(i)] for i in best_medoids]
        self.labels_ = labels
        self.cost_ = float(nearest.sum())
        return self

    # ------------------------------------------------------------------
    def _distances_to_medoids(self, objects, medoids):
        """Nearest and second-nearest medoid distance (and nearest label)
        for every object."""
        cols = [self.metric.one_to_many(objects[int(m)], objects) for m in medoids]
        dmat = np.vstack(cols)  # (k, n)
        order = np.argsort(dmat, axis=0)
        near_lab = order[0]
        nearest = dmat[near_lab, np.arange(dmat.shape[1])]
        if dmat.shape[0] > 1:
            second = dmat[order[1], np.arange(dmat.shape[1])]
        else:
            second = np.full(dmat.shape[1], np.inf)
        return nearest, second, near_lab.astype(np.intp)

    def _swap_delta(self, objects, medoids, swap_out, swap_in, nearest, second, near_lab):
        """Cost change of replacing medoid ``swap_out`` with object
        ``swap_in`` — O(N) distance calls."""
        d_new = self.metric.one_to_many(objects[swap_in], objects)
        lost = near_lab == swap_out
        # Objects losing their medoid go to min(second-best, new); the rest
        # may only improve by switching to the new medoid.
        new_assign = np.where(lost, np.minimum(second, d_new), np.minimum(nearest, d_new))
        return float(new_assign.sum() - nearest.sum()), d_new

    def _apply_swap(self, objects, medoids, swap_out, d_new, nearest, second, near_lab):
        """Recompute the nearest/second caches after an accepted swap.

        A full recomputation against the current medoid set keeps the cache
        exact; it reuses the just-computed column for the incoming medoid.
        """
        cols = []
        for j, m in enumerate(medoids):
            if j == swap_out:
                cols.append(d_new)
            else:
                cols.append(self.metric.one_to_many(objects[int(m)], objects))
        dmat = np.vstack(cols)
        order = np.argsort(dmat, axis=0)
        near_lab = order[0]
        nearest = dmat[near_lab, np.arange(dmat.shape[1])]
        if dmat.shape[0] > 1:
            second = dmat[order[1], np.arange(dmat.shape[1])]
        else:
            second = np.full(dmat.shape[1], np.inf)
        return nearest, second, near_lab.astype(np.intp)

    # ------------------------------------------------------------------
    @property
    def n_clusters_(self) -> int:
        if self.medoids_ is None:
            raise NotFittedError("CLARANS has not been fitted")
        return len(self.medoids_)
