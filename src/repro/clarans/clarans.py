"""CLARANS: Clustering Large Applications based on RANdomized Search.

K-medoid clustering as a search over the graph whose nodes are medoid sets
and whose edges swap one medoid for one non-medoid. From a random node,
CLARANS examines up to ``max_neighbors`` random swaps; any cost-improving
swap is taken immediately, and a node none of whose sampled neighbours
improves it is a local optimum. The best of ``num_local`` local optima wins.

The swap evaluation uses the standard incremental cost delta from cached
nearest/second-nearest medoid distances, so one candidate swap costs O(N)
distance calls rather than O(N * K). The caches stay exact throughout —
the initial assignment and every accepted swap recompute them in full —
so the winning restart's nearest/label arrays are reused directly for
``labels_``/``cost_`` instead of paying a final k×n re-derivation pass.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.metrics.base import DistanceFunction
from repro.utils.rng import ensure_rng

__all__ = ["CLARANS"]

#: The three exact per-restart caches: nearest distance, second-nearest
#: distance, and nearest-medoid label for every object.
_Caches = tuple[np.ndarray, np.ndarray, np.ndarray]


class CLARANS:
    """Randomized k-medoid search over a distance space.

    Parameters
    ----------
    n_clusters:
        Number of medoids ``k``.
    metric:
        The distance function (NCD accumulates on it).
    num_local:
        Local optima to collect (the paper's ``numlocal``; default 2).
    max_neighbors:
        Random swaps examined per node before declaring a local optimum;
        defaults to ``max(250, 1.25% of k * (N - k))`` as recommended by
        Ng & Han.
    seed:
        Seed or generator.

    Attributes
    ----------
    medoids_:
        The winning medoid objects.
    medoid_indices_:
        Position of each winning medoid in the fitted object sequence.
    labels_:
        Index of the closest medoid per object.
    cost_:
        Total distance of objects to their closest medoid.
    """

    def __init__(
        self,
        n_clusters: int,
        metric: DistanceFunction,
        num_local: int = 2,
        max_neighbors: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if n_clusters < 1:
            raise ParameterError(f"n_clusters must be >= 1, got {n_clusters}")
        if num_local < 1:
            raise ParameterError(f"num_local must be >= 1, got {num_local}")
        if max_neighbors is not None and max_neighbors < 1:
            raise ParameterError(f"max_neighbors must be >= 1, got {max_neighbors}")
        self.n_clusters = int(n_clusters)
        self.metric = metric
        self.num_local = int(num_local)
        self.max_neighbors = max_neighbors
        self._rng = ensure_rng(seed)
        self.medoids_: list[Any] | None = None
        self.medoid_indices_: list[int] | None = None
        self.labels_: np.ndarray | None = None
        self.cost_: float | None = None

    # ------------------------------------------------------------------
    def fit(self, objects: Sequence[Any]) -> "CLARANS":
        objs = list(objects)
        n = len(objs)
        if n == 0:
            raise EmptyDatasetError("CLARANS.fit requires at least one object")
        if self.n_clusters > n:
            raise ParameterError(f"n_clusters={self.n_clusters} exceeds dataset size {n}")
        k = self.n_clusters
        max_neighbors = self.max_neighbors
        if max_neighbors is None:
            max_neighbors = max(250, int(0.0125 * k * (n - k)))

        best_cost = np.inf
        best: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        for _ in range(self.num_local):
            medoids = np.asarray(self._rng.choice(n, size=k, replace=False))
            nearest, second, near_lab = self._distances_to_medoids(objs, medoids)
            cost = float(nearest.sum())
            examined = 0
            while examined < max_neighbors:
                swap_out = int(self._rng.integers(0, k))
                swap_in = int(self._rng.integers(0, n))
                if swap_in in medoids:
                    examined += 1
                    continue
                delta, d_new = self._swap_delta(
                    objs, swap_out, swap_in, nearest, second, near_lab
                )
                if delta < -1e-12:
                    medoids[swap_out] = swap_in
                    nearest, second, near_lab = self._apply_swap(
                        objs, medoids, swap_out, d_new
                    )
                    cost += delta
                    examined = 0
                else:
                    examined += 1
            if cost < best_cost:
                best_cost = cost
                # The caches are exact for the restart's final medoid set
                # (full recomputation at init and after every accepted
                # swap), so keep them instead of re-deriving nearest/labels
                # with a k*n pass after the restarts.
                best = (medoids.copy(), nearest.copy(), near_lab.copy())

        if best is None:  # pragma: no cover - num_local >= 1 guarantees a best
            raise NotFittedError("CLARANS found no restart result")
        best_medoids, best_nearest, best_labels = best
        self.medoid_indices_ = [int(i) for i in best_medoids]
        self.medoids_ = [objs[int(i)] for i in best_medoids]
        self.labels_ = best_labels
        self.cost_ = float(best_nearest.sum())
        return self

    # ------------------------------------------------------------------
    def _distances_to_medoids(
        self, objects: list[Any], medoids: np.ndarray
    ) -> _Caches:
        """Nearest and second-nearest medoid distance (and nearest label)
        for every object."""
        cols = [self.metric.one_to_many(objects[int(m)], objects) for m in medoids]
        return self._caches_from_columns(cols)

    def _caches_from_columns(self, cols: list[np.ndarray]) -> _Caches:
        """Exact nearest/second/label caches from per-medoid distance rows."""
        dmat = np.vstack(cols)  # (k, n)
        order = np.argsort(dmat, axis=0)
        near_lab = order[0]
        nearest = dmat[near_lab, np.arange(dmat.shape[1])]
        if dmat.shape[0] > 1:
            second = dmat[order[1], np.arange(dmat.shape[1])]
        else:
            second = np.full(dmat.shape[1], np.inf)
        return nearest, second, near_lab.astype(np.intp)

    def _swap_delta(
        self,
        objects: list[Any],
        swap_out: int,
        swap_in: int,
        nearest: np.ndarray,
        second: np.ndarray,
        near_lab: np.ndarray,
    ) -> tuple[float, np.ndarray]:
        """Cost change of replacing medoid ``swap_out`` with object
        ``swap_in`` — O(N) distance calls."""
        d_new = self.metric.one_to_many(objects[swap_in], objects)
        lost = near_lab == swap_out
        # Objects losing their medoid go to min(second-best, new); the rest
        # may only improve by switching to the new medoid.
        new_assign = np.where(lost, np.minimum(second, d_new), np.minimum(nearest, d_new))
        return float(new_assign.sum() - nearest.sum()), d_new

    def _apply_swap(
        self,
        objects: list[Any],
        medoids: np.ndarray,
        swap_out: int,
        d_new: np.ndarray,
    ) -> _Caches:
        """Recompute the nearest/second caches after an accepted swap.

        A full recomputation against the current medoid set keeps the cache
        exact; it reuses the just-computed column for the incoming medoid.
        """
        cols = []
        for j, m in enumerate(medoids):
            if j == swap_out:
                cols.append(d_new)
            else:
                cols.append(self.metric.one_to_many(objects[int(m)], objects))
        return self._caches_from_columns(cols)

    # ------------------------------------------------------------------
    @property
    def n_clusters_(self) -> int:
        if self.medoids_ is None:
            raise NotFittedError("CLARANS has not been fitted")
        return len(self.medoids_)
