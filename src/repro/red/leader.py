"""Leader clustering with relative edit distance.

The authority-file approach of French, Powell & Schulman groups variant
strings by comparing each incoming record against the representative strings
of the clusters formed so far: the record joins the closest cluster whose
representative lies within a relative-edit-distance threshold, otherwise it
founds a new cluster and becomes its representative.

Complexity is O(N * K) edit-distance computations with K clusters — the
cost that makes RED orders of magnitude slower than BUBBLE-FM on large
authority files (Table 3: 45 h vs 7.5 h at paper scale).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.metrics.base import DistanceFunction
from repro.metrics.string import RelativeEditDistance

__all__ = ["REDClusterer"]


class REDClusterer:
    """Single-pass leader clustering over strings.

    Parameters
    ----------
    threshold:
        Maximum relative edit distance for joining an existing cluster
        (a fraction of the longer string's length, in (0, 1]).
    metric:
        Distance to compare records against representatives; defaults to
        :class:`~repro.metrics.RelativeEditDistance`.
    cache_exact:
        When True, records identical to an already-seen string reuse its
        assignment without any distance calls — real systems dedupe too,
        and RDS-like data is dominated by exact duplicates.

    Attributes
    ----------
    labels_:
        Cluster index per input record.
    representatives_:
        The founding string of each cluster.
    """

    def __init__(
        self,
        threshold: float = 0.2,
        metric: DistanceFunction | None = None,
        cache_exact: bool = True,
    ):
        if not 0 < threshold <= 1:
            raise ParameterError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = float(threshold)
        self.metric = metric if metric is not None else RelativeEditDistance()
        self.cache_exact = bool(cache_exact)
        self.labels_: np.ndarray | None = None
        self.representatives_: list[str] = []

    def fit(self, strings: Iterable[str]) -> "REDClusterer":
        """Cluster ``strings`` in one pass."""
        labels: list[int] = []
        reps: list[str] = []
        seen: dict[str, int] = {}
        n = 0
        for s in strings:
            n += 1
            if self.cache_exact and s in seen:
                labels.append(seen[s])
                continue
            if reps:
                dists = self.metric.one_to_many(s, reps)
                best = int(np.argmin(dists))
                if float(dists[best]) <= self.threshold:
                    labels.append(best)
                    if self.cache_exact:
                        seen[s] = best
                    continue
            reps.append(s)
            label = len(reps) - 1
            labels.append(label)
            if self.cache_exact:
                seen[s] = label
        if n == 0:
            raise EmptyDatasetError("REDClusterer.fit requires at least one string")
        self.labels_ = np.asarray(labels, dtype=np.intp)
        self.representatives_ = reps
        return self

    @property
    def n_clusters_(self) -> int:
        if self.labels_ is None:
            raise NotFittedError("REDClusterer has not been fitted")
        return len(self.representatives_)

    def assign(self, strings: Iterable[str]) -> np.ndarray:
        """Label new records by their nearest existing representative."""
        if self.labels_ is None:
            raise NotFittedError("REDClusterer has not been fitted")
        return np.asarray(
            [int(np.argmin(self.metric.one_to_many(s, self.representatives_))) for s in strings],
            dtype=np.intp,
        )
