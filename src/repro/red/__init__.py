"""RED: the relative-edit-distance comparator of Table 3.

The paper benchmarks BUBBLE-FM's data-cleaning speed against "some other
clustering approaches [14, 15] which use relative edit distance (RED)" —
the approximate-word-matching pipeline of French, Powell and Schulman for
automating authority-file construction.
"""

from repro.red.leader import REDClusterer

__all__ = ["REDClusterer"]
