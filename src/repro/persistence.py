"""Persisting pre-clustering results and in-flight scan checkpoints.

The point of pre-clustering (Section 2) is to hand a *condensed* dataset to
later, more expensive analysis — which often happens in another process or
on another day. This module serializes the sub-cluster summaries
(:class:`~repro.core.features.SubCluster`) to JSON and back.

Vectors and strings round-trip out of the box; arbitrary object types can
supply ``encode`` / ``decode`` callables.

It also provides **scan checkpoints** (:func:`save_checkpoint` /
:func:`load_checkpoint`): full snapshots of a live CF*-tree — structure,
policy state, RNG state — plus the scan cursor, so a build killed at object
9-million restarts from the last checkpoint instead of from zero. Because
data objects are arbitrary Python values, checkpoints use :mod:`pickle`;
the one thing deliberately *excluded* from the payload is the distance
function itself (it may close over sockets, native handles, or lambdas),
which the loader re-attaches to every structure that referenced it. Only
load checkpoints you wrote yourself — pickle executes code on load.
"""

from __future__ import annotations

import io
import json
import os
import pickle
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.core.features import SubCluster
from repro.exceptions import CheckpointError, ParameterError
from repro.metrics.base import DistanceFunction
from repro.observability import NULL_TRACER, NullTracer

__all__ = [
    "save_subclusters",
    "load_subclusters",
    "save_checkpoint",
    "load_checkpoint",
    "Checkpoint",
    "is_sharded_checkpoint",
    "load_shard_manifest",
    "save_shard_manifest",
    "shard_checkpoint_file",
]

_FORMAT_VERSION = 1


def _default_encode(obj):
    if isinstance(obj, str):
        return {"t": "str", "v": obj}
    arr = np.asarray(obj)
    if arr.ndim == 1 and arr.dtype.kind in "fiu":
        return {"t": "vec", "v": [float(x) for x in arr]}
    raise ParameterError(
        f"cannot serialize object of type {type(obj).__name__}; "
        "pass encode=/decode= callables for custom object types"
    )


def _default_decode(payload):
    if payload["t"] == "str":
        return payload["v"]
    if payload["t"] == "vec":
        return np.asarray(payload["v"], dtype=np.float64)
    raise ParameterError(f"unknown serialized object tag {payload['t']!r}")


def save_subclusters(
    path: str | os.PathLike,
    subclusters: list[SubCluster],
    encode: Callable | None = None,
    metadata: dict | None = None,
) -> None:
    """Write sub-clusters to a JSON file.

    Parameters
    ----------
    path:
        Output file.
    subclusters:
        The summaries to persist (e.g. ``model.subclusters_``).
    encode:
        Object serializer returning a JSON-compatible value; defaults handle
        numeric vectors and strings.
    metadata:
        Optional free-form dict stored alongside (e.g. the metric name and
        parameters used, so the load side can reconstruct context).
    """
    enc = encode if encode is not None else _default_encode
    doc = {
        "format_version": _FORMAT_VERSION,
        "metadata": metadata or {},
        "subclusters": [
            {
                "n": s.n,
                "radius": s.radius,
                "clustroid": enc(s.clustroid),
                "representatives": [enc(r) for r in s.representatives],
            }
            for s in subclusters
        ],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)


def load_subclusters(
    path: str | os.PathLike,
    decode: Callable | None = None,
) -> tuple[list[SubCluster], dict]:
    """Read sub-clusters written by :func:`save_subclusters`.

    Returns ``(subclusters, metadata)``.
    """
    dec = decode if decode is not None else _default_decode
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    version = doc.get("format_version")
    if version != _FORMAT_VERSION:
        raise ParameterError(
            f"unsupported subcluster file version {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    subclusters = [
        SubCluster(
            clustroid=dec(item["clustroid"]),
            n=int(item["n"]),
            radius=float(item["radius"]),
            representatives=[dec(r) for r in item["representatives"]],
        )
        for item in doc["subclusters"]
    ]
    return subclusters, doc.get("metadata", {})


# ----------------------------------------------------------------------
# Scan checkpoints
# ----------------------------------------------------------------------

_CHECKPOINT_VERSION = 1
_METRIC_PID = "repro.metric"
_TRACER_PID = "repro.tracer"


class _MetricStrippingPickler(pickle.Pickler):
    """Pickle everything except :class:`DistanceFunction` instances.

    Every reference to the (single) metric object becomes a persistent id;
    the loader substitutes a live metric, preserving the shared-identity
    invariant that ties the tree, its policy, features, and per-node
    mappers to one NCD counter.

    Tracers are stripped the same way: a live
    :class:`~repro.observability.Tracer` may hold open sink streams, so
    every tracer reference becomes a persistent id that the loader resolves
    to the no-op :data:`~repro.observability.NULL_TRACER` (re-attach a real
    tracer explicitly after resuming if the new scan should be traced).
    """

    def __init__(self, file):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._seen_metric_ids: set[int] = set()

    def persistent_id(self, obj):
        if isinstance(obj, DistanceFunction):
            self._seen_metric_ids.add(id(obj))
            if len(self._seen_metric_ids) > 1:
                raise CheckpointError(
                    "checkpointing supports exactly one DistanceFunction "
                    "instance shared across the tree; found more than one"
                )
            return _METRIC_PID
        if isinstance(obj, NullTracer):
            return _TRACER_PID
        return None


class _MetricRestoringUnpickler(pickle.Unpickler):
    def __init__(self, file, metric: DistanceFunction):
        super().__init__(file)
        self._metric = metric

    def persistent_load(self, pid):
        if pid == _METRIC_PID:
            return self._metric
        if pid == _TRACER_PID:
            return NULL_TRACER
        raise CheckpointError(f"unknown persistent id {pid!r} in checkpoint")


@dataclass
class Checkpoint:
    """One restored scan snapshot."""

    #: The CF*-tree exactly as it was, metric re-attached.
    tree: object
    #: Number of objects consumed from the input stream so far.
    cursor: int
    #: Caller-owned picklable state (quarantine buffer, report counters).
    state: dict = field(default_factory=dict)
    #: Free-form metadata stored at save time.
    metadata: dict = field(default_factory=dict)

    def index(self, metric: DistanceFunction | None = None, **kwargs):
        """A ready ``cftree`` :class:`~repro.index.MetricIndex` over the
        restored tree's clustroids.

        The leaf geometry caches travel inside the checkpoint pickle
        (``node.aux``), so serving queries from a restored checkpoint
        costs only the non-leaf anchor distances — no re-measurement of
        the leaf pairwise matrices. ``metric`` defaults to the one
        re-attached at load time.
        """
        from repro.index.cftree import CFTreeIndex

        return CFTreeIndex.from_tree(self.tree, metric=metric, **kwargs)


def save_checkpoint(
    path: str | os.PathLike,
    tree,
    *,
    cursor: int = 0,
    state: dict | None = None,
    metadata: dict | None = None,
) -> None:
    """Atomically snapshot a live CF*-tree and its scan position.

    The tree is pickled in full — node structure, leaf features, policy
    (including per-node sample caches and FastMap image spaces), and the
    shared RNG so a resumed scan draws the same random stream an
    uninterrupted one would. The distance function is *not* stored;
    :func:`load_checkpoint` re-attaches one.

    The write goes to a temp file in the same directory followed by
    ``os.replace``, so a crash mid-write never corrupts an existing
    checkpoint.
    """
    payload = {
        "format_version": _CHECKPOINT_VERSION,
        "cursor": int(cursor),
        "state": state or {},
        "metadata": metadata or {},
        "tree": tree,
    }
    buf = io.BytesIO()
    _MetricStrippingPickler(buf).dump(payload)
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as f:
            f.write(buf.getvalue())
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - crash-path cleanup
            os.unlink(tmp)


def load_checkpoint(path: str | os.PathLike, metric: DistanceFunction) -> Checkpoint:
    """Restore a snapshot written by :func:`save_checkpoint`.

    Parameters
    ----------
    path:
        The checkpoint file.
    metric:
        The live distance function to re-attach everywhere the saved tree
        referenced its metric. Must be behaviorally identical to the one
        used during the original scan for resume-equivalence to hold.

    Only load checkpoints from trusted sources: the payload is a pickle.
    """
    if not isinstance(metric, DistanceFunction):
        raise ParameterError("metric must be a DistanceFunction")
    if os.path.isdir(path):
        raise CheckpointError(
            f"{os.fspath(path)!r} is a sharded checkpoint directory, not a "
            "sequential checkpoint file; resume it with a sharded build "
            "(n_jobs/n_shards) using the same n_shards it was written with"
        )
    try:
        with open(path, "rb") as f:
            payload = _MetricRestoringUnpickler(f, metric).load()
    except (OSError, CheckpointError):
        # I/O failures and our own diagnostics carry their meaning already.
        raise
    except Exception as exc:
        # pickle surfaces corrupt streams through a zoo of exception types,
        # not just UnpicklingError: a stray GET opcode raises ValueError, a
        # flipped length byte can surface IndexError, MemoryError, even
        # SystemError from the C accelerator — so any non-I/O failure of
        # the load is diagnosed as a corrupt checkpoint.
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or "tree" not in payload:
        raise CheckpointError(f"checkpoint {path!r} has an unrecognized layout")
    version = payload.get("format_version")
    if version != _CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} "
            f"(this build reads version {_CHECKPOINT_VERSION})"
        )
    return Checkpoint(
        tree=payload["tree"],
        cursor=int(payload.get("cursor", 0)),
        state=payload.get("state", {}),
        metadata=payload.get("metadata", {}),
    )


# ----------------------------------------------------------------------
# Sharded checkpoints (parallel builds)
# ----------------------------------------------------------------------
#
# A sharded build checkpoints into a *directory*: one manifest describing
# the partition (so a resume can verify it reproduces the same shards) plus
# one ordinary checkpoint file per shard, each written atomically by its
# worker through save_checkpoint. Any shard file may be missing (that shard
# never reached its first checkpoint) — a resume simply rescans it.

_MANIFEST_VERSION = 1
_MANIFEST_NAME = "manifest.json"


def shard_checkpoint_file(directory: str | os.PathLike, shard_id: int) -> str:
    """Path of shard ``shard_id``'s checkpoint inside a sharded directory."""
    return os.path.join(os.fspath(directory), f"shard-{int(shard_id):04d}.ckpt")


def is_sharded_checkpoint(path: str | os.PathLike) -> bool:
    """True when ``path`` is a sharded checkpoint directory (has a manifest)."""
    return os.path.isdir(path) and os.path.exists(
        os.path.join(os.fspath(path), _MANIFEST_NAME)
    )


def save_shard_manifest(directory: str | os.PathLike, manifest: dict) -> None:
    """Atomically write a sharded build's manifest, creating the directory.

    The manifest pins everything that determines the partition — shard
    count, algorithm, seed — so :func:`load_shard_manifest` callers can
    refuse a resume that would silently redistribute objects.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    doc = dict(manifest)
    doc["format_version"] = _MANIFEST_VERSION
    path = os.path.join(directory, _MANIFEST_NAME)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(doc, f)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - crash-path cleanup
            os.unlink(tmp)


def load_shard_manifest(directory: str | os.PathLike) -> dict:
    """Read and validate the manifest of a sharded checkpoint directory."""
    directory = os.fspath(directory)
    if not os.path.isdir(directory):
        raise CheckpointError(
            f"{directory!r} is not a sharded checkpoint directory; a "
            "sequential checkpoint file cannot seed a sharded build (its "
            "single tree cannot be split back into shards)"
        )
    path = os.path.join(directory, _MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as exc:
        raise CheckpointError(
            f"sharded checkpoint {directory!r} has no readable manifest: {exc}"
        ) from exc
    except ValueError as exc:
        raise CheckpointError(
            f"sharded checkpoint manifest {path!r} is corrupt: {exc}"
        ) from exc
    if not isinstance(doc, dict) or doc.get("format_version") != _MANIFEST_VERSION:
        raise CheckpointError(
            f"unsupported shard manifest version in {path!r} "
            f"(this build reads version {_MANIFEST_VERSION})"
        )
    return doc
