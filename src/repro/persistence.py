"""Persisting pre-clustering results.

The point of pre-clustering (Section 2) is to hand a *condensed* dataset to
later, more expensive analysis — which often happens in another process or
on another day. This module serializes the sub-cluster summaries
(:class:`~repro.core.features.SubCluster`) to JSON and back.

Vectors and strings round-trip out of the box; arbitrary object types can
supply ``encode`` / ``decode`` callables.
"""

from __future__ import annotations

import json
import os
from collections.abc import Callable

import numpy as np

from repro.core.features import SubCluster
from repro.exceptions import ParameterError

__all__ = ["save_subclusters", "load_subclusters"]

_FORMAT_VERSION = 1


def _default_encode(obj):
    if isinstance(obj, str):
        return {"t": "str", "v": obj}
    arr = np.asarray(obj)
    if arr.ndim == 1 and arr.dtype.kind in "fiu":
        return {"t": "vec", "v": [float(x) for x in arr]}
    raise ParameterError(
        f"cannot serialize object of type {type(obj).__name__}; "
        "pass encode=/decode= callables for custom object types"
    )


def _default_decode(payload):
    if payload["t"] == "str":
        return payload["v"]
    if payload["t"] == "vec":
        return np.asarray(payload["v"], dtype=np.float64)
    raise ParameterError(f"unknown serialized object tag {payload['t']!r}")


def save_subclusters(
    path: str | os.PathLike,
    subclusters: list[SubCluster],
    encode: Callable | None = None,
    metadata: dict | None = None,
) -> None:
    """Write sub-clusters to a JSON file.

    Parameters
    ----------
    path:
        Output file.
    subclusters:
        The summaries to persist (e.g. ``model.subclusters_``).
    encode:
        Object serializer returning a JSON-compatible value; defaults handle
        numeric vectors and strings.
    metadata:
        Optional free-form dict stored alongside (e.g. the metric name and
        parameters used, so the load side can reconstruct context).
    """
    enc = encode if encode is not None else _default_encode
    doc = {
        "format_version": _FORMAT_VERSION,
        "metadata": metadata or {},
        "subclusters": [
            {
                "n": s.n,
                "radius": s.radius,
                "clustroid": enc(s.clustroid),
                "representatives": [enc(r) for r in s.representatives],
            }
            for s in subclusters
        ],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)


def load_subclusters(
    path: str | os.PathLike,
    decode: Callable | None = None,
) -> tuple[list[SubCluster], dict]:
    """Read sub-clusters written by :func:`save_subclusters`.

    Returns ``(subclusters, metadata)``.
    """
    dec = decode if decode is not None else _default_decode
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    version = doc.get("format_version")
    if version != _FORMAT_VERSION:
        raise ParameterError(
            f"unsupported subcluster file version {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    subclusters = [
        SubCluster(
            clustroid=dec(item["clustroid"]),
            n=int(item["n"]),
            radius=float(item["radius"]),
            representatives=[dec(r) for r in item["representatives"]],
        )
        for item in doc["subclusters"]
    ]
    return subclusters, doc.get("metadata", {})
