"""The shard worker: one fault-tolerant sequential scan per process.

A :class:`ShardTask` carries everything a worker needs to run the existing
``PreClusterer.fit`` path on its shard: the driver class, its constructor
parameters, a private metric copy, a shard-derived seed, and (optionally) a
slice of the NCD budget. :func:`run_shard` is a module-level function so the
``spawn`` start method can pickle it, and it works identically in-process —
the ``n_jobs=1`` backend calls it directly, which is what makes the merged
tree independent of the executor.

The trip home reuses the checkpoint machinery: leaf CF*s reference the
worker's metric copy, so they are serialized with the metric-stripping
pickler from :mod:`repro.persistence` and re-attached to the parent's
metric on arrival — exactly how checkpoint resume re-homes a tree.
"""

from __future__ import annotations

import io
import os
import time
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import CheckpointError, EmptyDatasetError
from repro.metrics.base import (
    CallLedger,
    DistanceFunction,
    activate_ledger,
    deactivate_ledger,
)
from repro.persistence import _MetricStrippingPickler
from repro.robustness.injection import ChaosPolicy
from repro.utils.proc import peak_rss_kb

__all__ = ["ShardTask", "ShardResult", "run_shard"]


@dataclass
class ShardTask:
    """Everything one worker needs to scan one shard."""

    #: Position of this shard in the round-robin partition.
    shard_id: int
    #: Total shard count (needed to restore global scan indices).
    n_shards: int
    #: The shard's objects, in scan order.
    objects: list[Any]
    #: Driver class (``BUBBLE``/``BUBBLEFM``/a ``PreClusterer`` subclass).
    driver: type
    #: Constructor kwargs from ``PreClusterer._shard_params()``.
    params: dict[str, Any]
    #: This worker's private metric copy (counter reset on arrival).
    metric: DistanceFunction
    #: Shard-derived seed for all of the worker's stochastic choices.
    seed: int | None
    #: ``fit(on_error=...)`` — per-shard quarantine works as usual.
    on_error: str = "raise"
    #: ``fit(max_quarantine=...)``, enforced per shard.
    max_quarantine: int | None = None
    #: This shard's slice of a guarded metric's NCD budget (``None`` when
    #: the parent metric is unbudgeted).
    max_calls: int | None = None
    #: Zero-based attempt number (the supervisor bumps this on retries).
    attempt: int = 0
    #: Where this shard writes its atomic checkpoints (``None`` disables).
    checkpoint_path: str | None = None
    #: Checkpoint cadence in objects, as in sequential ``fit``.
    checkpoint_every: int = 1000
    #: Shard checkpoint to resume from (``None`` for a fresh scan). A
    #: missing file is not an error — the shard simply rescans from zero.
    resume_from: str | None = None
    #: Seeded fault schedule for chaos drills (``None`` in production).
    chaos: ChaosPolicy | None = None


@dataclass
class ShardResult:
    """What one worker sends home. Plain data plus a metric-stripped pickle
    payload, so it crosses the process boundary with standard pickling."""

    shard_id: int
    #: ``{"features": [...], "threshold": T}`` via the stripping pickler.
    payload: bytes
    #: Objects absorbed into the shard tree.
    n_objects: int
    #: Leaf clusters the shard tree condensed its objects into.
    n_subclusters: int
    #: Distance calls spent by this worker (its metric copy's NCD).
    n_calls: int
    #: Per-site split of ``n_calls`` (sums exactly to it).
    by_site: dict[str, int] = field(default_factory=dict)
    #: ``IngestReport.to_dict()`` of the shard scan.
    report: dict[str, Any] = field(default_factory=dict)
    #: ``Quarantine.get_state()`` with shard-local indices.
    quarantine: dict[str, Any] = field(default_factory=dict)
    #: ``PruningStats.as_dict()`` of the shard's routing engine.
    pruning: dict[str, int] = field(default_factory=dict)
    #: Worker wall-clock seconds for the whole shard.
    elapsed_seconds: float = 0.0
    #: Worker peak RSS in KiB.
    peak_rss_kb: int = 0
    #: Scan cursor restored from the shard checkpoint (``None`` = fresh).
    resumed_at: int | None = None
    #: True when a resume checkpoint was unreadable and discarded.
    checkpoint_discarded: bool = False


def run_shard(task: ShardTask) -> ShardResult:
    """Scan one shard with the standard sequential ``fit`` and package the
    shard tree's leaf CF*s for the deterministic merge."""
    start = time.perf_counter()
    metric = task.metric
    if task.chaos is not None:
        # Chaos drills splice their flaky/slow wrappers *under* any guard
        # in the chain, so the injected faults hit the same machinery real
        # faults would.
        metric = task.chaos.wrap_metric(metric, task.shard_id, task.attempt)
    metric.reset_counter()
    if task.max_calls is not None:
        # A guarded metric: open a fresh budget window sized to this
        # shard's slice of the global budget.
        reset_budget = getattr(metric, "reset_budget", None)
        if reset_budget is not None:
            reset_budget()
            metric.max_calls = task.max_calls  # type: ignore[attr-defined]

    def stream() -> Any:
        if task.chaos is not None:
            return task.chaos.stream(task.objects, task.shard_id, task.attempt)
        return task.objects

    resume_from = task.resume_from
    if resume_from is not None and not os.path.exists(resume_from):
        # The shard died before its first checkpoint: nothing to resume.
        resume_from = None

    model = task.driver(metric, seed=task.seed, **task.params)
    checkpoint_discarded = False
    ledger = CallLedger()
    previous = activate_ledger(ledger)
    try:
        try:
            try:
                model.fit(
                    stream(),
                    on_error=task.on_error,
                    max_quarantine=task.max_quarantine,
                    checkpoint_path=task.checkpoint_path,
                    checkpoint_every=task.checkpoint_every,
                    resume_from=resume_from,
                )
            except CheckpointError:
                if resume_from is None:
                    raise
                # Corrupt or incompatible shard checkpoint: recovery is a
                # rescan from zero, not a build failure. The restore fails
                # before any object is consumed, so a fresh driver replays
                # the shard exactly.
                checkpoint_discarded = True
                model = task.driver(metric, seed=task.seed, **task.params)
                model.fit(
                    stream(),
                    on_error=task.on_error,
                    max_quarantine=task.max_quarantine,
                    checkpoint_path=task.checkpoint_path,
                    checkpoint_every=task.checkpoint_every,
                )
            tree = model.tree_
            features = tree.leaf_features()
            threshold = tree.threshold
        except EmptyDatasetError:
            # An empty shard, or one whose every object was quarantined:
            # contribute no clusters, but do report what happened.
            features = []
            threshold = model.initial_threshold
    finally:
        deactivate_ledger(previous)
    buf = io.BytesIO()
    _MetricStrippingPickler(buf).dump(
        {"features": features, "threshold": threshold}
    )
    pruning_stats = getattr(model.tree_.policy, "pruning_stats", None) if model.tree_ is not None else None
    return ShardResult(
        shard_id=task.shard_id,
        payload=buf.getvalue(),
        n_objects=sum(f.n for f in features),
        n_subclusters=len(features),
        n_calls=metric.n_calls,
        by_site=dict(ledger.by_site),
        report=model.ingest_report_.to_dict(),
        quarantine=model.quarantine_.get_state(),
        pruning=dict(pruning_stats.as_dict()) if pruning_stats is not None else {},
        elapsed_seconds=time.perf_counter() - start,
        peak_rss_kb=peak_rss_kb(),
        resumed_at=model.ingest_report_.resumed_at,
        checkpoint_discarded=checkpoint_discarded,
    )
