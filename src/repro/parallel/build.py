"""Parallel sharded build: fan out the scan, merge the shard trees.

The paper's single scan (Section 3) is embarrassingly partitionable
because the global phase (Section 3.2) never needed one tree — only one
set of leaf clusters. :func:`parallel_fit` splits the stream round-robin
into ``n_shards`` shards, runs the existing fault-tolerant ``fit`` path on
each shard (in ``n_jobs`` spawn-safe worker processes, or inline when
``n_jobs=1``), then performs a **deterministic merge**: every shard tree's
leaf CF*s are re-inserted — ordered by shard id, then leaf position — into
the parent model's final tree through the hinted Type II block path that
rebuilds already use.

Determinism: the partition depends only on ``n_shards``; each shard's seed
is derived from the model seed with ``SeedSequence.spawn``; the merge order
is fixed. The merged tree is therefore a pure function of
``(objects, seed, n_shards)`` — ``n_jobs`` only chooses how many processes
execute it. Merge quality can drift from the sequential build's (the
shards' thresholds grow on partial views of the data; see Section 4.2.2 and
``docs/performance.md``), but the result is reproducible run-to-run and
audit-clean.

Accounting: each worker counts NCD on its own metric copy under its own
:class:`~repro.metrics.base.CallLedger`; the parent re-books every
worker-side call on its metric via
:meth:`~repro.metrics.base.DistanceFunction.count_external`, per original
site label, under a ``shard-ingest`` span — so one metric still carries
the authoritative total and the per-site ledger still partitions
``n_calls`` exactly. A guarded metric's call budget is split evenly across
the shards with one share held back for the merge and later phases, and
absorption re-checks the global budget.
"""

from __future__ import annotations

import io
import pickle
import time
from collections.abc import Iterable
from typing import Any

import numpy as np

from repro.core.cftree import CFTree
from repro.exceptions import (
    EmptyDatasetError,
    MetricBudgetExceededError,
    ParameterError,
)
from repro.parallel.shard import global_index, shard_objects
from repro.parallel.worker import ShardResult, ShardTask, run_shard
from repro.persistence import _MetricRestoringUnpickler
from repro.robustness.quarantine import Quarantine
from repro.robustness.report import IngestReport

__all__ = ["parallel_fit", "resolve_n_shards"]


def resolve_n_shards(model: Any) -> int:
    """The logical shard count of a model's parallel build (defaults to
    ``n_jobs`` when ``n_shards`` was not pinned explicitly)."""
    return int(model.n_shards if model.n_shards is not None else model.n_jobs)


def _shard_seeds(seed: Any, n_shards: int) -> list[int | None]:
    """Independent, reproducible per-shard seeds derived from the model seed."""
    if isinstance(seed, np.random.Generator):
        raise ParameterError(
            "a sharded build derives per-shard seeds from the model seed, "
            "so seed must be an int or None, not a Generator"
        )
    if seed is None:
        # Nondeterministic run: let each worker draw fresh entropy.
        return [None] * n_shards
    children = np.random.SeedSequence(int(seed)).spawn(n_shards)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


def _metric_copies(metric: Any, n: int) -> list[Any]:
    """``n`` private metric copies via a pickle round-trip (the same trip
    the process pool would make), with a pre-flight error that names the
    actual requirement."""
    try:
        blob = pickle.dumps(metric, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ParameterError(
            "a sharded build ships a copy of the metric to every worker, "
            f"but this metric does not pickle: {exc!r}"
        ) from exc
    return [pickle.loads(blob) for _ in range(n)]


def _shard_budgets(metric: Any, n_shards: int) -> int | None:
    """Each shard's slice of a guarded metric's NCD budget.

    The remaining budget is split into ``n_shards + 1`` equal shares — one
    per shard plus one held back for the parent's merge and any later
    phases. Workers enforce their share locally; the parent re-checks the
    global budget when it absorbs the worker counts, so the cap stays
    authoritative end to end.
    """
    if getattr(metric, "max_calls", None) is None:
        return None
    remaining = metric.remaining_calls
    share = int(remaining) // (n_shards + 1)
    if share < 1:
        raise MetricBudgetExceededError(
            f"distance-call budget too small to shard: {remaining} calls "
            f"remain, which cannot cover {n_shards} shards plus a merge"
        )
    return share


def _run_tasks(tasks: list[ShardTask], n_jobs: int) -> list[ShardResult]:
    """Execute shard tasks inline (``n_jobs=1``) or on a spawn pool."""
    if n_jobs <= 1 or len(tasks) <= 1:
        return [run_shard(task) for task in tasks]
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=min(n_jobs, len(tasks)), mp_context=context
    ) as pool:
        return list(pool.map(run_shard, tasks))


def parallel_fit(
    model: Any,
    objects: Iterable[Any],
    *,
    on_error: str = "raise",
    max_quarantine: int | None = None,
) -> Any:
    """Shard, scan, and deterministically merge; leaves ``model`` fitted.

    Called by ``PreClusterer.fit`` whenever ``n_jobs > 1`` or ``n_shards``
    is set; not meant to be invoked directly (the driver's ``fit`` is the
    public API). Returns ``model``.
    """
    if on_error not in ("raise", "quarantine"):
        raise ParameterError(
            f'on_error must be "raise" or "quarantine", got {on_error!r}'
        )
    start = time.perf_counter()
    items = list(objects)
    if not items:
        raise EmptyDatasetError("fit requires at least one object")
    n_shards = resolve_n_shards(model)
    shards = shard_objects(items, n_shards)
    seeds = _shard_seeds(model._seed, n_shards)
    metrics = _metric_copies(model.metric, n_shards)
    shard_budget = _shard_budgets(model.metric, n_shards)
    params = model._shard_params()
    tasks = [
        ShardTask(
            shard_id=shard_id,
            n_shards=n_shards,
            objects=shard,
            driver=type(model),
            params=params,
            metric=metrics[shard_id],
            seed=seeds[shard_id],
            on_error=on_error,
            max_quarantine=max_quarantine,
            max_calls=shard_budget,
        )
        for shard_id, shard in enumerate(shards)
    ]

    results = _run_tasks(tasks, model.n_jobs)
    model.shard_summaries_ = [
        {
            "shard_id": result.shard_id,
            "n_objects": result.n_objects,
            "n_subclusters": result.n_subclusters,
            "n_calls": result.n_calls,
            "elapsed_seconds": result.elapsed_seconds,
            "peak_rss_kb": result.peak_rss_kb,
        }
        for result in results
    ]

    tracer = model.tracer
    metric = model.metric
    with tracer.activation():
        # Re-book every worker-side call on the parent metric, preserving
        # the workers' site labels so the ledger's per-site totals keep
        # partitioning n_calls exactly.
        with tracer.span("shard-ingest"):
            for result in results:
                attributed = 0
                for site in sorted(result.by_site):
                    n = int(result.by_site[site])
                    metric.count_external(n, site=site)
                    attributed += n
                if result.n_calls > attributed:
                    metric.count_external(result.n_calls - attributed)

        # Deterministic merge: shard order, then leaf order, fixed seed.
        features: list[Any] = []
        start_threshold = float(model.initial_threshold)
        for result in results:
            payload = _MetricRestoringUnpickler(
                io.BytesIO(result.payload), metric
            ).load()
            features.extend(payload["features"])
            start_threshold = max(start_threshold, float(payload["threshold"]))

        model.quarantine_ = _merge_quarantines(results, n_shards, max_quarantine)
        model._cursor = len(items)
        if not features:
            model.tree_ = None
            model.ingest_report_ = _merge_reports(model, results, start)
            n_parked = len(model.quarantine_)
            if n_parked:
                raise EmptyDatasetError(
                    f"every one of the {n_parked} scanned objects was "
                    "quarantined; nothing to cluster"
                )
            raise EmptyDatasetError("fit requires at least one object")

        policy = model._make_policy()
        policy.tracer = tracer
        tree = CFTree(
            policy,
            branching_factor=model.branching_factor,
            max_nodes=model.max_nodes,
            threshold=model.initial_threshold,
            outlier_fraction=model.outlier_fraction,
            seed=model._rng,
            tracer=tracer,
            validate=model.validate,
            hint_chunk=model.hint_chunk,
        )
        # Start the merge at the most mature shard threshold: every shard
        # cluster already satisfies its own shard's T, so a tighter start
        # would only shatter them and rebuild straight back here.
        tree.threshold = max(start_threshold, tree.threshold)
        model.tree_ = tree
        with tracer.span("merge"):
            tree.insert_feature_batch(features)
            if model.outlier_fraction is not None:
                tree.reabsorb_outliers()

        stats = getattr(policy, "pruning_stats", None)
        if stats is not None:
            for result in results:
                stats.absorb(result.pruning)

    model.ingest_report_ = _merge_reports(model, results, start)
    return model


def _merge_quarantines(
    results: list[ShardResult], n_shards: int, max_quarantine: int | None
) -> Quarantine:
    """One quarantine buffer with *global* scan indices, in scan order.

    Capacity was enforced per shard during the scans, so the merged buffer
    may legitimately hold up to ``n_shards * max_quarantine`` records; the
    merged buffer keeps the caller's limit only as metadata.
    """
    records = []
    for result in results:
        for local, obj, error_type, error in result.quarantine.get("records", []):
            records.append(
                (global_index(result.shard_id, int(local), n_shards), obj, error_type, error)
            )
    records.sort(key=lambda record: record[0])
    merged = Quarantine.from_state({"max_size": None, "records": records})
    merged.max_size = max_quarantine
    return merged


def _merge_reports(
    model: Any, results: list[ShardResult], start: float
) -> IngestReport:
    """Fold shard reports into the model's build-wide report."""
    report = IngestReport.merged(
        [IngestReport.from_dict(result.report) for result in results]
    )
    report.elapsed_seconds = time.perf_counter() - start
    report.n_distance_calls = model.metric.n_calls
    if model.tree_ is not None:
        report.n_rebuilds += model.tree_.n_rebuilds
    # Shard-side guarded-metric counters are already in the merged sums;
    # the parent metric only saw the merge phase, so its counters add on.
    metric = model.metric
    report.n_retries += getattr(metric, "n_retries", 0)
    report.n_substitutions += getattr(metric, "n_substitutions", 0)
    report.n_metric_faults += getattr(metric, "n_faults", 0)
    return report
