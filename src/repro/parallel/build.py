"""Parallel sharded build: fan out the scan, merge the shard trees.

The paper's single scan (Section 3) is embarrassingly partitionable
because the global phase (Section 3.2) never needed one tree — only one
set of leaf clusters. :func:`parallel_fit` splits the stream round-robin
into ``n_shards`` shards, runs the existing fault-tolerant ``fit`` path on
each shard (supervised worker processes, or inline when ``n_jobs=1``),
then performs a **deterministic merge**: every shard tree's leaf CF*s are
re-inserted — ordered by shard id, then leaf position — into the parent
model's final tree through the hinted Type II block path that rebuilds
already use.

Determinism: the partition depends only on ``n_shards``; each shard's seed
is derived from the model seed with ``SeedSequence.spawn``; the merge order
is fixed. The merged tree is therefore a pure function of
``(objects, seed, n_shards)`` — ``n_jobs`` only chooses how many processes
execute it. Merge quality can drift from the sequential build's (the
shards' thresholds grow on partial views of the data; see Section 4.2.2 and
``docs/performance.md``), but the result is reproducible run-to-run and
audit-clean.

Fault tolerance (see ``docs/robustness.md``): shards execute under the
:class:`~repro.parallel.pool.ShardSupervisor`, which detects worker death,
kills stragglers, retries failed shards with exponential backoff (each
retry gets a *fresh* metric copy, so a rescan replays the original shard
exactly), and enforces a pool-wide wall-clock deadline. With
``checkpoint_path`` set, every worker checkpoints its shard atomically
into a shared directory next to a manifest pinning the partition; a
killed build resumes from ``resume_from`` to the same merged tree an
uninterrupted run produces. A corrupt shard checkpoint is discarded and
that shard rescanned. A seeded
:class:`~repro.robustness.injection.ChaosPolicy` can inject all of these
failures on purpose.

Accounting: each worker counts NCD on its own metric copy under its own
:class:`~repro.metrics.base.CallLedger`; the parent re-books every
*successful* attempt's calls on its metric via
:meth:`~repro.metrics.base.DistanceFunction.count_external`, per original
site label, under a ``shard-ingest`` span (``shard-resume`` for shards
restored from a checkpoint) — so one metric still carries the
authoritative total and the per-site ledger still partitions ``n_calls``
exactly. Calls spent by crashed or failed attempts die with the attempt
and are never booked, keeping the conservation law
``sum(by_site) == n_calls`` intact by construction. A guarded metric's
call budget is split evenly across the shards with one share held back
for the merge and later phases, and absorption re-checks the global
budget — a breach mid-build cancels the remaining workers.
"""

from __future__ import annotations

import io
import os
import pickle
import time
from collections import Counter
from collections.abc import Iterable
from typing import Any

import numpy as np

from repro.core.cftree import CFTree
from repro.exceptions import (
    CheckpointError,
    EmptyDatasetError,
    MetricBudgetExceededError,
    ParameterError,
    QuarantineOverflowError,
)
from repro.parallel.pool import ShardFailure, ShardSupervisor
from repro.parallel.shard import global_index, shard_objects
from repro.parallel.worker import ShardResult, ShardTask
from repro.persistence import (
    _MetricRestoringUnpickler,
    load_shard_manifest,
    save_shard_manifest,
    shard_checkpoint_file,
)
from repro.robustness.injection import ChaosPolicy
from repro.robustness.quarantine import Quarantine
from repro.robustness.report import IngestReport

__all__ = ["parallel_fit", "rebook_worker_calls", "resolve_n_shards"]


def rebook_worker_calls(metric: Any, by_site: dict[str, int], n_calls: int) -> None:
    """Re-book one worker attempt's distance calls on the parent metric.

    The worker counted ``n_calls`` on its own metric copy under its own
    :class:`~repro.metrics.base.CallLedger`; booking them here, per
    original site label, keeps the parent's per-site ledger partitioning
    its ``n_calls`` exactly. The unconditional residual booking at the end
    charges any calls the worker ledger did not attribute to the caller's
    innermost open span — ``count_external(0)`` is a no-op, and an
    over-attributed worker (negative residual) raises rather than silently
    skewing ``sum(by_site)`` vs ``n_calls``. This is the one sanctioned
    absorb path for every parallel phase (sharded build, sampled global
    phase); call it inside the span the calls belong to.
    """
    attributed = 0
    for site in sorted(by_site):
        n = int(by_site[site])
        metric.count_external(n, site=site)
        attributed += n
    metric.count_external(n_calls - attributed)


def resolve_n_shards(model: Any) -> int:
    """The logical shard count of a model's parallel build (defaults to
    ``n_jobs`` when ``n_shards`` was not pinned explicitly)."""
    return int(model.n_shards if model.n_shards is not None else model.n_jobs)


def _shard_seeds(seed: Any, n_shards: int) -> list[int | None]:
    """Independent, reproducible per-shard seeds derived from the model seed."""
    if isinstance(seed, np.random.Generator):
        raise ParameterError(
            "a sharded build derives per-shard seeds from the model seed, "
            "so seed must be an int or None, not a Generator"
        )
    if seed is None:
        # Nondeterministic run: let each worker draw fresh entropy.
        return [None] * n_shards
    children = np.random.SeedSequence(int(seed)).spawn(n_shards)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


def _metric_blob(metric: Any) -> bytes:
    """The metric as a pickle blob — the worker-shipping round trip, with a
    pre-flight error that names the actual requirement. Every shard attempt
    is seeded from this one blob, so retries start from the identical
    metric state the first attempt had."""
    try:
        return pickle.dumps(metric, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ParameterError(
            "a sharded build ships a copy of the metric to every worker, "
            f"but this metric does not pickle: {exc!r}"
        ) from exc


def _metric_copies(metric: Any, n: int) -> list[Any]:
    """``n`` private metric copies via the pickle round trip."""
    blob = _metric_blob(metric)
    return [pickle.loads(blob) for _ in range(n)]


def _shard_budgets(metric: Any, n_shards: int) -> int | None:
    """Each shard's slice of a guarded metric's NCD budget.

    The remaining budget is split into ``n_shards + 1`` equal shares — one
    per shard plus one held back for the parent's merge and any later
    phases. Workers enforce their share locally; the parent re-checks the
    global budget when it absorbs the worker counts, so the cap stays
    authoritative end to end.
    """
    if getattr(metric, "max_calls", None) is None:
        return None
    remaining = metric.remaining_calls
    share = int(remaining) // (n_shards + 1)
    if share < 1:
        raise MetricBudgetExceededError(
            f"distance-call budget too small to shard: {remaining} calls "
            f"remain, which cannot cover {n_shards} shards plus a merge"
        )
    return share


def _prepare_checkpoint_dir(
    model: Any, checkpoint_path: Any, n_shards: int, checkpoint_every: int
) -> str | None:
    """Create the sharded checkpoint directory and write its manifest."""
    if checkpoint_path is None:
        return None
    directory = os.fspath(checkpoint_path)
    if os.path.exists(directory) and not os.path.isdir(directory):
        raise ParameterError(
            f"a sharded build checkpoints into a directory, but "
            f"{directory!r} is an existing file; pass a directory path"
        )
    save_shard_manifest(
        directory,
        {
            "n_shards": n_shards,
            "algorithm": type(model).__name__,
            "seed": None if model._seed is None else int(model._seed),
            "checkpoint_every": int(checkpoint_every),
        },
    )
    return directory


def _validate_resume_dir(model: Any, resume_from: Any, n_shards: int) -> str | None:
    """Check a sharded resume directory matches this build's partition."""
    if resume_from is None:
        return None
    directory = os.fspath(resume_from)
    manifest = load_shard_manifest(directory)
    saved_shards = int(manifest.get("n_shards", -1))
    if saved_shards != n_shards:
        raise CheckpointError(
            f"sharded checkpoint {directory!r} was written with "
            f"n_shards={saved_shards}, cannot resume with n_shards={n_shards} "
            "(the round-robin partition would redistribute every object)"
        )
    algorithm = manifest.get("algorithm")
    if algorithm is not None and algorithm != type(model).__name__:
        raise CheckpointError(
            f"sharded checkpoint was written by {algorithm}, "
            f"cannot resume with {type(model).__name__}"
        )
    saved_seed = manifest.get("seed")
    current_seed = None if model._seed is None else int(model._seed)
    if saved_seed != current_seed:
        raise CheckpointError(
            f"sharded checkpoint was written with seed={saved_seed!r}, "
            f"cannot resume with seed={current_seed!r} (per-shard seeds "
            "would diverge and break resume equivalence)"
        )
    return directory


def parallel_fit(
    model: Any,
    objects: Iterable[Any],
    *,
    on_error: str = "raise",
    max_quarantine: int | None = None,
    checkpoint_path: Any = None,
    checkpoint_every: int = 1000,
    resume_from: Any = None,
    chaos: ChaosPolicy | None = None,
) -> Any:
    """Shard, scan (crash-safely), and deterministically merge.

    Called by ``PreClusterer.fit`` whenever ``n_jobs > 1`` or ``n_shards``
    is set; not meant to be invoked directly (the driver's ``fit`` is the
    public API). ``chaos`` injects a seeded fault schedule for drills and
    tests. Returns ``model``.
    """
    if on_error not in ("raise", "quarantine"):
        raise ParameterError(
            f'on_error must be "raise" or "quarantine", got {on_error!r}'
        )
    start = time.perf_counter()
    items = list(objects)
    if not items:
        raise EmptyDatasetError("fit requires at least one object")
    n_shards = resolve_n_shards(model)
    shards = shard_objects(items, n_shards)
    seeds = _shard_seeds(model._seed, n_shards)
    blob = _metric_blob(model.metric)
    shard_budget = _shard_budgets(model.metric, n_shards)
    params = model._shard_params()

    checkpoint_dir = _prepare_checkpoint_dir(
        model, checkpoint_path, n_shards, checkpoint_every
    )
    resume_dir = _validate_resume_dir(model, resume_from, n_shards)
    if chaos is not None:
        # Arm the kill schedule with this (parent) PID so a scheduled kill
        # can only ever take down a worker, never the supervisor itself.
        chaos.arm(os.getpid())

    tasks = [
        ShardTask(
            shard_id=shard_id,
            n_shards=n_shards,
            objects=shard,
            driver=type(model),
            params=params,
            metric=pickle.loads(blob),
            seed=seeds[shard_id],
            on_error=on_error,
            max_quarantine=max_quarantine,
            max_calls=shard_budget,
            checkpoint_path=(
                shard_checkpoint_file(checkpoint_dir, shard_id)
                if checkpoint_dir is not None
                else None
            ),
            checkpoint_every=checkpoint_every,
            resume_from=(
                shard_checkpoint_file(resume_dir, shard_id)
                if resume_dir is not None
                else None
            ),
            chaos=chaos,
        )
        for shard_id, shard in enumerate(shards)
    ]

    tracer = model.tracer
    metric = model.metric

    def prepare_attempt(task: ShardTask, attempt: int) -> ShardTask:
        if attempt > 0:
            # Fresh metric copy per attempt: a retry must replay the shard
            # from the exact starting state, not from whatever the failed
            # attempt left behind (determinism + budget-window reset).
            task.metric = pickle.loads(blob)
            if task.checkpoint_path is not None:
                # Resume from the shard's own latest checkpoint; run_shard
                # treats a missing file as "rescan from zero".
                task.resume_from = task.checkpoint_path
        return task

    def absorb(result: ShardResult) -> None:
        # Re-book the successful attempt's calls on the parent metric,
        # preserving the workers' site labels so the ledger's per-site
        # totals keep partitioning n_calls exactly. Booking re-checks the
        # global budget: a breach aborts the pool mid-build.
        span = "shard-resume" if result.resumed_at is not None else "shard-ingest"
        with tracer.span(span):
            rebook_worker_calls(metric, result.by_site, result.n_calls)

    def on_retry(task: ShardTask, failure: ShardFailure, delay: float) -> None:
        with tracer.span("shard-retry"):
            if chaos is not None:
                chaos.before_retry(
                    task.shard_id, failure.attempt + 1, task.checkpoint_path
                )

    supervisor = ShardSupervisor(
        tasks,
        n_jobs=model.n_jobs,
        max_retries=model.max_shard_retries,
        backoff=model.shard_retry_backoff,
        shard_timeout=model.shard_timeout_seconds,
        deadline_seconds=getattr(metric, "remaining_seconds", None),
        prepare_attempt=prepare_attempt,
        on_result=absorb,
        on_retry=on_retry,
    )

    with tracer.activation():
        results = supervisor.run()

        failures_by_shard = Counter(f.shard_id for f in supervisor.stats.failures)
        model.shard_summaries_ = [
            {
                "shard_id": result.shard_id,
                "n_objects": result.n_objects,
                "n_subclusters": result.n_subclusters,
                "n_calls": result.n_calls,
                "elapsed_seconds": result.elapsed_seconds,
                "peak_rss_kb": result.peak_rss_kb,
                "n_attempts": failures_by_shard.get(result.shard_id, 0) + 1,
                "resumed_at": result.resumed_at,
                "checkpoint_discarded": result.checkpoint_discarded,
            }
            for result in results
        ]

        model.quarantine_ = _merge_quarantines(results, n_shards, max_quarantine)
        model._cursor = len(items)
        if max_quarantine is not None and len(model.quarantine_) > max_quarantine:
            # Each shard stayed under the cap on its own, but the build as
            # a whole crossed the circuit-breaker threshold: abort, exactly
            # as a sequential scan would have at the same global count.
            model.tree_ = None
            model.ingest_report_ = _merge_reports(
                model, results, start, supervisor.stats
            )
            raise QuarantineOverflowError(
                f"merged quarantine holds {len(model.quarantine_)} objects, "
                f"over the global cap of {max_quarantine}; the metric or the "
                "data feed looks systematically broken"
            )

        # Deterministic merge: shard order, then leaf order, fixed seed.
        features: list[Any] = []
        start_threshold = float(model.initial_threshold)
        for result in results:
            payload = _MetricRestoringUnpickler(
                io.BytesIO(result.payload), metric
            ).load()
            features.extend(payload["features"])
            start_threshold = max(start_threshold, float(payload["threshold"]))

        if not features:
            model.tree_ = None
            model.ingest_report_ = _merge_reports(
                model, results, start, supervisor.stats
            )
            n_parked = len(model.quarantine_)
            if n_parked:
                raise EmptyDatasetError(
                    f"every one of the {n_parked} scanned objects was "
                    "quarantined; nothing to cluster"
                )
            raise EmptyDatasetError("fit requires at least one object")

        policy = model._make_policy()
        policy.tracer = tracer
        tree = CFTree(
            policy,
            branching_factor=model.branching_factor,
            max_nodes=model.max_nodes,
            threshold=model.initial_threshold,
            outlier_fraction=model.outlier_fraction,
            seed=model._rng,
            tracer=tracer,
            validate=model.validate,
            hint_chunk=model.hint_chunk,
        )
        # Start the merge at the most mature shard threshold: every shard
        # cluster already satisfies its own shard's T, so a tighter start
        # would only shatter them and rebuild straight back here.
        tree.threshold = max(start_threshold, tree.threshold)
        model.tree_ = tree
        with tracer.span("merge"):
            tree.insert_feature_batch(features)
            if model.outlier_fraction is not None:
                tree.reabsorb_outliers()

        stats = getattr(policy, "pruning_stats", None)
        if stats is not None:
            for result in results:
                stats.absorb(result.pruning)

    model.ingest_report_ = _merge_reports(model, results, start, supervisor.stats)
    return model


def _merge_quarantines(
    results: list[ShardResult], n_shards: int, max_quarantine: int | None
) -> Quarantine:
    """One quarantine buffer with *global* scan indices, in scan order.

    Capacity was enforced per shard during the scans, so the merged buffer
    may hold more records than ``max_quarantine``; :func:`parallel_fit`
    enforces the cap globally right after this merge (the buffer itself
    keeps the limit as metadata so later ``partial_fit`` calls respect it).
    """
    records = []
    for result in results:
        for local, obj, error_type, error in result.quarantine.get("records", []):
            records.append(
                (global_index(result.shard_id, int(local), n_shards), obj, error_type, error)
            )
    records.sort(key=lambda record: record[0])
    merged = Quarantine.from_state({"max_size": None, "records": records})
    merged.max_size = max_quarantine
    return merged


def _merge_reports(
    model: Any,
    results: list[ShardResult],
    start: float,
    stats: Any = None,
) -> IngestReport:
    """Fold shard reports into the model's build-wide report."""
    report = IngestReport.merged(
        [IngestReport.from_dict(result.report) for result in results]
    )
    report.elapsed_seconds = time.perf_counter() - start
    report.n_distance_calls = model.metric.n_calls
    if model.tree_ is not None:
        report.n_rebuilds += model.tree_.n_rebuilds
    # Shard-side guarded-metric counters are already in the merged sums;
    # the parent metric only saw the merge phase, so its counters add on.
    metric = model.metric
    report.n_retries += getattr(metric, "n_retries", 0)
    report.n_substitutions += getattr(metric, "n_substitutions", 0)
    report.n_metric_faults += getattr(metric, "n_faults", 0)
    if stats is not None:
        report.shards_retried = stats.shards_retried
        report.workers_crashed = stats.workers_crashed
        report.shards_resumed = stats.shards_resumed
        report.backoff_seconds_total = stats.backoff_seconds_total
    return report
