"""Parallel sharded BIRCH* build and parallel global phase.

Sharding multiplies scan throughput on the same NCD budget: the input
stream is split round-robin across worker processes, each runs the
existing fault-tolerant ``fit`` path on its shard with its own CF*-tree,
tracer, and pruning geometry, and the shard trees' leaf CF*s are merged
deterministically into one final tree (summaries compose — the global
phase only ever needed one set of leaf clusters, not one tree). The
clustroid distance matrix of the global phase is likewise gathered with
chunked ``cross()`` blocks across the pool.

Entry points: ``BUBBLE``/``BUBBLEFM``/``PreClusterer`` accept ``n_jobs=``
and ``n_shards=`` and route their ``fit`` through :func:`parallel_fit`;
``cluster_dataset`` and the CLI's ``--jobs`` thread the same knob through
the whole pipeline. See ``docs/performance.md`` ("Parallel build") for
shard/merge semantics, determinism guarantees, and quality caveats.

Shards execute under the :class:`~repro.parallel.pool.ShardSupervisor`,
which survives worker crashes, hangs, and per-shard budget aborts via
retry-with-backoff, inline fallback, per-shard checkpoints, and pool-wide
deadline supervision — see ``docs/robustness.md`` ("Fault-tolerant
parallel builds").
"""

from __future__ import annotations

from repro.parallel.build import parallel_fit, resolve_n_shards
from repro.parallel.matrix import pairwise_matrix
from repro.parallel.pool import ShardFailure, ShardSupervisor, SupervisorStats
from repro.parallel.shard import global_index, shard_objects
from repro.parallel.worker import ShardResult, ShardTask, run_shard

__all__ = [
    "parallel_fit",
    "resolve_n_shards",
    "pairwise_matrix",
    "shard_objects",
    "global_index",
    "ShardTask",
    "ShardResult",
    "ShardFailure",
    "ShardSupervisor",
    "SupervisorStats",
    "run_shard",
]
