"""Deterministic round-robin sharding of the input stream.

Object ``i`` of the scan order goes to shard ``i % n_shards``. Round-robin
(rather than contiguous blocks) keeps shard sizes balanced without knowing
the stream length up front, and — because it depends only on position and
``n_shards`` — the partition, hence every shard tree, hence the merged
tree, is a pure function of ``(objects, seed, n_shards)``: how many worker
processes execute the shards never changes the result.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

__all__ = ["shard_objects", "global_index"]


def shard_objects(objects: Iterable[Any], n_shards: int) -> list[list[Any]]:
    """Split ``objects`` into ``n_shards`` round-robin shards (scan order
    preserved within each shard)."""
    shards: list[list[Any]] = [[] for _ in range(n_shards)]
    for i, obj in enumerate(objects):
        shards[i % n_shards].append(obj)
    return shards


def global_index(shard_id: int, local_index: int, n_shards: int) -> int:
    """Map a shard-local scan position back to the global scan position.

    Inverse of the round-robin split: shard ``s`` received global objects
    ``s, s + n_shards, s + 2 * n_shards, ...``, so its ``j``-th object was
    global object ``j * n_shards + s``. Used to restore global indices on
    merged quarantine records.
    """
    return local_index * n_shards + shard_id
