"""Crash-safe shard execution: the parent-side worker supervisor.

``ProcessPoolExecutor`` treats one dead worker as a broken pool — every
in-flight shard is lost and the caller gets ``BrokenProcessPool``. For the
paper's setting (hours-long scans over expensive metrics) that turns a
single OOM kill into a full restart. This module replaces the executor
with an explicit supervisor over ``multiprocessing`` *spawn* processes,
one per in-flight shard, each reporting home over its own pipe. That
structure is what makes recovery possible:

* **crash detection** — a worker that dies without delivering its result
  (SIGKILL, OOM, native crash) closes its pipe; the supervisor sees EOF
  and knows exactly which shard was lost;
* **timeouts** — a worker overrunning ``shard_timeout`` is killed
  individually, not the whole pool;
* **retry with backoff** — a recoverably-failed shard is re-queued after
  an exponential delay, up to ``max_retries`` attempts, with a fresh
  metric copy each time so the rescan is deterministic;
* **graceful degradation** — when retries are exhausted the shard runs
  inline in the parent (no process boundary left to crash);
* **pool-wide deadline** — a global wall-clock limit kills the remaining
  workers cleanly instead of orphaning them.

Failures that retrying cannot fix — invalid parameters, the quarantine
circuit breaker, tree-invariant violations, a global deadline — propagate
immediately. The supervisor is policy-free about *what* a shard does: it
runs the ``runner`` callable (default
:func:`repro.parallel.worker.run_shard`; the sampled global phase passes
:func:`repro.clarans.clara.run_sample`) over each task and reports
:class:`SupervisorStats` that the caller folds into its report. A task
only needs ``shard_id`` and ``attempt`` attributes; the runner must be a
module-level function so the spawn start method can pickle it.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_connections
from typing import Any

from repro.exceptions import (
    CheckpointError,
    DeadlineExceededError,
    EmptyDatasetError,
    ParameterError,
    QuarantineOverflowError,
    TreeInvariantError,
    WorkerCrashError,
)
from repro.parallel.worker import run_shard

__all__ = ["ShardFailure", "ShardSupervisor", "SupervisorStats"]

#: Failures no retry can fix: bad configuration, circuit breakers, and the
#: global wall-clock deadline (a rescan cannot run the clock backwards; the
#: NCD budget, by contrast, *is* retryable because checkpoint resume turns
#: each retry's fresh budget window into forward progress).
_NON_RETRYABLE = (
    ParameterError,
    QuarantineOverflowError,
    TreeInvariantError,
    EmptyDatasetError,
    CheckpointError,
    DeadlineExceededError,
)

#: Seconds between supervisor bookkeeping passes (timeout/deadline checks).
_TICK_SECONDS = 0.05

#: Grace period for joining a process that already reported (or was killed).
_JOIN_SECONDS = 5.0


@dataclass
class ShardFailure:
    """One failed shard attempt, as observed by the supervisor."""

    shard_id: int
    #: Zero-based attempt that failed.
    attempt: int
    #: ``"crash"`` (process death), ``"timeout"``, or ``"error"``.
    kind: str
    #: Exception repr or exit-code description.
    detail: str


@dataclass
class SupervisorStats:
    """Aggregate fault-tolerance counters of one supervised build."""

    #: Shard attempts re-queued after a recoverable failure.
    shards_retried: int = 0
    #: Worker processes that died or were killed for overrunning a timeout.
    workers_crashed: int = 0
    #: Shards whose (final) result restored state from a checkpoint.
    shards_resumed: int = 0
    #: Shards that fell back to in-parent execution after retries ran out.
    inline_fallbacks: int = 0
    #: Total backoff delay scheduled between retries.
    backoff_seconds_total: float = 0.0
    #: Every failed attempt, in observation order.
    failures: list[ShardFailure] = field(default_factory=list)


@dataclass
class _ShardState:
    """Mutable per-shard progress (attempt counter, backoff release time)."""

    task: Any
    attempt: int = 0
    not_before: float = 0.0


@dataclass
class _LiveWorker:
    """One running worker process and the shard it carries."""

    state: _ShardState
    process: Any
    started: float


def _worker_entry(conn: Any, runner: Callable[[Any], Any], task: Any) -> None:
    """Spawn target: run the task, send ``("result"|"error", payload)``.

    Module-level so the spawn start method can pickle it. A worker that
    dies before (or while) sending leaves the parent an EOF on ``conn`` —
    that silence *is* the crash signal.
    """
    try:
        message: tuple[str, Any] = ("result", runner(task))
    except BaseException as exc:  # delivered to the parent, not lost
        message = ("error", exc)
    try:
        conn.send(message)
    except Exception:
        if message[0] == "error":
            raise
        # The result itself would not pickle; report that instead of dying
        # silently (which would read as a crash and trigger a futile retry).
        conn.send(("error", WorkerCrashError("shard result failed to serialize")))
    finally:
        conn.close()


class ShardSupervisor:
    """Run shard tasks to completion through crashes, hangs, and retries.

    Parameters
    ----------
    tasks:
        One task per shard — typically
        :class:`~repro.parallel.worker.ShardTask`, but any picklable
        object with mutable ``shard_id``/``attempt`` attributes works
        (the sampled global phase supervises
        :class:`~repro.clarans.clara.SampleTask` this way).
    runner:
        Module-level function executed over each task (in a worker
        process, inline, or as the fallback); defaults to
        :func:`~repro.parallel.worker.run_shard`.
    n_jobs:
        Max concurrently live worker processes; ``<= 1`` runs every shard
        inline (same retry semantics, no process boundary).
    max_retries:
        Recoverable-failure retries per shard before the inline fallback.
    backoff, backoff_multiplier:
        Retry ``i`` is scheduled ``backoff * multiplier**i`` seconds after
        the failure. In pool mode the delay is non-blocking (other shards
        keep running); inline it sleeps.
    shard_timeout:
        Per-attempt wall-clock limit; an overrunning worker is killed and
        the shard retried. ``None`` disables.
    deadline_seconds:
        Pool-wide wall-clock limit measured from :meth:`run`; on breach
        every live worker is killed and
        :class:`~repro.exceptions.DeadlineExceededError` propagates.
    prepare_attempt:
        ``(task, attempt) -> task`` hook called before *every* attempt —
        the build uses it to refresh the metric copy (determinism), point
        ``resume_from`` at the shard's own checkpoint, and let a chaos
        policy corrupt that checkpoint.
    on_result:
        Called with each :class:`ShardResult` as it arrives (the build
        re-books NCD here); an exception aborts the whole pool.
    on_retry:
        ``(task, failure, delay) -> None`` observability hook.
    inline_fallback:
        When ``False``, exhausted retries raise instead of degrading to
        in-parent execution (crash/timeout failures surface as
        :class:`~repro.exceptions.WorkerCrashError`).
    sleep, clock:
        Injectable time functions for deterministic tests.
    """

    def __init__(
        self,
        tasks: list[Any],
        *,
        n_jobs: int,
        runner: Callable[[Any], Any] = run_shard,
        max_retries: int = 2,
        backoff: float = 0.25,
        backoff_multiplier: float = 2.0,
        shard_timeout: float | None = None,
        deadline_seconds: float | None = None,
        prepare_attempt: Callable[[Any, int], Any] | None = None,
        on_result: Callable[[Any], None] | None = None,
        on_retry: Callable[[Any, ShardFailure, float], None] | None = None,
        inline_fallback: bool = True,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.tasks = list(tasks)
        self.runner = runner
        self.n_jobs = int(n_jobs)
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.backoff_multiplier = float(backoff_multiplier)
        self.shard_timeout = shard_timeout
        self.deadline_seconds = deadline_seconds
        self.prepare_attempt = prepare_attempt
        self.on_result = on_result
        self.on_retry = on_retry
        self.inline_fallback = bool(inline_fallback)
        self._sleep = sleep
        self._clock = clock
        self._deadline_at: float | None = None
        self.stats = SupervisorStats()

    # ------------------------------------------------------------------
    def run(self) -> list[Any]:
        """Execute every shard; returns results in task order."""
        if self.deadline_seconds is not None:
            self._deadline_at = self._clock() + float(self.deadline_seconds)
        states = [_ShardState(task) for task in self.tasks]
        if self.n_jobs <= 1 or len(states) <= 1:
            results = self._run_inline(states)
        else:
            results = self._run_pool(states)
        return [results[state.task.shard_id] for state in states]

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------
    def _check_deadline(self) -> None:
        if self._deadline_at is not None and self._clock() > self._deadline_at:
            raise DeadlineExceededError(
                f"pool-wide deadline of {self.deadline_seconds:.3g}s exceeded; "
                "live workers were cancelled cleanly"
            )

    def _prepare(self, state: _ShardState) -> Any:
        task = state.task
        task.attempt = state.attempt
        if self.prepare_attempt is not None:
            task = self.prepare_attempt(task, state.attempt)
            state.task = task
        return task

    def _complete(
        self, state: _ShardState, result: Any, results: dict[int, Any]
    ) -> None:
        if getattr(result, "resumed_at", None) is not None:
            self.stats.shards_resumed += 1
        results[state.task.shard_id] = result
        if self.on_result is not None:
            self.on_result(result)

    def _after_failure(
        self, state: _ShardState, kind: str, detail: str
    ) -> tuple[str, float]:
        """Record a failed attempt; decide ``("retry", delay)`` or
        ``("fallback", 0)``."""
        if kind in ("crash", "timeout"):
            self.stats.workers_crashed += 1
        failure = ShardFailure(state.task.shard_id, state.attempt, kind, detail)
        self.stats.failures.append(failure)
        if state.attempt < self.max_retries:
            delay = self.backoff * (self.backoff_multiplier**state.attempt)
            state.attempt += 1
            state.not_before = self._clock() + delay
            self.stats.shards_retried += 1
            self.stats.backoff_seconds_total += delay
            if self.on_retry is not None:
                self.on_retry(state.task, failure, delay)
            return ("retry", delay)
        if not self.inline_fallback:
            raise WorkerCrashError(
                f"shard {state.task.shard_id} failed {state.attempt + 1} "
                f"attempt(s); last failure: {kind}: {detail}"
            )
        return ("fallback", 0.0)

    def _fallback(self, state: _ShardState, results: dict[int, Any]) -> None:
        """Graceful degradation: the shard's last stand, in-parent."""
        self.stats.inline_fallbacks += 1
        task = self._prepare(state)
        self._complete(state, self.runner(task), results)

    # ------------------------------------------------------------------
    # Inline backend (n_jobs <= 1) — same retry semantics, no processes
    # ------------------------------------------------------------------
    def _run_inline(self, states: list[_ShardState]) -> dict[int, Any]:
        results: dict[int, Any] = {}
        for state in states:
            while state.task.shard_id not in results:
                self._check_deadline()
                task = self._prepare(state)
                try:
                    result = self.runner(task)
                except _NON_RETRYABLE:
                    raise
                except Exception as exc:
                    action, delay = self._after_failure(state, "error", repr(exc))
                    if action == "retry":
                        self._sleep(delay)
                        continue
                    self._fallback(state, results)
                    continue
                self._complete(state, result, results)
        return results

    # ------------------------------------------------------------------
    # Pool backend
    # ------------------------------------------------------------------
    def _run_pool(self, states: list[_ShardState]) -> dict[int, Any]:
        context = multiprocessing.get_context("spawn")
        results: dict[int, Any] = {}
        pending: deque[_ShardState] = deque(states)
        waiting: list[_ShardState] = []
        live: dict[Any, _LiveWorker] = {}
        try:
            while pending or waiting or live:
                self._check_deadline()
                now = self._clock()
                # Promote shards whose backoff elapsed.
                still_waiting: list[_ShardState] = []
                for state in waiting:
                    (pending.append if state.not_before <= now else still_waiting.append)(
                        state
                    )
                waiting = still_waiting
                # Launch up to n_jobs workers.
                while pending and len(live) < self.n_jobs:
                    self._launch(context, pending.popleft(), live)
                if not live:
                    # Everything is backing off: sleep to the next release.
                    wake = min(state.not_before for state in waiting)
                    self._sleep(max(wake - self._clock(), 0.0) + 0.001)
                    continue
                for conn in _wait_connections(list(live), timeout=_TICK_SECONDS):
                    self._collect(conn, live.pop(conn), results, waiting)
                self._kill_stragglers(live, results, waiting)
        finally:
            for conn, worker in live.items():
                self._kill(worker.process)
                conn.close()
        return results

    def _launch(
        self, context: Any, state: _ShardState, live: dict[Any, _LiveWorker]
    ) -> None:
        task = self._prepare(state)
        recv_conn, send_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_worker_entry, args=(send_conn, self.runner, task)
        )
        process.daemon = True
        process.start()
        # Close the parent's copy of the write end, so a dead worker's pipe
        # reads as EOF instead of blocking forever.
        send_conn.close()
        live[recv_conn] = _LiveWorker(state=state, process=process, started=self._clock())

    def _collect(
        self,
        conn: Any,
        worker: _LiveWorker,
        results: dict[int, Any],
        waiting: list[_ShardState],
    ) -> None:
        try:
            try:
                kind, payload = conn.recv()
            except (EOFError, OSError):
                self._kill(worker.process)
                code = worker.process.exitcode
                self._pool_failure(
                    worker.state,
                    "crash",
                    f"worker exited with code {code} before delivering shard "
                    f"{worker.state.task.shard_id}",
                    results,
                    waiting,
                )
                return
            self._kill(worker.process)  # joins; kills only if it lingers
            if kind == "result":
                self._complete(worker.state, payload, results)
            elif isinstance(payload, _NON_RETRYABLE):
                raise payload
            else:
                self._pool_failure(worker.state, "error", repr(payload), results, waiting)
        finally:
            conn.close()

    def _pool_failure(
        self,
        state: _ShardState,
        kind: str,
        detail: str,
        results: dict[int, Any],
        waiting: list[_ShardState],
    ) -> None:
        action, _ = self._after_failure(state, kind, detail)
        if action == "retry":
            waiting.append(state)
        else:
            self._fallback(state, results)

    def _kill_stragglers(
        self,
        live: dict[Any, _LiveWorker],
        results: dict[int, Any],
        waiting: list[_ShardState],
    ) -> None:
        if self.shard_timeout is None:
            return
        now = self._clock()
        for conn in [c for c, w in live.items() if now - w.started > self.shard_timeout]:
            worker = live.pop(conn)
            self._kill(worker.process)
            conn.close()
            self._pool_failure(
                worker.state,
                "timeout",
                f"shard {worker.state.task.shard_id} exceeded its "
                f"{self.shard_timeout:.3g}s timeout",
                results,
                waiting,
            )

    @staticmethod
    def _kill(process: Any) -> None:
        """Join a finished process, escalating to SIGKILL if it lingers."""
        process.join(timeout=0 if process.is_alive() else _JOIN_SECONDS)
        if process.is_alive():
            process.kill()
            process.join(timeout=_JOIN_SECONDS)
