"""Parallel clustroid distance matrix for the global phase.

The global phase (Section 3.2) hierarchically clusters the leaf
clustroids, which consumes the full pairwise distance matrix over them.
:func:`pairwise_matrix` computes that matrix with chunked ``cross()``
gathers across a worker pool: the rows are split into contiguous bands of
roughly equal *work* (row ``i`` still owes ``n - i`` upper-triangle
entries), each worker measures its band against the trailing columns with
its own metric copy, and the parent assembles and mirrors the upper
triangle.

Every entry ``(i, j)``, ``i < j``, is produced by the same
``d(objects[i], objects[j])`` evaluation the sequential
``metric.pairwise`` would perform, so the matrix is bit-identical to the
sequential one. Accounting is exact and worker-independent: the parent
books the canonical ``n * (n - 1) / 2`` pair count on its own metric via
:meth:`~repro.metrics.base.DistanceFunction.count_external` (worker-copy
counters are discarded — bands overlap on their diagonal blocks, and
charging the overlap would overstate NCD relative to the sequential
phase).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.metrics.base import DistanceFunction

__all__ = ["pairwise_matrix"]

#: Below this many objects the spawn/pickle overhead of a pool dwarfs the
#: matrix itself; fall back to the sequential gather.
_MIN_PARALLEL_ITEMS = 64


@dataclass
class _BandTask:
    """One contiguous row band of the upper triangle."""

    start: int
    stop: int
    objects: list[Any]
    metric: DistanceFunction


def _compute_band(task: _BandTask) -> tuple[int, int, np.ndarray]:
    """Measure rows ``start:stop`` against columns ``start:`` (the band's
    share of the upper triangle, plus its small diagonal block)."""
    rows = task.objects[task.start : task.stop]
    block = task.metric.cross(rows, task.objects[task.start :])
    return task.start, task.stop, np.asarray(block, dtype=np.float64)


def _band_bounds(n: int, n_bands: int) -> list[tuple[int, int]]:
    """Split rows into bands of roughly equal upper-triangle work."""
    work = np.cumsum(np.arange(n, 0, -1, dtype=np.float64))
    total = float(work[-1])
    bounds: list[tuple[int, int]] = []
    previous = 0
    for band in range(1, n_bands + 1):
        cut = int(np.searchsorted(work, total * band / n_bands)) + 1
        cut = min(max(cut, previous + 1), n)
        if cut > previous:
            bounds.append((previous, cut))
            previous = cut
        if previous >= n:
            break
    return bounds


def pairwise_matrix(
    metric: DistanceFunction, objects: Sequence[Any], n_jobs: int = 1
) -> np.ndarray:
    """Full symmetric distance matrix, gathered across ``n_jobs`` workers.

    Identical values and identical NCD (``n * (n - 1) / 2`` booked on
    ``metric``) as ``metric.pairwise(objects)``; ``n_jobs=1`` or a small
    input simply delegates to it. Requires a picklable metric for
    ``n_jobs > 1``.
    """
    n = len(objects)
    if n_jobs <= 1 or n < _MIN_PARALLEL_ITEMS:
        return metric.pairwise(objects)
    import multiprocessing
    import pickle
    from concurrent.futures import ProcessPoolExecutor

    from repro.exceptions import ParameterError

    try:
        blob = pickle.dumps(metric, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ParameterError(
            "the parallel global phase ships a copy of the metric to every "
            f"worker, but this metric does not pickle: {exc!r}"
        ) from exc
    items = list(objects)
    bounds = _band_bounds(n, 4 * n_jobs)
    tasks = [
        _BandTask(start=start, stop=stop, objects=items, metric=pickle.loads(blob))
        for start, stop in bounds
    ]
    out = np.zeros((n, n), dtype=np.float64)
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=min(n_jobs, len(tasks)), mp_context=context
    ) as pool:
        for start, stop, block in pool.map(_compute_band, tasks):
            out[start:stop, start:] = block
    upper = np.triu(out, 1)
    matrix = upper + upper.T
    # Canonical accounting on the parent metric: one call per unordered
    # pair, exactly what the sequential pairwise() would book.
    metric.count_external(n * (n - 1) // 2)
    return matrix
