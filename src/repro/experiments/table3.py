"""Table 3: the data-cleaning application — BUBBLE-FM vs RED (Section 7)."""

from __future__ import annotations

import time

from repro.core.preclusterer import BUBBLEFM
from repro.datasets import make_authority_dataset
from repro.evaluation import misplaced_count
from repro.experiments.config import Scale, resolve_scale
from repro.experiments.results import TableResult
from repro.metrics import CachedDistance, EditDistance
from repro.red import REDClusterer

__all__ = ["run_table3", "PAPER_TABLE3"]

PAPER_TABLE3 = [
    ("RED (run 1)", 10161, 69, "45 h"),
    ("BUBBLE-FM (run 1)", 10078, 897, "7.5 h"),
    ("BUBBLE-FM (run 2)", 12385, 20, "7 h"),
]


def _run_red(ds):
    start = time.perf_counter()
    model = REDClusterer(threshold=0.25).fit(ds.strings)
    return {
        "clusters": model.n_clusters_,
        "misplaced": misplaced_count(ds.labels, model.labels_),
        "seconds": time.perf_counter() - start,
        "ncd": model.metric.n_calls,
    }


def _run_bubble_fm(ds, threshold, assign_via, seed):
    metric = CachedDistance(EditDistance())
    start = time.perf_counter()
    model = BUBBLEFM(
        metric,
        branching_factor=15,
        sample_size=75,
        image_dim=3,
        threshold=threshold,
        seed=seed,
    ).fit(ds.strings)
    labels = model.assign(ds.strings, via=assign_via)
    return {
        "clusters": model.n_subclusters_,
        "misplaced": misplaced_count(ds.labels, labels),
        "seconds": time.perf_counter() - start,
        "ncd": metric.n_calls,
    }


def run_table3(scale: str | Scale = "laptop", seed: int = 3) -> TableResult:
    """RED vs the two BUBBLE-FM operating points on the RDS surrogate.

    Run 1 is the speed point (loose threshold, CF*-tree second phase);
    run 2 the quality point (tight threshold, exact second phase) — matching
    the structure of the paper's Table 3.
    """
    scale = resolve_scale(scale)
    ds = make_authority_dataset(
        n_classes=scale.string_classes, n_strings=scale.string_records, seed=30
    )
    red = _run_red(ds)
    fm1 = _run_bubble_fm(ds, threshold=3.0, assign_via="tree", seed=seed)
    fm2 = _run_bubble_fm(ds, threshold=1.0, assign_via="linear", seed=seed)
    rows = []
    for (name, p_clusters, p_misplaced, p_time), got in zip(
        PAPER_TABLE3, (red, fm1, fm2)
    ):
        rows.append(
            [name, got["clusters"], got["misplaced"], got["seconds"], got["ncd"],
             p_clusters, p_misplaced, p_time]
        )
    return TableResult(
        experiment="Table 3",
        description=(
            f"Data cleaning on RDS surrogate ({scale.string_classes} classes, "
            f"{scale.string_records} strings)"
        ),
        columns=["algorithm", "#clusters", "#misplaced", "seconds", "NCD",
                 "paper:#clusters", "paper:#misplaced", "paper:time"],
        rows=rows,
        context={"scale": scale.name, "seed": seed},
    )
