"""Figures 1–6: DS2 center scatter, time/NCD scaling (Sections 6.3–6.4)."""

from __future__ import annotations

import time

import numpy as np

from repro.core.preclusterer import BUBBLE, BUBBLEFM
from repro.datasets import make_cell_dataset, make_ds2
from repro.evaluation import clustroid_quality
from repro.experiments.config import Scale, paper_max_nodes, resolve_scale
from repro.experiments.results import TableResult
from repro.metrics import EuclideanDistance
from repro.observability import NULL_TRACER, NullTracer
from repro.pipelines import cluster_dataset, map_first_cluster

__all__ = [
    "run_fig123_ds2_centers",
    "run_fig4_time_vs_points",
    "run_fig5_ncd_vs_points",
    "run_fig6_time_vs_clusters",
]

_PARAMS = dict(branching_factor=15, sample_size=75, representation_number=10)


def run_fig123_ds2_centers(scale: str | Scale = "laptop", seed: int = 4) -> TableResult:
    """The DS2 scatter plots, summarized as CQ + wave coverage per method.

    The raw center coordinates are included in the result context so the
    figures can be re-plotted (see ``examples/paper_figures.py``).
    """
    scale = resolve_scale(scale)
    ds = make_ds2(n_points=scale.table_points, seed=40)
    max_nodes = paper_max_nodes(100)
    centers_by_method = {}
    for figure, algorithm in (
        ("Figure 1 (BUBBLE)", "bubble"),
        ("Figure 2 (BUBBLE-FM)", "bubble-fm"),
    ):
        res = cluster_dataset(
            ds.as_objects(), EuclideanDistance(), n_clusters=100,
            algorithm=algorithm, image_dim=2, max_nodes=max_nodes,
            assign=False, seed=seed,
        )
        centers_by_method[figure] = np.vstack(res.centers)
    mf = map_first_cluster(
        ds.as_objects(), EuclideanDistance(), n_clusters=100,
        image_dim=2, max_nodes=max_nodes, seed=seed,
    )
    centers_by_method["Figure 3 (BIRCH/Map-First)"] = mf.image_centers

    rows = []
    for figure, centers in centers_by_method.items():
        hit = sum(
            1 for c in ds.centers if np.min(np.linalg.norm(centers - c, axis=1)) < 1.5
        )
        rows.append(
            [figure, len(centers), clustroid_quality(ds.centers, centers),
             hit / len(ds.centers)]
        )
    return TableResult(
        experiment="Figures 1-3",
        description=(
            "DS2 cluster centers trace the sine wave (coverage = true "
            "centers with a found center within 1.5)"
        ),
        columns=["figure", "#centers", "CQ", "coverage"],
        rows=rows,
        context={
            "scale": scale.name,
            "seed": seed,
            "centers": {k: v.tolist() for k, v in centers_by_method.items()},
            "true_centers": ds.centers.tolist(),
        },
    )


def _scan(
    algorithm: str, objs, max_nodes: int, seed: int, tracer: NullTracer = NULL_TRACER
) -> tuple[float, int]:
    metric = EuclideanDistance()
    if algorithm == "bubble":
        model = BUBBLE(metric, max_nodes=max_nodes, seed=seed, tracer=tracer, **_PARAMS)
    else:
        model = BUBBLEFM(
            metric, max_nodes=max_nodes, image_dim=20, seed=seed, tracer=tracer, **_PARAMS
        )
    start = time.perf_counter()
    model.fit(objs)
    return time.perf_counter() - start, metric.n_calls


def run_fig4_time_vs_points(
    scale: str | Scale = "laptop", seed: int = 5, tracer: NullTracer = NULL_TRACER
) -> TableResult:
    """Scan wall time vs number of points on DS20d.50c."""
    scale = resolve_scale(scale)
    max_nodes = paper_max_nodes(50)
    rows = []
    for n in scale.sweep_points:
        ds = make_cell_dataset(dim=20, n_clusters=50, n_points=n, seed=50)
        objs = ds.as_objects()
        t_b, _ = _scan("bubble", objs, max_nodes, seed, tracer)
        t_fm, _ = _scan("bubble-fm", objs, max_nodes, seed, tracer)
        rows.append([n, t_b, t_fm])
    return TableResult(
        experiment="Figure 4",
        description=(
            "Scan time vs #points on DS20d.50c (seconds; paper: linear, "
            "BUBBLE below BUBBLE-FM)"
        ),
        columns=["#points", "BUBBLE (s)", "BUBBLE-FM (s)"],
        rows=rows,
        context={"scale": scale.name, "seed": seed},
    )


def run_fig5_ncd_vs_points(
    scale: str | Scale = "laptop",
    seeds: tuple[int, ...] = (6, 7, 8),
    tracer: NullTracer = NULL_TRACER,
) -> TableResult:
    """NCD vs number of points, averaged over seeds (tree evolution is
    discrete, so single runs are noisy at reduced scale)."""
    scale = resolve_scale(scale)
    max_nodes = paper_max_nodes(50)
    rows = []
    for n in scale.sweep_points:
        ds = make_cell_dataset(dim=20, n_clusters=50, n_points=n, seed=60)
        objs = ds.as_objects()
        ncd_b = float(
            np.mean([_scan("bubble", objs, max_nodes, s, tracer)[1] for s in seeds])
        )
        ncd_fm = float(
            np.mean([_scan("bubble-fm", objs, max_nodes, s, tracer)[1] for s in seeds])
        )
        rows.append([n, ncd_b, ncd_fm, ncd_b - ncd_fm])
    return TableResult(
        experiment="Figure 5",
        description=(
            "NCD vs #points on DS20d.50c (paper: linear; BUBBLE-FM lower, "
            "gap grows with N)"
        ),
        columns=["#points", "BUBBLE NCD", "BUBBLE-FM NCD", "gap"],
        rows=rows,
        context={"scale": scale.name, "seeds": list(seeds)},
    )


def run_fig6_time_vs_clusters(
    scale: str | Scale = "laptop", seed: int = 7, tracer: NullTracer = NULL_TRACER
) -> TableResult:
    """Scan wall time vs number of clusters at fixed N."""
    scale = resolve_scale(scale)
    rows = []
    for k in scale.sweep_clusters:
        ds = make_cell_dataset(dim=20, n_clusters=k, n_points=scale.fig6_points, seed=70)
        objs = ds.as_objects()
        max_nodes = paper_max_nodes(k)
        t_b, _ = _scan("bubble", objs, max_nodes, seed, tracer)
        t_fm, _ = _scan("bubble-fm", objs, max_nodes, seed, tracer)
        rows.append([k, t_b, t_fm])
    return TableResult(
        experiment="Figure 6",
        description=(
            f"Scan time vs #clusters at {scale.fig6_points} points "
            "(paper: almost linear)"
        ),
        columns=["#clusters", "BUBBLE (s)", "BUBBLE-FM (s)"],
        rows=rows,
        context={"scale": scale.name, "seed": seed},
    )
