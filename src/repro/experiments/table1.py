"""Table 1: distortion of Map-First vs BUBBLE vs BUBBLE-FM (Section 6.2)."""

from __future__ import annotations

from repro.datasets import make_authority_dataset, make_cell_dataset, make_ds1, make_ds2
from repro.evaluation import adjusted_rand_index, distortion
from repro.experiments.config import Scale, paper_max_nodes, resolve_scale
from repro.experiments.results import TableResult
from repro.metrics import EditDistance, EuclideanDistance
from repro.observability import NULL_TRACER, NullTracer
from repro.pipelines import cluster_dataset, map_first_cluster

__all__ = ["run_table1", "run_table1b_strings", "PAPER_TABLE1"]

#: The paper's reported distortions (100k-point datasets).
PAPER_TABLE1 = {
    "DS1": {"map-first": 195_146, "bubble": 129_798, "bubble-fm": 122_544},
    "DS2": {"map-first": 1_147_830, "bubble": 125_093, "bubble-fm": 125_094},
    "DS20d.50c": {"map-first": 2.214e6, "bubble": 21_127.5, "bubble-fm": 21_127.5},
}


def _datasets(scale: Scale):
    n = scale.table_points
    return [
        ("DS1", make_ds1(n_points=n, seed=10), 100, 2),
        ("DS2", make_ds2(n_points=n, seed=11), 100, 2),
        ("DS20d.50c", make_cell_dataset(dim=20, n_clusters=50, n_points=n, seed=12), 50, 20),
    ]


def run_table1(
    scale: str | Scale = "laptop", seed: int = 1, tracer: NullTracer = NULL_TRACER
) -> TableResult:
    """Distortion of the three pipelines on DS1, DS2 and DS20d.50c."""
    scale = resolve_scale(scale)
    rows = []
    for name, ds, k, dim in _datasets(scale):
        max_nodes = paper_max_nodes(k)
        objs = ds.as_objects()
        res_b = cluster_dataset(
            objs, EuclideanDistance(), k, algorithm="bubble",
            max_nodes=max_nodes, seed=seed, tracer=tracer,
        )
        res_fm = cluster_dataset(
            objs, EuclideanDistance(), k, algorithm="bubble-fm",
            image_dim=dim, max_nodes=max_nodes, seed=seed, tracer=tracer,
        )
        res_mf = map_first_cluster(
            objs, EuclideanDistance(), k, image_dim=dim,
            max_nodes=max_nodes, seed=seed,
        )
        paper = PAPER_TABLE1[name]
        rows.append(
            [
                name,
                distortion(ds.points, res_mf.labels),
                distortion(ds.points, res_b.labels),
                distortion(ds.points, res_fm.labels),
                paper["map-first"],
                paper["bubble"],
                paper["bubble-fm"],
            ]
        )
    return TableResult(
        experiment="Table 1",
        description=(
            "Distortion: Map-First vs BUBBLE vs BUBBLE-FM "
            "(paper values at 100k points)"
        ),
        columns=["dataset", "map-first", "bubble", "bubble-fm",
                 "paper:mf", "paper:b", "paper:bfm"],
        rows=rows,
        context={"scale": scale.name, "seed": seed},
    )


def run_table1b_strings(scale: str | Scale = "laptop", seed: int = 5) -> TableResult:
    """Map-First vs BUBBLE on a non-embeddable space (string workload).

    The structural version of Section 6.2's conclusion: edit distance has no
    low-dimensional Euclidean embedding, so mapping first loses information
    regardless of implementation quality. Quality measured as ARI against
    the known variant classes at matched cluster count.
    """
    scale = resolve_scale(scale)
    n_classes = max(scale.string_classes // 2, 10)
    n_records = max(scale.string_records // 2, 10 * n_classes)
    ds = make_authority_dataset(n_classes=n_classes, n_strings=n_records, seed=35)

    bubble = cluster_dataset(
        ds.strings, EditDistance(), n_clusters=n_classes,
        algorithm="bubble", max_nodes=40, seed=seed,
    )
    ari_bubble = adjusted_rand_index(ds.labels, bubble.labels)
    mf = map_first_cluster(
        ds.strings, EditDistance(), n_clusters=n_classes, image_dim=4,
        max_nodes=40, seed=seed,
    )
    ari_mf = adjusted_rand_index(ds.labels, mf.labels)
    return TableResult(
        experiment="Table 1b",
        description=(
            "Clustering quality (ARI) on the string workload: distance space "
            "vs Map-First (paper: Map-First quality 'not good')"
        ),
        columns=["algorithm", "ARI"],
        rows=[
            ["BUBBLE (distance space)", ari_bubble],
            ["Map-First (FastMap+BIRCH)", ari_mf],
        ],
        context={"scale": scale.name, "seed": seed,
                 "n_classes": n_classes, "n_records": n_records},
    )
