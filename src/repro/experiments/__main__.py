"""CLI for the experiment suite: ``python -m repro.experiments <which>``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    SCALES,
    run_ablation_clarans,
    run_ablation_image_dim,
    run_ablation_indexes,
    run_ablation_labeling,
    run_ablation_mappers,
    run_ablation_order,
    run_ablation_representation,
    run_ablation_sample_size,
    run_fig123_ds2_centers,
    run_fig4_time_vs_points,
    run_fig5_ncd_vs_points,
    run_fig6_time_vs_clusters,
    run_table1,
    run_table1b_strings,
    run_table2,
    run_table3,
)
from repro.experiments.results import save_results

_EXPERIMENTS = {
    "table1": run_table1,
    "table1b": run_table1b_strings,
    "table2": run_table2,
    "table3": run_table3,
    "fig123": run_fig123_ds2_centers,
    "fig4": run_fig4_time_vs_points,
    "fig5": run_fig5_ncd_vs_points,
    "fig6": run_fig6_time_vs_clusters,
    "a1": run_ablation_representation,
    "a2": run_ablation_sample_size,
    "a3": run_ablation_image_dim,
    "a4": run_ablation_order,
    "a5": run_ablation_mappers,
    "a6": run_ablation_labeling,
    "a7": run_ablation_clarans,
    "a8": run_ablation_indexes,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "which",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="experiment id, or 'all'",
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="laptop")
    parser.add_argument("--out", help="also save results to this JSON file")
    args = parser.parse_args(argv)

    names = sorted(_EXPERIMENTS) if args.which == "all" else [args.which]
    results = []
    for name in names:
        result = _EXPERIMENTS[name](scale=args.scale)
        results.append(result)
        print(result.render())
        print()
    if args.out:
        save_results(args.out, results)
        print(f"results saved to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
