"""Result containers for reproduced experiments."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.exceptions import ParameterError

__all__ = ["TableResult", "save_results", "load_results"]


@dataclass
class TableResult:
    """One reproduced table or figure: columns, rows, and provenance."""

    #: Experiment identifier, e.g. ``"Table 1"``.
    experiment: str
    #: One-line description including what the paper reports.
    description: str
    columns: list[str]
    rows: list[list]
    #: Free-form provenance: scale, seeds, parameter values.
    context: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ParameterError(
                    f"{self.experiment}: row of width {len(row)} does not match "
                    f"{len(self.columns)} columns"
                )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Format as an aligned text table."""
        lines = [f"=== {self.experiment}: {self.description} ==="]
        widths = [
            max(len(str(c)), *(len(_fmt(r[i])) for r in self.rows)) if self.rows else len(str(c))
            for i, c in enumerate(self.columns)
        ]
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths)))
        for row in self.rows:
            lines.append("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def column(self, name: str) -> list:
        """Values of one column, by header name."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise ParameterError(
                f"{self.experiment} has no column {name!r}; columns: {self.columns}"
            ) from None
        return [row[idx] for row in self.rows]

    def row_map(self, key_column: str | None = None) -> dict:
        """Rows keyed by their first (or named) column."""
        key_idx = 0 if key_column is None else self.columns.index(key_column)
        return {row[key_idx]: row for row in self.rows}

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "description": self.description,
            "columns": self.columns,
            "rows": self.rows,
            "context": self.context,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "TableResult":
        return cls(
            experiment=doc["experiment"],
            description=doc["description"],
            columns=list(doc["columns"]),
            rows=[list(r) for r in doc["rows"]],
            context=dict(doc.get("context", {})),
        )


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0 or (1e-3 < abs(v) < 1e6):
            return f"{v:.4g}"
        return f"{v:.3e}"
    return str(v)


def save_results(path: str | os.PathLike, results: list[TableResult]) -> None:
    """Write a list of results to a JSON file."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump([r.to_dict() for r in results], f, indent=2, default=str)


def load_results(path: str | os.PathLike) -> list[TableResult]:
    """Read results written by :func:`save_results`."""
    with open(path, "r", encoding="utf-8") as f:
        docs = json.load(f)
    return [TableResult.from_dict(d) for d in docs]
