"""Experiment scales: one knob that sizes every workload.

The paper's absolute numbers come from 100k–500k-point runs on 1999 C++
code; a pure-Python reproduction keeps the *shapes* at a fraction of the
size. Three presets:

========  ===========================  =============================
scale     intended use                 typical wall time (full suite)
========  ===========================  =============================
smoke     CI / unit-test smoke          < 1 minute
laptop    default benchmarks            a few minutes
paper     original workload sizes       hours
========  ===========================  =============================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ParameterError

__all__ = ["Scale", "SCALES", "resolve_scale", "paper_max_nodes"]


@dataclass(frozen=True)
class Scale:
    """Workload sizes for one preset."""

    name: str
    #: Points for the 100k-point experiments (Tables 1–2, Figures 1–3).
    table_points: int
    #: Point counts swept in Figures 4–5.
    sweep_points: tuple[int, ...]
    #: Cluster counts swept in Figure 6.
    sweep_clusters: tuple[int, ...]
    #: Points for Figure 6's fixed-N sweep.
    fig6_points: int
    #: (classes, records) for the string experiments (Tables 1b, 3).
    string_classes: int
    string_records: int
    #: Points for the ablations.
    ablation_points: int


SCALES: dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        table_points=2_000,
        sweep_points=(500, 1_000, 1_500),
        sweep_clusters=(5, 10, 15),
        fig6_points=1_500,
        string_classes=30,
        string_records=300,
        ablation_points=1_500,
    ),
    "laptop": Scale(
        name="laptop",
        table_points=10_000,
        sweep_points=(4_000, 8_000, 12_000, 16_000, 20_000),
        sweep_clusters=(10, 20, 30, 40, 50),
        fig6_points=10_000,
        string_classes=120,
        string_records=1_200,
        ablation_points=10_000,
    ),
    "paper": Scale(
        name="paper",
        table_points=100_000,
        sweep_points=(50_000, 100_000, 200_000, 300_000, 500_000),
        sweep_clusters=(50, 100, 150, 200, 250),
        fig6_points=200_000,
        string_classes=2_000,
        string_records=20_000,
        ablation_points=100_000,
    ),
}


def resolve_scale(scale: str | Scale) -> Scale:
    """Accept a preset name or an explicit :class:`Scale`."""
    if isinstance(scale, Scale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ParameterError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        ) from None


def paper_max_nodes(n_clusters: int, branching_factor: int = 15) -> int:
    """Node budget reproducing the paper's memory methodology.

    Section 6.1 sizes memory so the number of sub-clusters stays within 5%
    of the actual cluster count; a budget of roughly twice the leaves needed
    for ~1.1 * K entries lands in that regime.
    """
    leaves = math.ceil(1.1 * n_clusters / branching_factor)
    return max(8, 2 * leaves + 2)
