"""Table 2: clustering quality (CQ, distortion) on DS20d.50c (Section 6.3)."""

from __future__ import annotations

import numpy as np

from repro.datasets import make_cell_dataset
from repro.evaluation import (
    clustroid_quality,
    distortion,
    min_possible_clustroid_quality,
)
from repro.experiments.config import Scale, paper_max_nodes, resolve_scale
from repro.experiments.results import TableResult
from repro.metrics import EuclideanDistance
from repro.pipelines import cluster_dataset

__all__ = ["run_table2", "PAPER_TABLE2"]

PAPER_TABLE2 = {
    "bubble": {"cq": 0.289, "actual": 21127.4, "computed": 21127.5},
    "bubble-fm": {"cq": 0.294, "actual": 21127.4, "computed": 21127.5},
    "cq_floor": 0.212,
}


def run_table2(scale: str | Scale = "laptop", seed: int = 2) -> TableResult:
    """CQ, its floor, and actual-vs-computed distortion for both algorithms."""
    scale = resolve_scale(scale)
    ds = make_cell_dataset(
        dim=20, n_clusters=50, n_points=scale.table_points, seed=20
    )
    floor = min_possible_clustroid_quality(ds.centers, ds.points, ds.labels)
    actual = distortion(ds.points, ds.labels)
    rows = []
    for algorithm in ("bubble", "bubble-fm"):
        res = cluster_dataset(
            ds.as_objects(),
            EuclideanDistance(),
            n_clusters=50,
            algorithm=algorithm,
            image_dim=20,
            max_nodes=paper_max_nodes(50),
            seed=seed,
        )
        centers = np.vstack(res.centers)
        rows.append(
            [
                algorithm,
                clustroid_quality(ds.centers, centers),
                floor,
                actual,
                distortion(ds.points, res.labels),
                PAPER_TABLE2[algorithm]["cq"],
                PAPER_TABLE2["cq_floor"],
            ]
        )
    return TableResult(
        experiment="Table 2",
        description="Clustering quality on DS20d.50c (CQ floor = best achievable)",
        columns=["algorithm", "CQ", "CQ floor", "actual distortion",
                 "computed distortion", "paper:CQ", "paper:floor"],
        rows=rows,
        context={"scale": scale.name, "seed": seed},
    )
