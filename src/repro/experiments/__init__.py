"""Programmatic reproduction of the paper's evaluation (Sections 6–7).

Every table and figure is a function here returning a
:class:`~repro.experiments.results.TableResult`; the pytest benchmarks under
``benchmarks/`` are thin wrappers that run these functions and assert the
paper's shapes. Running outside pytest works too::

    python -m repro.experiments table1 --scale smoke
    python -m repro.experiments all --scale laptop --out results.json

Scales: ``smoke`` (seconds; CI-sized), ``laptop`` (minutes; the default the
benchmarks use), ``paper`` (the original workload sizes; hours in pure
Python).
"""

from repro.experiments.ablations import (
    run_ablation_clarans,
    run_ablation_image_dim,
    run_ablation_indexes,
    run_ablation_labeling,
    run_ablation_mappers,
    run_ablation_order,
    run_ablation_representation,
    run_ablation_sample_size,
)
from repro.experiments.config import SCALES, Scale
from repro.experiments.figures import (
    run_fig123_ds2_centers,
    run_fig4_time_vs_points,
    run_fig5_ncd_vs_points,
    run_fig6_time_vs_clusters,
)
from repro.experiments.results import TableResult
from repro.experiments.table1 import run_table1, run_table1b_strings
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3

__all__ = [
    "Scale",
    "SCALES",
    "TableResult",
    "run_table1",
    "run_table1b_strings",
    "run_table2",
    "run_table3",
    "run_fig123_ds2_centers",
    "run_fig4_time_vs_points",
    "run_fig5_ncd_vs_points",
    "run_fig6_time_vs_clusters",
    "run_ablation_representation",
    "run_ablation_sample_size",
    "run_ablation_image_dim",
    "run_ablation_order",
    "run_ablation_mappers",
    "run_ablation_labeling",
    "run_ablation_clarans",
    "run_ablation_indexes",
]
