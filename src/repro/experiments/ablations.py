"""Ablations: parameter sensitivity, order independence, mapper choice,
labeling strategies, and the CLARANS related-work comparison."""

from __future__ import annotations

import time

import numpy as np

from repro.clarans import CLARANS
from repro.core.preclusterer import BUBBLE, BUBBLEFM
from repro.datasets import make_cell_dataset, make_ds1
from repro.evaluation import adjusted_rand_index, distortion
from repro.experiments.config import Scale, paper_max_nodes, resolve_scale
from repro.experiments.results import TableResult
from repro.metrics import EuclideanDistance
from repro.pipelines import cluster_dataset

__all__ = [
    "run_ablation_representation",
    "run_ablation_sample_size",
    "run_ablation_image_dim",
    "run_ablation_order",
    "run_ablation_mappers",
    "run_ablation_labeling",
    "run_ablation_clarans",
    "run_ablation_indexes",
]

_K = 25


def _overlapping_grid(scale: Scale):
    """A grid with mildly overlapping clusters, so parameters can matter."""
    return make_ds1(
        n_points=scale.ablation_points, grid_side=5, spacing=4.0, std=1.0, seed=80
    )


def _distortion_with(ds, seed=8, **kw):
    defaults = dict(n_clusters=_K, algorithm="bubble", max_nodes=paper_max_nodes(_K))
    defaults.update(kw)
    res = cluster_dataset(ds.as_objects(), EuclideanDistance(), seed=seed, **defaults)
    return distortion(ds.points, res.labels)


def run_ablation_representation(scale: str | Scale = "laptop") -> TableResult:
    """A1: sensitivity to the representation number 2p (paper: 10 works well)."""
    scale = resolve_scale(scale)
    ds = _overlapping_grid(scale)
    rows = [[rn, _distortion_with(ds, representation_number=rn)] for rn in (4, 10, 20)]
    return TableResult(
        experiment="Ablation A1",
        description="Distortion vs representation number 2p (paper: insensitive, 10 good)",
        columns=["2p", "distortion"],
        rows=rows,
        context={"scale": scale.name},
    )


def run_ablation_sample_size(scale: str | Scale = "laptop") -> TableResult:
    """A2: sensitivity to the sample size SS (paper: 5 * BF works well)."""
    scale = resolve_scale(scale)
    ds = _overlapping_grid(scale)
    rows = [[ss, _distortion_with(ds, sample_size=ss)] for ss in (30, 75, 150)]
    return TableResult(
        experiment="Ablation A2",
        description="Distortion vs sample size SS (paper: 5*BF = 75 works well)",
        columns=["SS", "distortion"],
        rows=rows,
        context={"scale": scale.name},
    )


def run_ablation_image_dim(scale: str | Scale = "laptop") -> TableResult:
    """A3: BUBBLE-FM's image dimensionality vs quality and NCD (Section 5.2.2)."""
    scale = resolve_scale(scale)
    ds = _overlapping_grid(scale)
    rows = []
    for k in (2, 5, 10):
        metric = EuclideanDistance()
        res = cluster_dataset(
            ds.as_objects(), metric, n_clusters=_K, algorithm="bubble-fm",
            image_dim=k, max_nodes=paper_max_nodes(_K), seed=8,
        )
        rows.append([k, distortion(ds.points, res.labels), res.n_distance_calls])
    return TableResult(
        experiment="Ablation A3",
        description="BUBBLE-FM distortion and NCD vs image dimensionality k",
        columns=["k", "distortion", "NCD"],
        rows=rows,
        context={"scale": scale.name},
    )


def run_ablation_order(
    scale: str | Scale = "laptop", order_seeds: tuple[int, ...] = (0, 1, 2)
) -> TableResult:
    """A4: input-order independence (paper footnote 5)."""
    scale = resolve_scale(scale)
    ds = make_cell_dataset(
        dim=10, n_clusters=20, n_points=max(scale.ablation_points // 2, 1_000), seed=90
    )
    rows = []
    for algorithm in ("bubble", "bubble-fm"):
        values = []
        for order_seed in order_seeds:
            shuffled = ds.shuffled(seed=order_seed)
            res = cluster_dataset(
                shuffled.as_objects(), EuclideanDistance(), n_clusters=20,
                algorithm=algorithm, image_dim=10,
                max_nodes=paper_max_nodes(20), seed=9,
            )
            values.append(distortion(shuffled.points, res.labels))
        rows.append([algorithm, *values, max(values) / min(values)])
    return TableResult(
        experiment="Ablation A4",
        description="Distortion across input orders (paper: order-independent)",
        columns=["algorithm"]
        + [f"order {s}" for s in order_seeds]
        + ["max/min"],
        rows=rows,
        context={"scale": scale.name, "order_seeds": list(order_seeds)},
    )


def run_ablation_mappers(scale: str | Scale = "laptop", seed: int = 10) -> TableResult:
    """A5: FastMap vs Landmark MDS as BUBBLE-FM's image-space mapper."""
    scale = resolve_scale(scale)
    ds = make_cell_dataset(
        dim=10, n_clusters=20, n_points=max(scale.ablation_points // 2, 1_000), seed=100
    )
    rows = []
    for mapper in ("fastmap", "landmark"):
        metric = EuclideanDistance()
        model = BUBBLEFM(
            metric, image_dim=10, max_nodes=paper_max_nodes(20),
            mapper=mapper, seed=seed,
        ).fit(ds.as_objects())
        labels = model.assign(ds.as_objects())
        rows.append(
            [mapper, metric.n_calls, distortion(ds.points, labels), model.n_subclusters_]
        )
    return TableResult(
        experiment="Ablation A5",
        description="BUBBLE-FM image-space mapper: FastMap (paper) vs Landmark MDS",
        columns=["mapper", "NCD", "distortion", "#subclusters"],
        rows=rows,
        context={"scale": scale.name, "seed": seed},
    )


def run_ablation_labeling(scale: str | Scale = "laptop", seed: int = 11) -> TableResult:
    """A6: the three second-phase labeling strategies on cost vs accuracy.

    ``linear`` is the paper's exact scan; ``tree`` routes through the
    CF*-tree; ``mtree`` is an exact nearest-neighbour index over the
    clustroids. Agreement is measured against the exact scan.
    """
    scale = resolve_scale(scale)
    ds = make_cell_dataset(
        dim=10, n_clusters=20, n_points=max(scale.ablation_points // 2, 1_000), seed=101
    )
    metric = EuclideanDistance()
    model = BUBBLE(
        metric, branching_factor=8, sample_size=40, max_nodes=80, seed=seed
    ).fit(ds.as_objects())
    reference = model.assign(ds.as_objects(), via="linear")
    rows = []
    for via in ("linear", "mtree", "tree"):
        before = metric.n_calls
        start = time.perf_counter()
        labels = model.assign(ds.as_objects(), via=via)
        rows.append(
            [
                via,
                metric.n_calls - before,
                time.perf_counter() - start,
                float(np.mean(labels == reference)),
            ]
        )
    return TableResult(
        experiment="Ablation A6",
        description=(
            f"Second-phase labeling over {model.n_subclusters_} sub-clusters "
            "(agreement vs the exact linear scan)"
        ),
        columns=["strategy", "NCD", "seconds", "agreement"],
        rows=rows,
        context={"scale": scale.name, "seed": seed,
                 "n_subclusters": model.n_subclusters_},
    )


def run_ablation_clarans(scale: str | Scale = "laptop", seed: int = 12) -> TableResult:
    """A7: BUBBLE pipeline vs CLARANS (Section 2's medoid-based related work)."""
    scale = resolve_scale(scale)
    ds = make_cell_dataset(
        dim=10, n_clusters=8, n_points=max(scale.ablation_points // 5, 500), seed=102
    )
    metric_b = EuclideanDistance()
    start = time.perf_counter()
    res = cluster_dataset(
        ds.as_objects(), metric_b, n_clusters=8, max_nodes=paper_max_nodes(8), seed=seed
    )
    t_bubble = time.perf_counter() - start

    metric_c = EuclideanDistance()
    start = time.perf_counter()
    clarans = CLARANS(8, metric_c, num_local=2, max_neighbors=150, seed=seed)
    clarans.fit(ds.as_objects())
    t_clarans = time.perf_counter() - start
    return TableResult(
        experiment="Ablation A7",
        description="BUBBLE vs CLARANS (Section 2 related work) on DS10d.8c",
        columns=["algorithm", "NCD", "seconds", "ARI"],
        rows=[
            ["BUBBLE pipeline", metric_b.n_calls, t_bubble,
             adjusted_rand_index(ds.labels, res.labels)],
            ["CLARANS", metric_c.n_calls, t_clarans,
             adjusted_rand_index(ds.labels, clarans.labels_)],
        ],
        context={"scale": scale.name, "seed": seed},
    )


def run_ablation_indexes(scale: str | Scale = "laptop", seed: int = 13) -> TableResult:
    """A8: exact metric indexes vs the linear scan for clustroid lookup.

    Simulates the second-phase workload: K clustroids from a BUBBLE run,
    queried with a batch of objects. Reports distance calls per query and
    verifies all three methods return identical nearest neighbours.
    """
    from repro.index import CFTreeIndex, make_index

    scale = resolve_scale(scale)
    ds = make_cell_dataset(
        dim=10, n_clusters=20, n_points=max(scale.ablation_points // 2, 1_000), seed=103
    )
    fit_metric = EuclideanDistance()
    model = BUBBLE(
        fit_metric, branching_factor=8, sample_size=40, max_nodes=80, seed=seed
    ).fit(ds.as_objects())
    clustroids = model.clustroids_
    queries = ds.as_objects()[:200]

    rows = []
    reference: list[int] | None = None
    for name in ("linear scan", "m-tree", "vp-tree", "cf-tree"):
        metric = EuclideanDistance()
        start = time.perf_counter()
        if name == "linear scan":
            answers = [int(np.argmin(metric.one_to_many(q, clustroids))) for q in queries]
            build_calls = 0
        else:
            if name == "cf-tree":
                # Reuses the fitted tree's cached leaf geometry; only the
                # non-leaf anchor distances are counted at build time.
                index = CFTreeIndex.from_tree(model.tree_, metric=metric)
            else:
                backend = {"m-tree": "mtree", "vp-tree": "vptree"}[name]
                kwargs = (
                    {"node_capacity": 8} if backend == "mtree" else
                    {"leaf_size": 8, "seed": seed}
                )
                index = make_index(backend, metric, **kwargs)
                index.build(clustroids)
            build_calls = metric.n_calls
            answers = [index.nearest(q).neighbors[0].index for q in queries]
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = answers
        agreement = float(np.mean(np.asarray(answers) == np.asarray(reference)))
        rows.append(
            [name, len(clustroids), build_calls,
             (metric.n_calls - build_calls) / len(queries), elapsed, agreement]
        )
    return TableResult(
        experiment="Ablation A8",
        description=(
            "Exact nearest-clustroid lookup: linear scan vs metric indexes "
            "(build cost amortizes over the whole second phase)"
        ),
        columns=["method", "#clustroids", "build NCD", "NCD/query", "seconds", "agreement"],
        rows=rows,
        context={"scale": scale.name, "seed": seed, "n_queries": len(queries)},
    )
