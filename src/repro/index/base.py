"""The unified metric-index protocol: one query surface over every engine.

The repository grew three overlapping triangle-inequality engines — the
M-tree (:mod:`repro.mtree`), the VP-tree (:mod:`repro.vptree`), and the
AESA-style geometry caches routing the CF*-tree (:mod:`repro.core.routing`).
This module consolidates them behind one :class:`MetricIndex` protocol:

* ``build(objects)`` indexes a sequence of objects (position = index);
* ``nearest(obj, k)`` and ``within(obj, r)`` answer exact queries with a
  typed :class:`QueryResult` carrying the per-query NCD and pruning stats;
* a process of repeated queries shares a bounded :class:`QueryBoundCache`
  (Anchors-Hierarchy-style cached sufficient statistics: every exactly
  measured ``d(query, indexed[i])`` persists across queries, so a repeated
  or similar query starts from already-paid distances instead of zero).

Exactness contract
------------------
Every backend returns results **bit-identical to brute force**: neighbours
ordered by ``(distance, index)``, distances produced by the same counted
``one_to_many`` gathers a linear scan would issue, pruning only when a
lower bound *strictly* exceeds the current worst kept distance (ties are
always visited, so equal-distance neighbours resolve to the lowest index
on every backend). A per-query memo guarantees no indexed object is ever
measured twice, hence no query can cost more counted calls than the brute
scan it replaces.

Accounting
----------
Query traffic is charged to dedicated :class:`~repro.metrics.base.CallLedger`
sites — ``query-knn``, ``query-range``, and ``query-build`` for distances
paid while constructing an index — so the conservation law
``sum(by_site) == n_calls`` keeps holding with query serving in the mix.
Bound-cache hits cost nothing and are tracked separately
(:attr:`QueryResult.cache_hits`, :meth:`QueryBoundCache.as_dict`).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import OrderedDict
from collections.abc import Callable, Iterator, Sequence
from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import EmptyDatasetError, ParameterError
from repro.metrics.base import DistanceFunction, pop_site, push_site
from repro.metrics.cache import _default_key
from repro.utils.validation import check_integer

__all__ = [
    "QUERY_KNN_SITE",
    "QUERY_RANGE_SITE",
    "QUERY_BUILD_SITE",
    "Neighbor",
    "QueryResult",
    "QueryBoundCache",
    "QuerySession",
    "NeighborHeap",
    "IndexQueryStats",
    "MetricIndex",
    "register_backend",
    "register_lazy_backend",
    "available_backends",
    "make_index",
]

#: Ledger site charged by :meth:`MetricIndex.nearest`.
QUERY_KNN_SITE = "query-knn"
#: Ledger site charged by :meth:`MetricIndex.within`.
QUERY_RANGE_SITE = "query-range"
#: Ledger site charged by index construction (``build``/``from_tree``).
QUERY_BUILD_SITE = "query-build"


@dataclass(frozen=True)
class Neighbor:
    """One query answer: the indexed position, the object, its distance."""

    #: Position of the object in the indexed sequence (== brute-force index).
    index: int
    #: The indexed object itself.
    obj: Any
    #: Exact distance from the query to :attr:`obj`.
    distance: float


@dataclass(frozen=True)
class QueryResult:
    """Typed result of one ``nearest``/``within`` query.

    Neighbours are ordered by ``(distance, index)`` — the brute-force
    order — on every backend. The counters describe what this single
    query cost: ``n_calls`` is the true NCD delta on the metric,
    ``n_evaluated``/``n_pruned`` partition the candidate set, and
    ``cache_hits`` counts distances served free by the cross-query
    :class:`QueryBoundCache`.
    """

    #: ``"knn"`` or ``"range"``.
    kind: str
    #: The answers, ordered by ``(distance, index)``.
    neighbors: tuple[Neighbor, ...]
    #: Counted distance calls this query paid (the per-query NCD).
    n_calls: int
    #: Indexed objects the query could have measured (== len(index)).
    n_candidates: int
    #: Distinct indexed objects whose exact distance became known.
    n_evaluated: int
    #: Candidates never measured (pruned or never reached).
    n_pruned: int
    #: Triangle-inequality lower-bound evaluations performed.
    bound_checks: int
    #: Distances served by the cross-query bound cache at zero NCD.
    cache_hits: int

    @property
    def distances(self) -> list[float]:
        return [n.distance for n in self.neighbors]

    @property
    def indices(self) -> list[int]:
        return [n.index for n in self.neighbors]

    @property
    def objects(self) -> list[Any]:
        return [n.obj for n in self.neighbors]

    def __iter__(self) -> Iterator[Neighbor]:
        return iter(self.neighbors)

    def __len__(self) -> int:
        return len(self.neighbors)

    def as_dict(self) -> dict[str, Any]:
        """JSON-compatible record (neighbours as ``(index, distance)``)."""
        return {
            "kind": self.kind,
            "neighbors": [(n.index, n.distance) for n in self.neighbors],
            "n_calls": self.n_calls,
            "n_candidates": self.n_candidates,
            "n_evaluated": self.n_evaluated,
            "n_pruned": self.n_pruned,
            "bound_checks": self.bound_checks,
            "cache_hits": self.cache_hits,
        }


class QueryBoundCache:
    """Bounded LRU of exact query→indexed-object distances across queries.

    Keys are ``(query_key, index)`` pairs; values are the *exact* measured
    distances, so serving a hit changes nothing about a query's result —
    only its cost. A query object whose key is unhashable (e.g. a tuple
    holding an ndarray) simply bypasses the cache.
    """

    def __init__(
        self,
        maxsize: int | None = 200_000,
        key: Callable[[Any], Any] | None = None,
    ):
        if maxsize is not None and maxsize <= 0:
            raise ParameterError(f"maxsize must be positive or None, got {maxsize}")
        self.maxsize = maxsize
        self._key = key if key is not None else _default_key
        self._store: OrderedDict[tuple[Any, int], float] = OrderedDict()
        self.n_hits = 0
        self.n_misses = 0
        self.n_evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def key_for(self, obj: Any) -> Any:
        """Hashable cache key for a query object, or ``None`` if unkeyable."""
        k = self._key(obj)
        try:
            hash(k)
        except TypeError:
            return None
        return k

    def get(self, query_key: Any, index: int) -> float | None:
        """The cached exact distance, or ``None`` (counted as hit/miss)."""
        value = self._store.get((query_key, index))
        if value is None:
            self.n_misses += 1
            return None
        self._store.move_to_end((query_key, index))
        self.n_hits += 1
        return value

    def put(self, query_key: Any, index: int, value: float) -> None:
        self._store[(query_key, index)] = value
        if self.maxsize is not None and len(self._store) > self.maxsize:
            self._store.popitem(last=False)
            self.n_evictions += 1

    @property
    def hit_rate(self) -> float:
        total = self.n_hits + self.n_misses
        return self.n_hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.n_hits,
            "misses": self.n_misses,
            "evictions": self.n_evictions,
            "size": len(self._store),
            "maxsize": self.maxsize,
            "hit_rate": round(self.hit_rate, 4),
        }


class QuerySession:
    """Per-query measurement state shared by every backend.

    Memoizes every exact distance by indexed position (so no object is
    measured twice within a query — the structural guarantee that query
    NCD never exceeds the brute scan) and consults the cross-query
    :class:`QueryBoundCache` before paying a counted call.
    """

    __slots__ = (
        "metric",
        "query",
        "objects",
        "memo",
        "bound_cache",
        "qkey",
        "cache_hits",
        "bound_checks",
    )

    def __init__(
        self,
        metric: DistanceFunction,
        query: Any,
        objects: Sequence[Any],
        bound_cache: QueryBoundCache | None,
    ):
        self.metric = metric
        self.query = query
        self.objects = objects
        self.memo: dict[int, float] = {}
        self.bound_cache = bound_cache
        self.qkey = bound_cache.key_for(query) if bound_cache is not None else None
        self.cache_hits = 0
        self.bound_checks = 0

    def known(self, index: int) -> float | None:
        """The already-measured distance to ``objects[index]``, if any."""
        return self.memo.get(index)

    def measure(self, index: int) -> float:
        """Exact ``d(query, objects[index])``; memo and bound-cache aware."""
        value = self.memo.get(index)
        if value is not None:
            return value
        if self.qkey is not None and self.bound_cache is not None:
            cached = self.bound_cache.get(self.qkey, index)
            if cached is not None:
                self.memo[index] = cached
                self.cache_hits += 1
                return cached
        value = float(self.metric.one_to_many(self.query, [self.objects[index]])[0])
        self.memo[index] = value
        if self.qkey is not None and self.bound_cache is not None:
            self.bound_cache.put(self.qkey, index, value)
        return value

    def measure_many(self, indices: Sequence[int]) -> np.ndarray:
        """Batched exact distances; unique misses pay one counted gather."""
        out = np.empty(len(indices), dtype=np.float64)
        missing: list[int] = []
        positions: list[int] = []
        for pos, index in enumerate(indices):
            value = self.memo.get(index)
            if value is not None:
                out[pos] = value
                continue
            if self.qkey is not None and self.bound_cache is not None:
                cached = self.bound_cache.get(self.qkey, index)
                if cached is not None:
                    self.memo[index] = cached
                    self.cache_hits += 1
                    out[pos] = cached
                    continue
            missing.append(index)
            positions.append(pos)
        if missing:
            values = self.metric.one_to_many(
                self.query, [self.objects[i] for i in missing]
            )
            for pos, index, value in zip(positions, missing, values):
                v = float(value)
                out[pos] = v
                self.memo[index] = v
                if self.qkey is not None and self.bound_cache is not None:
                    self.bound_cache.put(self.qkey, index, v)
        return out


class NeighborHeap:
    """Keep the ``k`` best ``(distance, index)`` pairs deterministically.

    The kept set — and therefore the pruning radius ``tau`` — is exactly
    what a brute-force sort by ``(distance, index)`` would keep, so ties
    at the boundary resolve to the lowest index on every backend.
    """

    __slots__ = ("k", "_heap", "_offered")

    def __init__(self, k: int):
        self.k = k
        # Max-heap via negation: heap[0] is the worst kept (d, index).
        self._heap: list[tuple[float, int]] = []
        self._offered: set[int] = set()

    def offer(self, index: int, value: float) -> None:
        """Consider one exact ``(distance, index)`` candidate (idempotent)."""
        if index in self._offered:
            return
        self._offered.add(index)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-value, -index))
            return
        worst_value, worst_index = -self._heap[0][0], -self._heap[0][1]
        if (value, index) < (worst_value, worst_index):
            heapq.heapreplace(self._heap, (-value, -index))

    @property
    def tau(self) -> float:
        """Current pruning radius: the worst kept distance (inf until full)."""
        return -self._heap[0][0] if len(self._heap) == self.k else float(np.inf)

    def items(self) -> list[tuple[float, int]]:
        """The kept pairs, ordered by ``(distance, index)``."""
        return sorted((-nv, -ni) for nv, ni in self._heap)


@dataclass
class IndexQueryStats:
    """Cumulative query counters of one :class:`MetricIndex` instance."""

    #: Queries answered (kNN + range).
    n_queries: int = 0
    #: kNN queries answered.
    n_knn: int = 0
    #: Range queries answered.
    n_range: int = 0
    #: Counted distance calls across all queries.
    query_calls: int = 0
    #: Counted distance calls paid building the index.
    build_calls: int = 0
    #: Candidates across all queries (``n_queries * len(index)``).
    candidates_total: int = 0
    #: Candidates measured exactly.
    candidates_evaluated: int = 0
    #: Candidates never measured.
    candidates_pruned: int = 0
    #: Lower-bound evaluations across all queries.
    bound_checks: int = 0
    #: Cross-query bound-cache hits across all queries.
    cache_hits: int = 0
    #: Per-query NCD of the most recent query.
    last_query_calls: int = 0
    #: Extra per-backend counters (e.g. geometry maintenance).
    extras: dict[str, int] = field(default_factory=dict)

    def record(self, result: QueryResult) -> None:
        self.n_queries += 1
        if result.kind == "knn":
            self.n_knn += 1
        else:
            self.n_range += 1
        self.query_calls += result.n_calls
        self.candidates_total += result.n_candidates
        self.candidates_evaluated += result.n_evaluated
        self.candidates_pruned += result.n_pruned
        self.bound_checks += result.bound_checks
        self.cache_hits += result.cache_hits
        self.last_query_calls = result.n_calls

    @property
    def mean_query_calls(self) -> float:
        return self.query_calls / self.n_queries if self.n_queries else 0.0

    def as_dict(self) -> dict[str, Any]:
        doc = asdict(self)
        doc["mean_query_calls"] = round(self.mean_query_calls, 3)
        return doc


class MetricIndex(ABC):
    """Protocol base: an exact similarity index over an arbitrary metric.

    Subclasses implement :meth:`build`, :meth:`_knn`, :meth:`_range`,
    :meth:`_check_ready`, ``__len__``, and the :attr:`objects` sequence;
    this base provides the public :meth:`nearest`/:meth:`within` wrappers
    that open the query ledger sites, run a :class:`QuerySession`, order
    the answers by ``(distance, index)``, and fold per-query counters
    into :attr:`stats`.
    """

    #: Registry name of the backend (``"mtree"``, ``"vptree"``, ...).
    backend: str = "?"

    def __init__(
        self,
        metric: DistanceFunction,
        bound_cache: QueryBoundCache | None = None,
    ):
        if not isinstance(metric, DistanceFunction):
            raise ParameterError("metric must be a DistanceFunction")
        self.metric = metric
        #: Cross-query distance cache; pass an explicit instance to share
        #: one cache between several indexes over the same objects.
        self.bound_cache = bound_cache if bound_cache is not None else QueryBoundCache()
        #: Cumulative query statistics.
        self.stats = IndexQueryStats()

    # ------------------------------------------------------------------
    # Protocol surface
    # ------------------------------------------------------------------
    @abstractmethod
    def build(self, objects: Sequence[Any]) -> "MetricIndex":
        """Index ``objects`` (position in the sequence == neighbour index)."""

    @property
    @abstractmethod
    def objects(self) -> Sequence[Any]:
        """The indexed objects, in index order."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of indexed objects."""

    @abstractmethod
    def _check_ready(self) -> None:
        """Raise the backend's not-fitted/empty error if queries can't run."""

    @abstractmethod
    def _knn(self, session: QuerySession, obj: Any, k: int) -> list[tuple[float, int]]:
        """Exact k-NN candidates as ``(distance, index)`` (order free)."""

    @abstractmethod
    def _range(
        self, session: QuerySession, obj: Any, radius: float
    ) -> list[tuple[float, int]]:
        """Exact within-radius candidates as ``(distance, index)``."""

    # ------------------------------------------------------------------
    # Public queries
    # ------------------------------------------------------------------
    def nearest(self, obj: Any, k: int = 1) -> QueryResult:
        """The ``k`` nearest indexed objects, ordered by ``(distance, index)``."""
        k = check_integer(k, "k", minimum=1)
        self._check_ready()
        session = QuerySession(self.metric, obj, self.objects, self.bound_cache)
        start_calls = self.metric.n_calls
        push_site(QUERY_KNN_SITE)
        try:
            pairs = self._knn(session, obj, min(k, len(self)))
        finally:
            pop_site()
        return self._finish("knn", session, pairs, start_calls)

    def within(self, obj: Any, radius: float) -> QueryResult:
        """All indexed objects within ``radius`` (inclusive), ordered."""
        if radius < 0:
            raise ParameterError(f"radius must be >= 0, got {radius}")
        self._check_ready()
        session = QuerySession(self.metric, obj, self.objects, self.bound_cache)
        start_calls = self.metric.n_calls
        push_site(QUERY_RANGE_SITE)
        try:
            pairs = self._range(session, obj, float(radius))
        finally:
            pop_site()
        return self._finish("range", session, pairs, start_calls)

    def _finish(
        self,
        kind: str,
        session: QuerySession,
        pairs: list[tuple[float, int]],
        start_calls: int,
    ) -> QueryResult:
        objects = self.objects
        neighbors = tuple(
            Neighbor(index=i, obj=objects[i], distance=value)
            for value, i in sorted(pairs)
        )
        n = len(self)
        result = QueryResult(
            kind=kind,
            neighbors=neighbors,
            n_calls=self.metric.n_calls - start_calls,
            n_candidates=n,
            n_evaluated=len(session.memo),
            n_pruned=n - len(session.memo),
            bound_checks=session.bound_checks,
            cache_hits=session.cache_hits,
        )
        self.stats.record(result)
        return result

    # ------------------------------------------------------------------
    # Shared helpers for subclasses
    # ------------------------------------------------------------------
    def _count_build(self, start_calls: int) -> None:
        """Fold the NCD paid since ``start_calls`` into build accounting."""
        self.stats.build_calls += self.metric.n_calls - start_calls

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(backend={self.backend!r}, size={len(self)})"


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
_BACKENDS: dict[str, type[MetricIndex]] = {}
#: Backends registered by dotted path, imported on first use. Keeps
#: ``repro.index`` importable from inside ``repro.mtree``/``repro.vptree``
#: (which subclass :class:`MetricIndex`) without a circular import.
_LAZY_BACKENDS: dict[str, tuple[str, str]] = {}


def register_backend(name: str, cls: type[MetricIndex]) -> None:
    """Register a :class:`MetricIndex` implementation under ``name``."""
    if not issubclass(cls, MetricIndex):
        raise ParameterError(f"{cls!r} does not implement MetricIndex")
    _BACKENDS[name] = cls
    _LAZY_BACKENDS.pop(name, None)


def register_lazy_backend(name: str, module: str, attr: str) -> None:
    """Register a backend by dotted path, resolved on first use."""
    _LAZY_BACKENDS[name] = (module, attr)


def _resolve_backend(name: str) -> type[MetricIndex]:
    cls = _BACKENDS.get(name)
    if cls is not None:
        return cls
    lazy = _LAZY_BACKENDS.get(name)
    if lazy is not None:
        import importlib

        module, attr = lazy
        cls = getattr(importlib.import_module(module), attr)
        register_backend(name, cls)
        return cls
    raise ParameterError(
        f"unknown index backend {name!r}; have {available_backends()}"
    )


def available_backends() -> tuple[str, ...]:
    """Registered backend names (eager and lazy), sorted."""
    return tuple(sorted(set(_BACKENDS) | set(_LAZY_BACKENDS)))


def make_index(backend: str, metric: DistanceFunction, **kwargs: Any) -> MetricIndex:
    """Construct a registered backend (``build`` it yourself afterwards)."""
    return _resolve_backend(backend)(metric, **kwargs)


def brute_force_reference(
    metric: DistanceFunction, objects: Sequence[Any], query: Any, k: int
) -> list[tuple[float, int]]:
    """Uncached exact k-NN reference: one full counted gather, then sort.

    Used by tests and benchmarks to pin backend results bit-identically.
    """
    if not objects:
        raise EmptyDatasetError("brute_force_reference over no objects")
    push_site(QUERY_KNN_SITE)
    try:
        row = metric.one_to_many(query, list(objects))
    finally:
        pop_site()
    order = sorted((float(value), i) for i, value in enumerate(row))
    return order[: min(k, len(order))]
