"""Unified metric-index layer (ROADMAP item 2).

One protocol — :class:`MetricIndex` — over every triangle-inequality
engine in the repository:

========  ==============================================================
backend   engine
========  ==============================================================
brute     linear scan (the control group every backend is pinned to)
mtree     :class:`repro.mtree.MTree` (dynamic, insert-friendly)
vptree    :class:`repro.vptree.VPTree` (static median partitioning)
cftree    :class:`CFTreeIndex` — the clustroid hierarchy of a fitted
          BUBBLE/BUBBLE-FM tree, reusing the build's cached pairwise
          geometry as query-time bounds
========  ==============================================================

All backends answer ``nearest(obj, k)`` / ``within(obj, r)`` with exact,
bit-identical results (ordered by ``(distance, index)``), report the
per-query NCD in a typed :class:`QueryResult`, charge query traffic to
dedicated :class:`~repro.metrics.base.CallLedger` sites, and share exact
distances across successive queries through a bounded
:class:`QueryBoundCache`.
"""

from repro.index.base import (
    QUERY_BUILD_SITE,
    QUERY_KNN_SITE,
    QUERY_RANGE_SITE,
    IndexQueryStats,
    MetricIndex,
    Neighbor,
    NeighborHeap,
    QueryBoundCache,
    QueryResult,
    QuerySession,
    available_backends,
    brute_force_reference,
    make_index,
    register_backend,
    register_lazy_backend,
)
from repro.index.brute import BruteForceIndex
from repro.index.cftree import CFTreeIndex

__all__ = [
    "QUERY_KNN_SITE",
    "QUERY_RANGE_SITE",
    "QUERY_BUILD_SITE",
    "Neighbor",
    "NeighborHeap",
    "QueryResult",
    "QueryBoundCache",
    "QuerySession",
    "IndexQueryStats",
    "MetricIndex",
    "BruteForceIndex",
    "CFTreeIndex",
    "register_backend",
    "register_lazy_backend",
    "available_backends",
    "make_index",
    "brute_force_reference",
]

register_backend("brute", BruteForceIndex)
register_backend("cftree", CFTreeIndex)
# The tree backends subclass MetricIndex and import repro.index.base
# themselves; resolve them lazily to keep the import graph acyclic.
register_lazy_backend("mtree", "repro.mtree.mtree", "MTree")
register_lazy_backend("vptree", "repro.vptree.vptree", "VPTree")
