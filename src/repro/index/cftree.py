"""``cftree`` backend: query the clustroid hierarchy of a built CF*-tree.

An already-fitted BUBBLE/BUBBLE-FM tree is itself a metric index: every
leaf keeps a :class:`~repro.core.routing.LeafGeometry` pairwise matrix
``d(clustroid_i, clustroid_j)`` that the pruned routing engine paid for
during the build. This backend turns those cached build-time distances
into query-time bounds (the Cascading-Metric-Tree recipe over the Anchors
Hierarchy idea of cached sufficient statistics):

* each leaf becomes an *anchor ball* centred on its first clustroid with
  covering radius ``max_j d(c_0, c_j)`` read from the cached matrix;
* each non-leaf node becomes an anchor ball around its first child's
  anchor, with child anchor distances measured once at index-build time
  (the only counted calls :meth:`CFTreeIndex.from_tree` issues);
* a k-NN query descends best-first by ball lower bound, and inside a
  leaf runs the AESA refinement loop seeded by the anchor distance —
  every exactly measured clustroid tightens the lower bounds of its
  unmeasured siblings through the cached matrix, and the scan stops as
  soon as the smallest open bound strictly exceeds the current ``tau``.

Results are exact and bit-identical to brute force (ties resolve to the
lowest index; pruning requires a *strictly* larger lower bound), and the
indexed objects are the tree's leaf clustroids in
:meth:`~repro.core.cftree.CFTree.leaves` order — the same order as
``PreClusterer.clustroids_``.

The index snapshots the tree shape it was built over; querying after the
tree inserted objects or rebuilt raises
:class:`~repro.exceptions.StaleIndexError` instead of silently answering
from stale geometry.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.core.routing import PruningStats, ensure_leaf_geometry
from repro.exceptions import EmptyDatasetError, NotFittedError, StaleIndexError
from repro.index.base import (
    QUERY_BUILD_SITE,
    MetricIndex,
    NeighborHeap,
    QueryBoundCache,
    QuerySession,
)
from repro.metrics.base import DistanceFunction, pop_site, push_site

__all__ = ["CFTreeIndex"]


class _AnchorNode:
    """One ball of the anchor hierarchy mirrored off the CF*-tree.

    A leaf wrapper keeps the leaf's cached pairwise matrix (``pair``) and
    the global offset of its first clustroid; an internal wrapper keeps
    its children plus the anchor-to-child-anchor distances measured at
    index-build time. ``anchor`` is always a global clustroid index, and
    an internal node shares its anchor with its first child, so one
    measured distance serves every level it anchors.
    """

    __slots__ = ("anchor", "radius", "children", "child_dists", "offset", "pair", "size")

    def __init__(self) -> None:
        self.anchor = 0
        self.radius = 0.0
        self.children: list["_AnchorNode"] | None = None
        self.child_dists: np.ndarray | None = None
        self.offset = 0
        self.pair: np.ndarray | None = None
        self.size = 0


class CFTreeIndex(MetricIndex):
    """Exact :class:`~repro.index.base.MetricIndex` over CF*-tree clustroids.

    Build it from a fitted tree (:meth:`from_tree`, the cheap path that
    reuses the build's cached geometry) or from raw objects
    (:meth:`build`, which fits an internal :class:`~repro.core.BUBBLE`
    with ``threshold=0`` so every distinct object becomes its own
    clustroid).
    """

    backend = "cftree"

    def __init__(
        self,
        metric: DistanceFunction,
        bound_cache: QueryBoundCache | None = None,
    ):
        super().__init__(metric, bound_cache=bound_cache)
        self._objects: list[Any] = []
        self._root: _AnchorNode | None = None
        self._tree: Any = None
        self._fingerprint: tuple[int, int, int, int] | None = None
        #: Geometry-maintenance counters of the index build (NCD-neutral
        #: work re-measuring stale leaf rows; zero when the tree was built
        #: with pruning enabled and its caches are fresh).
        self.build_stats = PruningStats()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_tree(
        cls,
        tree: Any,
        metric: DistanceFunction | None = None,
        bound_cache: QueryBoundCache | None = None,
    ) -> "CFTreeIndex":
        """Index the leaf clustroids of a fitted CF*-tree.

        ``metric`` defaults to the tree policy's metric. The only counted
        calls are the anchor-to-child-anchor distances of non-leaf nodes
        (charged to the ``query-build`` site); leaf geometry comes from
        the build's cached pairwise matrices.
        """
        resolved: Any = (
            metric
            if metric is not None
            else getattr(getattr(tree, "policy", None), "metric", None)
        )
        index = cls(resolved, bound_cache=bound_cache)
        index._adopt(tree)
        return index

    def build(self, objects: Sequence[Any]) -> "CFTreeIndex":
        """Fit an internal BUBBLE tree over ``objects`` and index it.

        With ``threshold=0`` and no node budget every *distinct* object
        becomes its own clustroid; duplicates collapse into one indexed
        entry, and the indexed order is the tree's leaf order, not the
        input order (read it back from :attr:`objects`).
        """
        objects = list(objects)
        if not objects:
            raise EmptyDatasetError("cannot index an empty object sequence")
        from repro.core.preclusterer import BUBBLE

        model = BUBBLE(
            self.metric,
            threshold=0.0,
            max_nodes=None,
            sample_size=min(75, len(objects)),
            seed=0,
        ).fit(objects)
        self._adopt(model.tree_)
        return self

    def _adopt(self, tree: Any) -> None:
        if tree is None or tree.n_clusters == 0:
            raise EmptyDatasetError("cannot index an empty CF*-tree")
        self._objects = []
        start_calls = self.metric.n_calls
        push_site(QUERY_BUILD_SITE)
        try:
            self._root = self._wrap(tree.root)
        finally:
            pop_site()
        self._count_build(start_calls)
        self._tree = tree
        self._fingerprint = self._tree_fingerprint(tree)
        self.stats.extras["maintenance_evals"] = self.build_stats.maintenance_evals
        self.stats.extras["geometry_builds"] = self.build_stats.geometry_builds

    def _wrap(self, node: Any) -> _AnchorNode:
        out = _AnchorNode()
        if node.is_leaf:
            geom, clustroids = ensure_leaf_geometry(
                self.metric, node, self.build_stats
            )
            out.offset = len(self._objects)
            self._objects.extend(clustroids)
            out.size = len(clustroids)
            out.pair = geom.pair
            out.anchor = out.offset
            out.radius = float(geom.pair[0].max()) if out.size else 0.0
            return out
        children = [self._wrap(entry.child) for entry in node.entries]
        anchor_obj = self._objects[children[0].anchor]
        child_dists = np.zeros(len(children), dtype=np.float64)
        if len(children) > 1:
            # The only counted index-build calls: anchor → child anchors
            # (the first child shares this node's anchor, distance 0).
            child_dists[1:] = self.metric.one_to_many(
                anchor_obj, [self._objects[c.anchor] for c in children[1:]]
            )
        out.children = children
        out.child_dists = child_dists
        out.anchor = children[0].anchor
        out.size = sum(c.size for c in children)
        out.radius = float(
            max(d + c.radius for d, c in zip(child_dists, children))
        )
        return out

    @staticmethod
    def _tree_fingerprint(tree: Any) -> tuple[int, int, int, int]:
        return (tree.n_objects, tree.n_rebuilds, tree.n_nodes, tree.n_clusters)

    # ------------------------------------------------------------------
    # MetricIndex protocol
    # ------------------------------------------------------------------
    @property
    def objects(self) -> Sequence[Any]:
        return self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def _check_ready(self) -> None:
        if self._root is None:
            raise NotFittedError("CFTreeIndex queried before from_tree/build")
        if (
            self._tree is not None
            and self._tree_fingerprint(self._tree) != self._fingerprint
        ):
            raise StaleIndexError(
                "the CF*-tree changed since this index was built "
                f"(was {self._fingerprint}, now "
                f"{self._tree_fingerprint(self._tree)}); rebuild with "
                "CFTreeIndex.from_tree"
            )

    def _scan_leaf(
        self,
        session: QuerySession,
        node: _AnchorNode,
        d_anchor: float,
        tau: Callable[[], float],
        offer: Callable[[int, float], None],
    ) -> None:
        """AESA refinement over one leaf, seeded by the anchor distance.

        Measures candidates best-first by cached-matrix lower bound; every
        measurement tightens the remaining bounds; stops when the smallest
        open bound strictly exceeds ``tau()`` (ties are always measured,
        preserving bit-identical results).
        """
        n = node.size
        pair = node.pair
        assert pair is not None
        lb = np.abs(pair[0] - d_anchor)
        known = np.zeros(n, dtype=bool)
        known[0] = True
        offer(node.offset, d_anchor)
        while not known.all():
            open_lb = np.where(known, np.inf, lb)
            i = int(np.argmin(open_lb))
            session.bound_checks += int(n - known.sum())
            if open_lb[i] > tau():
                break
            d = session.measure(node.offset + i)
            known[i] = True
            np.maximum(lb, np.abs(pair[i] - d), out=lb)
            offer(node.offset + i, d)

    def _knn(
        self, session: QuerySession, obj: Any, k: int
    ) -> list[tuple[float, int]]:
        heap = NeighborHeap(k)
        counter = itertools.count()  # tie-breaker: nodes are not orderable
        assert self._root is not None
        frontier: list[tuple[float, int, _AnchorNode]] = [
            (0.0, next(counter), self._root)
        ]
        while frontier:
            lower, _, node = heapq.heappop(frontier)
            session.bound_checks += 1
            if lower > heap.tau:
                break
            d_anchor = session.measure(node.anchor)
            if node.children is None:
                self._scan_leaf(
                    session, node, d_anchor, lambda: heap.tau, heap.offer
                )
                continue
            heap.offer(node.anchor, d_anchor)
            assert node.child_dists is not None
            for child, dc in zip(node.children, node.child_dists):
                bound = max(abs(d_anchor - float(dc)) - child.radius, lower, 0.0)
                session.bound_checks += 1
                if bound <= heap.tau:
                    heapq.heappush(frontier, (bound, next(counter), child))
        return heap.items()

    def _range(
        self, session: QuerySession, obj: Any, radius: float
    ) -> list[tuple[float, int]]:
        hits: dict[int, float] = {}

        def collect(index: int, value: float) -> None:
            if value <= radius:
                hits[index] = value

        assert self._root is not None
        stack: list[tuple[float, _AnchorNode]] = [(0.0, self._root)]
        while stack:
            lower, node = stack.pop()
            d_anchor = session.measure(node.anchor)
            collect(node.anchor, d_anchor)
            if node.children is None:
                self._scan_leaf(session, node, d_anchor, lambda: radius, collect)
                continue
            assert node.child_dists is not None
            for child, dc in zip(node.children, node.child_dists):
                bound = max(abs(d_anchor - float(dc)) - child.radius, lower, 0.0)
                session.bound_checks += 1
                if bound <= radius:
                    stack.append((bound, child))
        return [(value, i) for i, value in hits.items()]
