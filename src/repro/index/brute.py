"""Brute-force reference backend: one counted gather, zero pruning.

This is the control group every other backend is pinned against — results
must be bit-identical, and counted calls per query must never exceed this
backend's cost (one ``one_to_many`` over the whole indexed sequence, minus
whatever the cross-query bound cache already knows).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.exceptions import EmptyDatasetError
from repro.index.base import (
    MetricIndex,
    QueryBoundCache,
    QuerySession,
)
from repro.metrics.base import DistanceFunction

__all__ = ["BruteForceIndex"]


class BruteForceIndex(MetricIndex):
    """Linear-scan :class:`~repro.index.base.MetricIndex` backend."""

    backend = "brute"

    def __init__(
        self,
        metric: DistanceFunction,
        bound_cache: QueryBoundCache | None = None,
    ):
        super().__init__(metric, bound_cache=bound_cache)
        self._objects: list[Any] = []

    def build(self, objects: Sequence[Any]) -> "BruteForceIndex":
        if len(objects) == 0:
            raise EmptyDatasetError("cannot index an empty object sequence")
        self._objects = list(objects)
        return self

    @property
    def objects(self) -> Sequence[Any]:
        return self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def _check_ready(self) -> None:
        if not self._objects:
            raise EmptyDatasetError("index is empty; call build() first")

    def _scan(self, session: QuerySession) -> list[tuple[float, int]]:
        row = session.measure_many(range(len(self._objects)))
        return [(float(value), i) for i, value in enumerate(row)]

    def _knn(self, session: QuerySession, obj: Any, k: int) -> list[tuple[float, int]]:
        return sorted(self._scan(session))[:k]

    def _range(
        self, session: QuerySession, obj: Any, radius: float
    ) -> list[tuple[float, int]]:
        return [(value, i) for value, i in self._scan(session) if value <= radius]
