"""BIRCH as a BIRCH* instantiation.

Non-leaf summaries are the exact CF sums of their subtrees. Two framework
hooks keep them exact without extra passes:

* ``on_descend`` adds the inserted object/cluster to the chosen entry's
  summary as the insertion walks down;
* ``refresh_node`` recomputes summaries bottom-up after splits (CF
  additivity makes this exact and cheap).

Distances between an object and an entry, and between entries, are centroid
distances — the vector operations a distance space lacks.
"""

from __future__ import annotations

import numpy as np

from repro.birch.cf import VectorClusterFeature
from repro.core.nodes import LeafNode, NonLeafNode
from repro.core.policy import BirchStarPolicy
from repro.metrics.vector import EuclideanDistance, as_matrix

__all__ = ["BirchVectorPolicy"]


class BirchVectorPolicy(BirchStarPolicy):
    """Framework components of vector-space BIRCH."""

    def __init__(self) -> None:
        # BIRCH computes centroid distances with vector arithmetic; we still
        # route them through a metric object so callers can read a call
        # count comparable to NCD if they want to.
        self.metric = EuclideanDistance()

    # ------------------------------------------------------------------
    # Leaf level
    # ------------------------------------------------------------------
    def new_leaf_feature(self, obj) -> VectorClusterFeature:
        return VectorClusterFeature(obj)

    def leaf_distances(self, node: LeafNode, obj) -> np.ndarray:
        centroids = [f.centroid for f in node.entries]
        return self.metric.one_to_many(obj, centroids)

    def leaf_entry_distance(self, a, b) -> float:
        return self.metric.distance(a.centroid, b.centroid)

    def leaf_entry_matrix(self, entries) -> np.ndarray:
        return self.metric.pairwise([f.centroid for f in entries])

    # ------------------------------------------------------------------
    # Non-leaf level
    # ------------------------------------------------------------------
    def nonleaf_distances(self, node: NonLeafNode, obj) -> np.ndarray:
        centroids = [entry.summary.centroid for entry in node.entries]
        return self.metric.one_to_many(obj, centroids)

    def nonleaf_entry_distances(self, node: NonLeafNode) -> np.ndarray:
        centroids = as_matrix([entry.summary.centroid for entry in node.entries])
        return self.metric.pairwise(centroids)

    def refresh_node(self, node: NonLeafNode) -> None:
        for entry in node.entries:
            entry.summary = self._subtree_cf(entry.child)

    def on_descend(self, node: NonLeafNode, entry_index: int, obj, feature) -> None:
        summary = node.entries[entry_index].summary
        if feature is None:
            summary.absorb(obj)
        else:
            summary.merge(feature)

    # ------------------------------------------------------------------
    @staticmethod
    def _subtree_cf(child) -> VectorClusterFeature:
        """Exact CF of everything below ``child`` (CF additivity)."""
        if child.is_leaf:
            features = child.entries
        else:
            features = [entry.summary for entry in child.entries]
        total = features[0].copy()
        for f in features[1:]:
            total.merge(f)
        return total
