"""Vector-space BIRCH (Zhang, Ramakrishnan & Livny, SIGMOD 1996).

The paper abstracts BIRCH into the BIRCH* framework; this package closes the
loop by *re-instantiating* BIRCH from that same framework: the classic
additive cluster feature ``CF = (N, LS, SS)`` becomes the leaf feature, and
non-leaf summaries are exact sums of their subtrees' CFs (kept exact through
the framework's ``on_descend`` hook).

BIRCH only works on coordinate-space data. In this reproduction it serves
as the clustering stage of the **Map-First** baseline (Section 6.2) and
produces the Figure 3 centroids.
"""

from repro.birch.birch import BIRCH
from repro.birch.cf import VectorClusterFeature
from repro.birch.policy import BirchVectorPolicy

__all__ = ["BIRCH", "VectorClusterFeature", "BirchVectorPolicy"]
