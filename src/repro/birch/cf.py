"""The classic BIRCH cluster feature ``CF = (N, LS, SS)``.

``N`` is the number of points, ``LS`` their vector sum and ``SS`` the sum of
squared norms. CFs are additive — merging two clusters adds the triples —
which is exactly the vector-space shortcut unavailable in distance spaces
that motivated BUBBLE.
"""

from __future__ import annotations

import numpy as np

from repro.core.features import ClusterFeature
from repro.exceptions import ParameterError

__all__ = ["VectorClusterFeature"]


class VectorClusterFeature(ClusterFeature):
    """Additive vector CF with centroid/radius derived in O(dim).

    The threshold requirement follows BIRCH: an insertion is admitted only
    if the cluster's *radius after the insertion* stays within ``T``
    (computable from CF algebra alone, no distance calls).
    """

    __slots__ = ("n", "ls", "ss")

    def __init__(self, obj=None, n: int = 0, ls: np.ndarray | None = None, ss: float = 0.0):
        if obj is not None:
            vec = np.asarray(obj, dtype=np.float64)
            self.n = 1
            self.ls = vec.copy()
            self.ss = float(np.dot(vec, vec))
        else:
            if ls is None or n <= 0:
                raise ParameterError("either obj or (n, ls, ss) must be provided")
            self.n = int(n)
            self.ls = np.asarray(ls, dtype=np.float64).copy()
            self.ss = float(ss)

    # ------------------------------------------------------------------
    @property
    def centroid(self) -> np.ndarray:
        return self.ls / self.n

    @property
    def clustroid(self) -> np.ndarray:
        """Alias so the framework's routing/reporting code works unchanged.

        BIRCH's cluster center is the true centroid — generally not a member
        object, which is precisely what a distance space cannot offer.
        """
        return self.centroid

    @property
    def radius(self) -> float:
        c = self.ls / self.n
        r2 = self.ss / self.n - float(np.dot(c, c))  # reprolint: disable=RPL105 -- BETULA: radius via ss/n - |c|^2 cancels; replace with stable CF* form
        return float(np.sqrt(max(r2, 0.0)))

    @property
    def representatives(self) -> list:
        return [self.centroid]

    # ------------------------------------------------------------------
    def absorb(self, obj, dist_to_clustroid: float | None = None) -> None:
        vec = np.asarray(obj, dtype=np.float64)
        self.n += 1
        self.ls += vec
        self.ss += float(np.dot(vec, vec))  # reprolint: disable=RPL105 -- BETULA: scalar ss accumulation drifts at large n

    def merge(self, other: "VectorClusterFeature") -> None:
        self.n += other.n
        self.ls += other.ls
        self.ss += other.ss  # reprolint: disable=RPL105 -- BETULA: scalar ss accumulation drifts at large n

    def distance_to(self, other: "VectorClusterFeature") -> float:
        return float(np.linalg.norm(self.centroid - other.centroid))

    # ------------------------------------------------------------------
    def admits(self, obj, dist: float, threshold: float) -> bool:
        vec = np.asarray(obj, dtype=np.float64)
        return self._radius_after(1, vec, float(np.dot(vec, vec))) <= threshold

    def admits_feature(self, other: "VectorClusterFeature", dist: float, threshold: float) -> bool:
        return self._radius_after(other.n, other.ls, other.ss) <= threshold

    def _radius_after(self, dn: int, dls: np.ndarray, dss: float) -> float:
        n = self.n + dn
        ls = self.ls + dls
        r2 = (self.ss + dss) / n - float(np.dot(ls, ls)) / (n * n)  # reprolint: disable=RPL105 -- BETULA: merge-radius difference of squares cancels
        return float(np.sqrt(max(r2, 0.0)))

    def copy(self) -> "VectorClusterFeature":
        return VectorClusterFeature(n=self.n, ls=self.ls, ss=self.ss)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VectorClusterFeature(n={self.n}, radius={self.radius:.4g})"
