"""The classic BIRCH cluster feature, stored in BETULA's stable form.

BIRCH's paper CF is the additive triple ``(N, LS, SS)`` — point count,
vector sum, and sum of squared norms. The triple is algebraically
sufficient but numerically treacherous: every derived quantity is a
difference of squared magnitudes (``radius² = SS/N − |LS/N|²``) that
cancels catastrophically once clusters are far from the origin relative to
their spread. BETULA (Lang & Schubert, PAPERS.md) replaces the triple with
``(N, mean, SSE)`` — the running mean and the *sum of squared deviations
from the mean* — updated with Welford's recurrence per point and Chan's
parallel rule per merge, so ``radius² = SSE/N`` needs no subtraction at
all.

This module stores the BETULA form internally while keeping the paper
triple available as derived ``ls``/``ss`` properties for reporting and
tests. The SSE itself accumulates through a Neumaier compensated
accumulator (:mod:`repro.utils.numerics`), so drift stays ``O(eps)``
relative over arbitrarily long insertion streams.
"""

from __future__ import annotations

import numpy as np

from repro.core.features import ClusterFeature
from repro.exceptions import ParameterError
from repro.utils.numerics import CompensatedAccumulator

__all__ = ["VectorClusterFeature"]


class VectorClusterFeature(ClusterFeature):
    """Vector CF in BETULA ``(N, mean, SSE)`` form; centroid/radius in O(dim).

    The threshold requirement follows BIRCH: an insertion is admitted only
    if the cluster's *radius after the insertion* stays within ``T``
    (computable from CF algebra alone, no distance calls — Chan's merge
    rule evaluated without mutation).
    """

    __slots__ = ("n", "mean", "_sse")

    def __init__(self, obj=None, n: int = 0, ls: np.ndarray | None = None, ss: float = 0.0):
        if obj is not None:
            vec = np.asarray(obj, dtype=np.float64)
            self.n = 1
            self.mean = vec.copy()
            self._sse = CompensatedAccumulator()
        else:
            if ls is None or n <= 0:
                raise ParameterError("either obj or (n, ls, ss) must be provided")
            self.n = int(n)
            self.mean = np.asarray(ls, dtype=np.float64) / self.n
            # One-time conversion at the legacy (N, LS, SS) API boundary:
            # SSE = SS − N·|mean|² is the only way to recover the deviation
            # sum from the paper triple. Everything downstream stays in the
            # stable form, so the cancellation risk is confined to callers
            # that insist on constructing from (n, ls, ss).
            sse = float(ss) - self.n * float(np.dot(self.mean, self.mean))
            self._sse = CompensatedAccumulator(max(sse, 0.0))

    # ------------------------------------------------------------------
    @property
    def centroid(self) -> np.ndarray:
        return self.mean.copy()

    @property
    def clustroid(self) -> np.ndarray:
        """Alias so the framework's routing/reporting code works unchanged.

        BIRCH's cluster center is the true centroid — generally not a member
        object, which is precisely what a distance space cannot offer.
        """
        return self.centroid

    @property
    def radius(self) -> float:
        # BETULA form: radius² = SSE/N directly — no |centroid|² subtraction.
        return float(np.sqrt(max(self._sse.value, 0.0) / self.n))

    @property
    def sse(self) -> float:
        """Sum of squared deviations from the mean (BETULA's stable state)."""
        return max(self._sse.value, 0.0)

    @property
    def ls(self) -> np.ndarray:
        """The paper triple's ``LS`` (vector sum), derived for reporting."""
        return self.mean * self.n

    @property
    def ss(self) -> float:
        """The paper triple's ``SS`` (sum of squared norms), derived."""
        return self.sse + self.n * float(np.dot(self.mean, self.mean))

    @property
    def representatives(self) -> list:
        return [self.centroid]

    # ------------------------------------------------------------------
    def absorb(self, obj, dist_to_clustroid: float | None = None) -> None:
        # Welford: mean and SSE update without ever forming |LS|² or SS.
        vec = np.asarray(obj, dtype=np.float64)
        delta = vec - self.mean
        self.n += 1
        self.mean = self.mean + delta / self.n
        self._sse.add(float(np.dot(delta, vec - self.mean)))

    def merge(self, other: "VectorClusterFeature") -> None:
        # Chan's parallel rule: SSE = SSE₁ + SSE₂ + n₁n₂/n · |mean₂ − mean₁|².
        n = self.n + other.n
        diff = other.mean - self.mean
        self._sse.merge(other._sse)
        self._sse.add(self.n * other.n / n * float(np.dot(diff, diff)))
        self.mean = self.mean + (other.n / n) * diff
        self.n = n

    def distance_to(self, other: "VectorClusterFeature") -> float:
        return float(np.linalg.norm(self.mean - other.mean))

    # ------------------------------------------------------------------
    def admits(self, obj, dist: float, threshold: float) -> bool:
        vec = np.asarray(obj, dtype=np.float64)
        return self._radius_after(1, vec, 0.0) <= threshold

    def admits_feature(self, other: "VectorClusterFeature", dist: float, threshold: float) -> bool:
        return self._radius_after(other.n, other.mean, other.sse) <= threshold

    def _radius_after(self, dn: int, dmean: np.ndarray, dsse: float) -> float:
        """Radius of the would-be merge of ``(dn, dmean, dsse)`` into this CF,
        via Chan's rule — evaluated without mutating either side."""
        n = self.n + dn
        diff = np.asarray(dmean, dtype=np.float64) - self.mean
        sse_new = self._sse.value + dsse + self.n * dn / n * float(np.dot(diff, diff))
        return float(np.sqrt(max(sse_new, 0.0) / n))

    def copy(self) -> "VectorClusterFeature":
        dup = VectorClusterFeature.__new__(VectorClusterFeature)
        dup.n = self.n
        dup.mean = self.mean.copy()
        dup._sse = self._sse.copy()
        return dup

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VectorClusterFeature(n={self.n}, radius={self.radius:.4g})"
