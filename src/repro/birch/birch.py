"""User-facing BIRCH driver (vector data only)."""

from __future__ import annotations

import numpy as np

from repro.birch.policy import BirchVectorPolicy
from repro.core.preclusterer import PreClusterer

__all__ = ["BIRCH"]


class BIRCH(PreClusterer):
    """Single-scan BIRCH pre-clustering of n-dimensional vectors.

    Shares the estimator API of :class:`~repro.core.preclusterer.BUBBLE`,
    but note the semantic differences inherited from the original BIRCH:

    * cluster centers are **centroids** (synthetic points), not clustroids;
    * the threshold requirement bounds the cluster *radius after insertion*
      rather than the center distance.

    ``sample_size`` and ``representation_number`` are accepted for API
    symmetry but ignored — vector CFs need neither.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.birch import BIRCH
    >>> data = list(np.random.default_rng(0).normal(size=(300, 2)))
    >>> model = BIRCH(max_nodes=20, seed=0).fit(data)
    >>> model.n_subclusters_ >= 1
    True
    """

    def __init__(
        self,
        branching_factor: int = 15,
        max_nodes: int | None = None,
        threshold: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__(
            metric=BirchVectorPolicy().metric,
            branching_factor=branching_factor,
            max_nodes=max_nodes,
            threshold=threshold,
            seed=seed,
        )

    def _make_policy(self) -> BirchVectorPolicy:
        policy = BirchVectorPolicy()
        # Share one counter between driver and policy for NCD-style reports.
        policy.metric = self.metric
        return policy

    @property
    def centroids_(self) -> np.ndarray:
        """Centroid of each sub-cluster as a ``(k, dim)`` array."""
        return np.vstack([f.centroid for f in self._require_tree().leaf_features()])
