"""Refinement phase (BIRCH Phase 4) for distance and coordinate spaces.

BIRCH optionally ends with a refinement pass: re-assign every object to its
closest final center, recompute the centers from the assignments, and
repeat. It repairs the small inaccuracies pre-clustering introduces (objects
absorbed by the "wrong" nearby cluster early in the scan).

In a coordinate space the recomputed center is the centroid. In a distance
space it must be a member object; recomputing the exact clustroid of a large
cluster costs O(n^2) distance calls, so we recompute it from a bounded
random sample of members — the same "sampled medoid" compromise BUBBLE's
own CF* maintenance embodies.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ParameterError
from repro.metrics.base import DistanceFunction
from repro.pipelines.labeling import nearest_assignment
from repro.utils.rng import ensure_rng
from repro.utils.sampling import sample_without_replacement

__all__ = ["refine_labels"]


def refine_labels(
    objects: Sequence,
    metric: DistanceFunction,
    centers: Sequence,
    labels: np.ndarray | None = None,
    iterations: int = 2,
    center_method: str = "auto",
    medoid_sample: int = 64,
    seed=None,
) -> tuple[np.ndarray, list]:
    """Iteratively re-assign objects and re-derive centers.

    Parameters
    ----------
    objects, metric:
        The dataset and its distance function.
    centers:
        Initial cluster centers (from the global phase).
    labels:
        Optional current labels; computed from ``centers`` if omitted.
    iterations:
        Refinement rounds. Each round costs one labeling scan
        (``N * K`` calls) plus the center recomputation.
    center_method:
        ``"centroid"`` (vector mean), ``"medoid"`` (sampled clustroid), or
        ``"auto"`` (centroid when centers are numeric vectors).
    medoid_sample:
        Members sampled per cluster when recomputing a medoid.

    Returns
    -------
    ``(labels, centers)`` after the final round. Empty clusters keep their
    previous center.
    """
    if iterations < 1:
        raise ParameterError(f"iterations must be >= 1, got {iterations}")
    if center_method not in ("auto", "centroid", "medoid"):
        raise ParameterError(f"unknown center_method {center_method!r}")
    if len(centers) == 0:
        raise ParameterError("refine_labels requires at least one center")
    rng = ensure_rng(seed)
    objects = list(objects)
    centers = list(centers)
    if center_method == "auto":
        center_method = "centroid" if _is_vector(centers[0]) else "medoid"

    if labels is None:
        labels = nearest_assignment(metric, objects, centers)
    labels = np.asarray(labels, dtype=np.intp)

    for _ in range(iterations):
        new_centers = []
        for cluster in range(len(centers)):
            members = [objects[i] for i in np.flatnonzero(labels == cluster)]
            if not members:
                new_centers.append(centers[cluster])
                continue
            if center_method == "centroid":
                new_centers.append(np.asarray(members, dtype=np.float64).mean(axis=0))
            else:
                new_centers.append(_sampled_medoid(metric, members, medoid_sample, rng))
        centers = new_centers
        labels = nearest_assignment(metric, objects, centers)
    return labels, centers


def _sampled_medoid(metric: DistanceFunction, members: list, cap: int, rng):
    candidates = sample_without_replacement(members, cap, rng)
    reference = candidates  # measure candidates against each other
    best, best_rowsum = candidates[0], np.inf
    for candidate in candidates:
        dists = metric.one_to_many(candidate, reference)
        rowsum = float(np.dot(dists, dists))
        if rowsum < best_rowsum:
            best, best_rowsum = candidate, rowsum
    return best


def _is_vector(obj) -> bool:
    try:
        arr = np.asarray(obj, dtype=np.float64)
    except (TypeError, ValueError):
        return False
    return arr.ndim == 1 and arr.size > 0
