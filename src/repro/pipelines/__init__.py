"""End-to-end clustering pipelines mirroring the paper's methodology.

* :func:`cluster_dataset` — BUBBLE or BUBBLE-FM pre-clustering, a
  hierarchical global phase over the sub-cluster clustroids, and an optional
  second labeling scan (Section 6.1);
* :func:`map_first_cluster` — the **Map-First** baseline of Section 6.2:
  FastMap the whole dataset into a coordinate space, then run BIRCH on the
  image vectors;
* :func:`nearest_assignment` — the shared second-scan labeling primitive.
"""

from repro.pipelines.authority import AuthorityFile, build_authority_file
from repro.pipelines.cluster import ClusteringResult, cluster_dataset
from repro.pipelines.labeling import nearest_assignment
from repro.pipelines.map_first import map_first_cluster
from repro.pipelines.refine import refine_labels

__all__ = [
    "ClusteringResult",
    "cluster_dataset",
    "map_first_cluster",
    "nearest_assignment",
    "AuthorityFile",
    "build_authority_file",
    "refine_labels",
]
