"""The full BUBBLE/BUBBLE-FM pipeline of the paper's evaluation (Section 6.1).

Phase 1  pre-cluster the data in one scan (BUBBLE or BUBBLE-FM);
Phase 2  hierarchically cluster the sub-cluster clustroids down to the
         requested number of clusters, weighting clustroids by sub-cluster
         population;
Phase 3  derive one center per final cluster — the centroid of the merged
         clustroids for coordinate data (exactly the paper's rule:
         "the clustroid of the final cluster is the centroid of the
         clustroids of sub-clusters merged"), or their weighted medoid in a
         general distance space where centroids do not exist;
Phase 4  (optional) scan the data a second time, labeling each object with
         its closest final center.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.features import SubCluster
from repro.core.preclusterer import BUBBLE, BUBBLEFM, PreClusterer
from repro.exceptions import ParameterError
from repro.hac import AgglomerativeClusterer
from repro.metrics.base import DistanceFunction
from repro.observability import NULL_TRACER, NullTracer
from repro.pipelines.labeling import nearest_assignment

__all__ = ["ClusteringResult", "cluster_dataset"]

_ALGORITHMS = ("bubble", "bubble-fm")
_CENTER_METHODS = ("auto", "centroid", "medoid")
_GLOBAL_METHODS = ("hac", "clarans", "clara")


@dataclass
class ClusteringResult:
    """Everything a pipeline run produces, for evaluation and inspection."""

    #: Final cluster centers (vectors for centroid method, member objects
    #: for medoid method), one per final cluster.
    centers: list
    #: Sub-clusters found by the pre-clustering phase.
    subclusters: list[SubCluster]
    #: Final-cluster index of each sub-cluster.
    subcluster_labels: np.ndarray
    #: Per-object labels from the second scan (``None`` when skipped).
    labels: np.ndarray | None
    #: Calls to the distance function over the whole pipeline.
    n_distance_calls: int
    #: Wall-clock seconds of the pre-clustering scan.
    scan_seconds: float
    #: Wall-clock seconds of the whole pipeline.
    total_seconds: float
    #: The fitted pre-clustering model (tree introspection, diagnostics).
    model: PreClusterer = field(repr=False, default=None)

    @property
    def ingest_report(self):
        """Fault-tolerance accounting of the pre-clustering scan
        (:class:`repro.robustness.IngestReport`)."""
        return self.model.ingest_report_ if self.model is not None else None

    @property
    def n_clusters(self) -> int:
        return len(self.centers)


def _weighted_medoid(
    metric: DistanceFunction, objects: Sequence, weights: Sequence[float]
):
    """The member minimizing the weighted sum of squared distances."""
    best_obj, best_cost = None, np.inf
    w = np.asarray(weights, dtype=np.float64)
    for obj in objects:
        dists = metric.one_to_many(obj, objects)
        cost = float(np.dot(w, dists**2))
        if cost < best_cost:
            best_obj, best_cost = obj, cost
    return best_obj


def cluster_dataset(
    objects: Sequence,
    metric: DistanceFunction,
    n_clusters: int,
    algorithm: str = "bubble",
    max_nodes: int | None = None,
    branching_factor: int = 15,
    sample_size: int = 75,
    representation_number: int = 10,
    image_dim: int = 2,
    linkage: str = "average",
    center_method: str = "auto",
    global_method: str = "hac",
    global_phase: str | None = None,
    global_samples: int = 5,
    global_sample_size: int | None = None,
    assign: bool = True,
    seed=None,
    on_error: str = "raise",
    max_quarantine: int | None = None,
    checkpoint_path=None,
    checkpoint_every: int = 1000,
    resume_from=None,
    tracer: NullTracer = NULL_TRACER,
    n_jobs: int = 1,
    n_shards: int | None = None,
    max_shard_retries: int = 2,
    shard_timeout_seconds: float | None = None,
    shard_retry_backoff: float = 0.25,
) -> ClusteringResult:
    """Run the complete pre-cluster → global-phase → label pipeline.

    Parameters mirror the paper's experimental knobs; defaults are the
    Section 6.1 settings (``SS=75, B=15, 2p=10``).

    ``center_method="auto"`` takes centroids when the sub-cluster clustroids
    are numeric vectors and weighted medoids otherwise.

    ``global_method`` selects the phase that merges sub-clusters down to
    ``n_clusters``: ``"hac"`` is the paper's hierarchical clustering;
    ``"clarans"`` runs the randomized medoid search over the clustroids
    instead (a domain-specific alternative in the spirit of Section 2's
    "a domain-specific clustering method can further analyze the
    sub-clusters output by our algorithm"); ``"clara"`` is the sampled
    parallel variant of that search — ``global_samples``
    population-weighted subsamples of the clustroids searched across the
    worker pool, best candidate by full-clustroid-set cost (see
    ``docs/performance.md``, "Sampled global phase"). ``global_phase`` is
    an explicit alias that overrides ``global_method`` when given;
    ``global_sample_size`` pins the per-subsample size (default
    ``40 + 2k``).

    ``on_error``, ``max_quarantine``, ``checkpoint_path``,
    ``checkpoint_every`` and ``resume_from`` are forwarded to the
    pre-clusterer's ``fit`` — see
    :meth:`repro.core.preclusterer.PreClusterer.fit` for the fault-handling
    and checkpoint/resume semantics. Quarantined objects are excluded from
    the global phase; under ``assign=True`` they are still labeled with
    their nearest center in the second scan (labeling is read-only, so a
    previously failing object simply fails again and would raise there).

    ``tracer`` threads a :class:`repro.observability.Tracer` through every
    phase: the scan's spans come from the pre-clusterer, the global phase
    runs under a ``global-phase`` span, and the second scan under
    ``redistribute`` — so per-site NCD covers the whole pipeline.

    ``n_jobs`` parallelizes the expensive phases: the pre-clustering scan
    becomes a sharded build (see :mod:`repro.parallel`; ``n_shards`` pins
    the logical partition independently of the worker count), and under
    ``global_method="hac"`` the clustroid distance matrix is gathered with
    chunked ``cross()`` blocks across the pool before being handed to the
    hierarchical clusterer. CLARANS keeps its sequential adaptive search —
    it measures a data-dependent subset of pairs, so precomputing the full
    matrix would *increase* NCD. Requires a picklable metric. With
    ``checkpoint_path``/``resume_from`` the sharded build keeps per-shard
    checkpoints in a directory (see :meth:`PreClusterer.fit`).

    ``max_shard_retries``, ``shard_timeout_seconds`` and
    ``shard_retry_backoff`` tune the sharded build's worker-crash recovery
    (see ``docs/robustness.md``, "Fault-tolerant parallel builds"); they
    are inert when ``n_jobs == 1`` and ``n_shards`` is unset.
    """
    if algorithm not in _ALGORITHMS:
        raise ParameterError(f"algorithm must be one of {_ALGORITHMS}, got {algorithm!r}")
    if center_method not in _CENTER_METHODS:
        raise ParameterError(
            f"center_method must be one of {_CENTER_METHODS}, got {center_method!r}"
        )
    if global_phase is not None:
        global_method = global_phase
    if global_method not in _GLOBAL_METHODS:
        raise ParameterError(
            f"global_method must be one of {_GLOBAL_METHODS}, got {global_method!r}"
        )
    start = time.perf_counter()
    calls_before = metric.n_calls

    common = dict(
        branching_factor=branching_factor,
        sample_size=sample_size,
        representation_number=representation_number,
        max_nodes=max_nodes,
        seed=seed,
        tracer=tracer,
        n_jobs=n_jobs,
        n_shards=n_shards,
        max_shard_retries=max_shard_retries,
        shard_timeout_seconds=shard_timeout_seconds,
        shard_retry_backoff=shard_retry_backoff,
    )
    if algorithm == "bubble":
        model: PreClusterer = BUBBLE(metric, **common)
    else:
        model = BUBBLEFM(metric, image_dim=image_dim, **common)
    model.fit(
        objects,
        on_error=on_error,
        max_quarantine=max_quarantine,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        resume_from=resume_from,
    )
    scan_seconds = time.perf_counter() - start

    subclusters = model.subclusters_
    clustroids = [s.clustroid for s in subclusters]
    weights = [s.n for s in subclusters]
    k = min(n_clusters, len(subclusters))
    with tracer.activation():
        if global_method == "hac":
            with tracer.span("global-phase"):
                hac = AgglomerativeClusterer(n_clusters=k, linkage=linkage)
                if n_jobs > 1:
                    from repro.parallel import pairwise_matrix

                    with tracer.span("global-matrix"):
                        dm = pairwise_matrix(metric, clustroids, n_jobs=n_jobs)
                    hac.fit(distance_matrix=dm, weights=weights)
                else:
                    hac.fit(objects=clustroids, metric=metric, weights=weights)
            sub_labels = hac.labels_
            n_final = hac.n_clusters_
        else:
            # The driver owns the medoid global phase: exact CLARANS runs
            # under a "global-phase" span, CLARA under its own
            # "global-sample"/"global-assign" spans, and CLARA sample
            # diagnostics land in the model's report.
            search = model.global_phase(
                k,
                method=global_method,
                num_local=2,
                global_samples=global_samples,
                global_sample_size=global_sample_size,
                seed=seed,
            )
            sub_labels = search.labels_
            n_final = search.n_clusters_

    with tracer.activation(), tracer.span("global-phase"):
        if center_method == "auto":
            center_method = "centroid" if _is_vector(clustroids[0]) else "medoid"
        centers: list = []
        remap = {}
        for cluster in range(n_final):
            idx = np.flatnonzero(sub_labels == cluster)
            if len(idx) == 0:  # possible only under duplicate-medoid ties
                continue
            remap[cluster] = len(centers)
            group = [clustroids[i] for i in idx]
            group_w = np.asarray([weights[i] for i in idx], dtype=np.float64)
            if center_method == "centroid":
                mat = np.asarray(group, dtype=np.float64)
                centers.append(mat.mean(axis=0))
            else:
                centers.append(_weighted_medoid(metric, group, group_w))
    sub_labels = np.asarray([remap[int(c)] for c in sub_labels], dtype=np.intp)

    if assign:
        with tracer.activation(), tracer.span("redistribute"):
            labels = nearest_assignment(metric, objects, centers)
    else:
        labels = None
    return ClusteringResult(
        centers=centers,
        subclusters=subclusters,
        subcluster_labels=sub_labels,
        labels=labels,
        n_distance_calls=metric.n_calls - calls_before,
        scan_seconds=scan_seconds,
        total_seconds=time.perf_counter() - start,
        model=model,
    )


def _is_vector(obj) -> bool:
    try:
        arr = np.asarray(obj, dtype=np.float64)
    except (TypeError, ValueError):
        return False
    return arr.ndim == 1 and arr.size > 0
