"""The Map-First baseline (Section 6.2).

"One possible approach for clustering data in a distance space is to map all
N objects into a coordinate space using FastMap, and then cluster the
resultant vectors using a scalable clustering algorithm for data in a
coordinate space." The paper shows this loses badly on quality (Table 1);
this module implements it so the comparison can be regenerated:

1. FastMap all objects into R^k (O(N k) distance calls);
2. run vector-space BIRCH over the image vectors;
3. global phase: hierarchical clustering of the BIRCH sub-cluster centroids
   down to the requested cluster count;
4. label every object by its nearest final center *in the image space*.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.birch import BIRCH
from repro.exceptions import ParameterError
from repro.fastmap import FastMap
from repro.hac import AgglomerativeClusterer
from repro.metrics.base import DistanceFunction
from repro.metrics.vector import EuclideanDistance

__all__ = ["MapFirstResult", "map_first_cluster"]


@dataclass
class MapFirstResult:
    """Output of the Map-First pipeline."""

    #: Per-object cluster labels (assigned in the image space).
    labels: np.ndarray
    #: Final cluster centers in the image space.
    image_centers: np.ndarray
    #: The image vectors of all objects.
    images: np.ndarray
    #: Calls to the original distance function (all from FastMap).
    n_distance_calls: int
    #: Wall-clock seconds of the whole pipeline.
    total_seconds: float

    @property
    def n_clusters(self) -> int:
        return len(self.image_centers)


def map_first_cluster(
    objects: Sequence,
    metric: DistanceFunction,
    n_clusters: int,
    image_dim: int,
    max_nodes: int | None = None,
    branching_factor: int = 15,
    fm_iterations: int = 1,
    linkage: str = "average",
    seed=None,
) -> MapFirstResult:
    """FastMap the dataset, then BIRCH + hierarchical global phase."""
    if n_clusters < 1:
        raise ParameterError(f"n_clusters must be >= 1, got {n_clusters}")
    start = time.perf_counter()
    calls_before = metric.n_calls

    fastmap = FastMap(metric, image_dim, iterations=fm_iterations, seed=seed)
    images = fastmap.fit(list(objects))

    birch = BIRCH(
        branching_factor=branching_factor, max_nodes=max_nodes, seed=seed
    ).fit(list(images))
    subclusters = birch.subclusters_
    centroids = [np.asarray(s.clustroid) for s in subclusters]
    weights = [s.n for s in subclusters]

    k = min(n_clusters, len(centroids))
    hac = AgglomerativeClusterer(n_clusters=k, linkage=linkage)
    hac.fit(objects=centroids, metric=EuclideanDistance(), weights=weights)

    centers = np.vstack(
        [
            np.average(
                np.asarray([centroids[i] for i in np.flatnonzero(hac.labels_ == c)]),
                axis=0,
                weights=[weights[i] for i in np.flatnonzero(hac.labels_ == c)],
            )
            for c in range(hac.n_clusters_)
        ]
    )

    # Label in the image space: no further calls to the (expensive) metric.
    # Gram-matrix form keeps memory at O(N * K) instead of O(N * K * dim).
    x_sq = np.einsum("ij,ij->i", images, images)
    c_sq = np.einsum("ij,ij->i", centers, centers)
    d2 = x_sq[:, None] + c_sq[None, :] - 2.0 * (images @ centers.T)
    labels = np.argmin(d2, axis=1).astype(np.intp)

    return MapFirstResult(
        labels=labels,
        image_centers=centers,
        images=images,
        n_distance_calls=metric.n_calls - calls_before,
        total_seconds=time.perf_counter() - start,
    )
