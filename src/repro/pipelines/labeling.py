"""Second-scan labeling: associate every object with its closest center.

Section 6.1: "The dataset D is scanned a second time to associate each
object O in D with a cluster whose representative object is closest to O."
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import ParameterError
from repro.metrics.base import DistanceFunction

__all__ = ["nearest_assignment"]


def nearest_assignment(
    metric: DistanceFunction,
    objects: Iterable,
    centers: Sequence,
) -> np.ndarray:
    """Label each object with the index of its nearest center.

    Costs ``len(objects) * len(centers)`` distance calls — the dominant cost
    of the second phase that Table 3 attributes "more than 50% of the time"
    to.
    """
    if len(centers) == 0:
        raise ParameterError("nearest_assignment requires at least one center")
    labels = [int(np.argmin(metric.one_to_many(obj, centers))) for obj in objects]
    return np.asarray(labels, dtype=np.intp)
