"""Authority-file construction — the end-to-end application of Section 7.

When bibliographic databases are integrated, variant spellings of the same
author must be reconciled into a joint *authority file*: classes of
equivalent strings, each with a canonical form. The paper uses BUBBLE-FM
with the edit distance as the "first pass" that a domain expert then
refines. This module packages that workflow:

1. cluster the records with BUBBLE-FM (single scan, edit distance);
2. assign every record to a cluster (tree-routed or exact second scan);
3. pick a canonical form per cluster — the clustroid, i.e. the variant
   closest to all others, optionally weighted by record frequency.

The output is an :class:`AuthorityFile` mapping every distinct string to its
class and canonical form, exactly the artifact "early aggregation" is meant
to produce: a reduced dataset for the (expensive) detailed analysis.
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.preclusterer import BUBBLEFM
from repro.exceptions import EmptyDatasetError, ParameterError
from repro.metrics.base import DistanceFunction
from repro.metrics.cache import CachedDistance
from repro.metrics.string import EditDistance
from repro.observability import NULL_TRACER, NullTracer

__all__ = ["AuthorityFile", "build_authority_file"]


@dataclass
class AuthorityFile:
    """Equivalence classes of variant strings with canonical forms."""

    #: Canonical form of each class.
    canonical: list[str]
    #: Distinct member strings of each class.
    members: list[list[str]]
    #: Class index per input record (same order as the input scan).
    record_labels: np.ndarray
    #: True distance evaluations spent building the file.
    n_distance_calls: int
    #: Wall-clock seconds for the whole build.
    seconds: float
    #: Lookup from a distinct string to its class index.
    _index: dict[str, int] = field(repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        if not self._index:
            for cls, group in enumerate(self.members):
                for s in group:
                    self._index[s] = cls

    @property
    def n_classes(self) -> int:
        return len(self.canonical)

    def lookup(self, record: str) -> str | None:
        """Canonical form for ``record``, or ``None`` if it is unknown."""
        cls = self._index.get(record)
        return self.canonical[cls] if cls is not None else None

    def class_of(self, record: str) -> int | None:
        """Class index for ``record``, or ``None`` if it is unknown."""
        return self._index.get(record)


def build_authority_file(
    records: Sequence[str],
    metric: DistanceFunction | None = None,
    threshold: float = 2.0,
    image_dim: int = 3,
    branching_factor: int = 15,
    sample_size: int = 75,
    max_nodes: int | None = None,
    assignment: str = "tree",
    cache: bool = True,
    seed=None,
    tracer: NullTracer = NULL_TRACER,
) -> AuthorityFile:
    """Cluster variant strings into an authority file with BUBBLE-FM.

    Parameters
    ----------
    records:
        The raw record strings (duplicates expected and welcome).
    metric:
        Distance over strings; defaults to the unit-cost edit distance.
    threshold:
        Initial threshold ``T``: records within this distance of a cluster's
        clustroid join it. Lower = more, purer classes (the paper's
        tolerance knob from Table 3).
    assignment:
        ``"tree"`` (fast, approximate) or ``"linear"`` (exact) second scan.
    cache:
        Dedupe exact repeats so each distinct pair is measured once.
    tracer:
        Optional :class:`repro.observability.Tracer`; spans and per-site
        NCD then cover the scan, the assignment pass, and canonicalization.

    Returns
    -------
    :class:`AuthorityFile`
    """
    records = list(records)
    if not records:
        raise EmptyDatasetError("build_authority_file requires at least one record")
    if assignment not in ("tree", "linear"):
        raise ParameterError(f'assignment must be "tree" or "linear", got {assignment!r}')

    base = metric if metric is not None else EditDistance()
    effective: DistanceFunction = CachedDistance(base) if cache else base

    start = time.perf_counter()
    calls_before = effective.n_calls
    model = BUBBLEFM(
        effective,
        branching_factor=branching_factor,
        sample_size=sample_size,
        image_dim=image_dim,
        threshold=threshold,
        max_nodes=max_nodes,
        seed=seed,
        tracer=tracer,
    ).fit(records)
    labels = model.assign(records, via=assignment)

    # Group distinct strings per class; canonical form = the member closest
    # to all distinct members, ties broken toward the most frequent record.
    frequency = Counter(records)
    members: list[list[str]] = [[] for _ in range(model.n_subclusters_)]
    seen: set[tuple[int, str]] = set()
    for record, cls in zip(records, labels):
        key = (int(cls), record)
        if key not in seen:
            seen.add(key)
            members[int(cls)].append(record)
    # Drop empty classes (sub-clusters that won no records in the scan).
    kept = [(i, group) for i, group in enumerate(members) if group]
    remap = {old: new for new, (old, _) in enumerate(kept)}
    members = [group for _, group in kept]
    labels = np.asarray([remap[int(c)] for c in labels], dtype=np.intp)

    with tracer.activation(), tracer.span("global-phase"):
        canonical = [_canonical_form(effective, group, frequency) for group in members]
    return AuthorityFile(
        canonical=canonical,
        members=members,
        record_labels=labels,
        n_distance_calls=effective.n_calls - calls_before,
        seconds=time.perf_counter() - start,
    )


def _canonical_form(
    metric: DistanceFunction, group: list[str], frequency: Counter
) -> str:
    if len(group) == 1:
        return group[0]
    best, best_key = group[0], (np.inf, 0)
    for candidate in group:
        dists = metric.one_to_many(candidate, group)
        rowsum = float(np.dot(dists, dists))
        key = (rowsum, -frequency[candidate])
        if key < best_key:
            best, best_key = candidate, key
    return best
