"""Surrogate for the paper's proprietary ``RDS`` bibliographic dataset.

Section 7 clusters ~150,000 author-name strings (13,884 distinct variants)
to bootstrap an authority file. That dataset is not public, so we generate a
faithful synthetic equivalent that exercises the identical code path
(strings + edit distance + BUBBLE-FM vs RED):

* canonical author strings are assembled from name pools in bibliographic
  ``"surname, given m."`` style;
* variant strings are derived from the canonical form via the corruption
  classes the paper names — *omissions, additions, and transposition of
  characters and words* — plus initialing, a ubiquitous bibliographic
  variation;
* the final dataset samples variants with duplication (real records repeat),
  so ``n_strings`` can greatly exceed the number of distinct variants, just
  like RDS.

Ground-truth class labels come for free, enabling the paper's
misplaced-string count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError
from repro.utils.rng import ensure_rng

__all__ = [
    "StringDataset",
    "make_authority_dataset",
    "omit_char",
    "add_char",
    "transpose_chars",
    "transpose_words",
    "initialize_given_name",
]

_SURNAMES = [
    "anderson", "bailey", "bergstrom", "carlson", "chandra", "dimitriou",
    "eriksson", "ferreira", "fitzgerald", "french", "ganti", "gehrke",
    "goldberg", "gonzalez", "hernandez", "hoffmann", "ivanov", "jackson",
    "jankowski", "kaufmann", "kobayashi", "kowalski", "kumar", "larsson",
    "leclerc", "lindqvist", "martinez", "mcallister", "nakamura", "nguyen",
    "okafor", "olofsson", "papadopoulos", "patterson", "pellegrini", "powell",
    "raghavan", "ramakrishnan", "richardson", "rodriguez", "schneider",
    "schulman", "silverstein", "srinivasan", "stavropoulos", "takahashi",
    "thompson", "villanueva", "wasserman", "yamamoto", "zakrzewski", "zhang",
]

_GIVEN = [
    "alexander", "alice", "andrea", "benjamin", "carolina", "catherine",
    "christopher", "daniel", "elizabeth", "emmanuel", "federico", "gabriel",
    "giovanni", "gregory", "henrietta", "ingrid", "james", "johannes",
    "jonathan", "katarina", "lawrence", "magdalena", "margaret", "matthias",
    "nathaniel", "nicholas", "olga", "patricia", "raghu", "rebecca",
    "salvatore", "sebastian", "stephanie", "theodore", "valentina",
    "venkatesh", "victoria", "william", "xiaoming", "yevgeny",
]

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


# ----------------------------------------------------------------------
# Corruption operations (the paper's variant classes)
# ----------------------------------------------------------------------
def omit_char(s: str, rng: np.random.Generator) -> str:
    """Drop one character at a random position."""
    if len(s) <= 1:
        return s
    i = int(rng.integers(0, len(s)))
    return s[:i] + s[i + 1 :]


def add_char(s: str, rng: np.random.Generator) -> str:
    """Insert one random lowercase letter at a random position."""
    i = int(rng.integers(0, len(s) + 1))
    c = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
    return s[:i] + c + s[i:]


def transpose_chars(s: str, rng: np.random.Generator) -> str:
    """Swap two adjacent characters."""
    if len(s) < 2:
        return s
    i = int(rng.integers(0, len(s) - 1))
    return s[:i] + s[i + 1] + s[i] + s[i + 2 :]


def transpose_words(s: str, rng: np.random.Generator) -> str:
    """Swap two adjacent whitespace-separated words."""
    words = s.split(" ")
    if len(words) < 2:
        return s
    i = int(rng.integers(0, len(words) - 1))
    words[i], words[i + 1] = words[i + 1], words[i]
    return " ".join(words)


def initialize_given_name(s: str, rng: np.random.Generator) -> str:
    """Abbreviate the given name to its initial: "powell, allison" -> "powell, a.".

    Only applies to the canonical "surname, given ..." layout; returns the
    input unchanged otherwise.
    """
    if ", " not in s:
        return s
    surname, rest = s.split(", ", 1)
    parts = rest.split(" ")
    if not parts or len(parts[0]) <= 2:
        return s
    parts[0] = parts[0][0] + "."
    return f"{surname}, {' '.join(parts)}"


_CORRUPTIONS = (omit_char, add_char, transpose_chars, transpose_words, initialize_given_name)


@dataclass
class StringDataset:
    """A labeled string-clustering workload with known variant classes."""

    #: All strings in scan order (duplicates included, like real records).
    strings: list[str]
    #: Ground-truth class index per string.
    labels: np.ndarray
    #: Canonical form of each class.
    canonical: list[str]
    #: Distinct variant strings per class.
    variants: list[list[str]]
    name: str = "RDS-surrogate"

    @property
    def n_strings(self) -> int:
        return len(self.strings)

    @property
    def n_classes(self) -> int:
        return len(self.canonical)

    @property
    def n_distinct_variants(self) -> int:
        return sum(len(v) for v in self.variants)


def make_authority_dataset(
    n_classes: int = 200,
    n_strings: int = 2000,
    max_variants_per_class: int = 8,
    max_corruptions: int = 3,
    seed=None,
) -> StringDataset:
    """Generate an authority-file workload of author-name variant classes.

    Parameters
    ----------
    n_classes:
        Number of distinct authors (ground-truth clusters).
    n_strings:
        Total records; sampled from the variants with duplication.
    max_variants_per_class:
        Each class gets 1..this many distinct variants (canonical included).
    max_corruptions:
        Corruption operations applied to derive one variant (1..this many).
    """
    if n_classes < 1:
        raise ParameterError(f"n_classes must be >= 1, got {n_classes}")
    if n_strings < n_classes:
        raise ParameterError("n_strings must be >= n_classes so every class appears")
    if max_variants_per_class < 1 or max_corruptions < 1:
        raise ParameterError("max_variants_per_class and max_corruptions must be >= 1")
    rng = ensure_rng(seed)

    canonical: list[str] = []
    seen: set[str] = set()
    while len(canonical) < n_classes:
        surname = _SURNAMES[int(rng.integers(0, len(_SURNAMES)))]
        given = _GIVEN[int(rng.integers(0, len(_GIVEN)))]
        middle = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
        base = f"{surname}, {given} {middle}."
        if base not in seen:
            seen.add(base)
            canonical.append(base)

    variants: list[list[str]] = []
    for base in canonical:
        forms = [base]
        n_var = int(rng.integers(1, max_variants_per_class + 1))
        attempts = 0
        while len(forms) < n_var and attempts < 20 * n_var:
            attempts += 1
            s = base
            for _ in range(int(rng.integers(1, max_corruptions + 1))):
                op = _CORRUPTIONS[int(rng.integers(0, len(_CORRUPTIONS)))]
                s = op(s, rng)
            if s not in forms and s not in seen:
                seen.add(s)
                forms.append(s)
        variants.append(forms)

    # Sample records: every class appears at least once, remaining records
    # drawn with a popularity skew (some authors are cited far more often).
    strings: list[str] = []
    labels: list[int] = []
    for cls in range(n_classes):
        strings.append(variants[cls][0])
        labels.append(cls)
    popularity = rng.pareto(1.5, size=n_classes) + 1.0
    popularity /= popularity.sum()
    extra = n_strings - n_classes
    chosen_classes = rng.choice(n_classes, size=extra, p=popularity)
    for cls in chosen_classes:
        forms = variants[int(cls)]
        strings.append(forms[int(rng.integers(0, len(forms)))])
        labels.append(int(cls))
    order = rng.permutation(n_strings)
    return StringDataset(
        strings=[strings[i] for i in order],
        labels=np.asarray(labels, dtype=np.intp)[order],
        canonical=canonical,
        variants=variants,
        name=f"RDS-surrogate({n_classes}c,{n_strings})",
    )
