"""Disk-backed dataset streaming.

BIRCH* algorithms read "objects from the database sequentially" — they never
need the dataset in memory. These helpers store the synthetic workloads in
plain line-oriented files and stream them back one object at a time, so the
single-scan property can be exercised (and demonstrated) against data that
genuinely does not fit in RAM.

Formats are deliberately simple and inspectable:

* vectors: one point per line, comma-separated floats;
* strings: one record per line (newlines in records are not supported).
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from pathlib import Path

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "write_vector_file",
    "stream_vectors",
    "write_string_file",
    "stream_strings",
]


def write_vector_file(path: str | os.PathLike, points) -> int:
    """Write points (any iterable of 1-d vectors) as CSV lines.

    Returns the number of points written. Streams; never materializes the
    full dataset.
    """
    count = 0
    with open(path, "w", encoding="ascii") as f:
        for p in points:
            vec = np.asarray(p, dtype=np.float64)
            if vec.ndim != 1:
                raise ParameterError(f"expected 1-d vectors, got shape {vec.shape}")
            f.write(",".join(repr(float(x)) for x in vec))
            f.write("\n")
            count += 1
    return count


def stream_vectors(path: str | os.PathLike) -> Iterator[np.ndarray]:
    """Yield one point per line of a file written by :func:`write_vector_file`."""
    with open(path, "r", encoding="ascii") as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield np.asarray([float(x) for x in line.split(",")])
            except ValueError as exc:
                raise ParameterError(f"{path}:{line_no}: malformed vector line") from exc


def write_string_file(path: str | os.PathLike, strings) -> int:
    """Write one record per line. Rejects records containing newlines."""
    count = 0
    with open(path, "w", encoding="utf-8") as f:
        for s in strings:
            if "\n" in s or "\r" in s:
                raise ParameterError("records must not contain newlines")
            f.write(s)
            f.write("\n")
            count += 1
    return count


def stream_strings(path: str | os.PathLike) -> Iterator[str]:
    """Yield one record per line of a file written by :func:`write_string_file`."""
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            yield line.rstrip("\n")
