"""Synthetic vector datasets of the paper's evaluation (Section 6.1).

All generators return a :class:`VectorDataset` carrying the points, the
ground-truth labels and cluster centers, and a name following the paper's
``DSkd.Kc.N`` convention. The points are meant to be handed to BUBBLE as
*opaque objects* — the evaluation deliberately ignores their coordinate
structure except inside the Euclidean distance function.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError
from repro.utils.rng import ensure_rng

__all__ = ["VectorDataset", "make_ds1", "make_ds2", "make_cell_dataset"]


@dataclass
class VectorDataset:
    """A labeled synthetic clustering workload."""

    #: ``(N, dim)`` data points.
    points: np.ndarray
    #: Ground-truth cluster index per point.
    labels: np.ndarray
    #: ``(K, dim)`` true cluster centers.
    centers: np.ndarray
    #: Dataset name, e.g. ``"DS20d.50c.100000"``.
    name: str

    def __post_init__(self) -> None:
        if len(self.points) != len(self.labels):
            raise ParameterError("points and labels must have equal length")

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def n_clusters(self) -> int:
        return len(self.centers)

    @property
    def dim(self) -> int:
        return self.points.shape[1]

    def as_objects(self) -> list[np.ndarray]:
        """The points as a list of opaque objects (one vector each)."""
        return list(self.points)

    def shuffled(self, seed=None) -> "VectorDataset":
        """A copy with the input order permuted (order-independence tests)."""
        rng = ensure_rng(seed)
        perm = rng.permutation(self.n_points)
        return VectorDataset(
            points=self.points[perm],
            labels=self.labels[perm],
            centers=self.centers,
            name=self.name,
        )


def _spread_points(
    centers: np.ndarray,
    n_points: int,
    std: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian points around centers, sizes as even as possible."""
    k, dim = centers.shape
    base, extra = divmod(n_points, k)
    counts = np.full(k, base)
    counts[:extra] += 1
    points = np.empty((n_points, dim))
    labels = np.empty(n_points, dtype=np.intp)
    pos = 0
    for i in range(k):
        c = counts[i]
        points[pos : pos + c] = centers[i] + std * rng.standard_normal((c, dim))
        labels[pos : pos + c] = i
        pos += c
    perm = rng.permutation(n_points)
    return points[perm], labels[perm]


def make_ds1(
    n_points: int = 100_000,
    grid_side: int = 10,
    spacing: float = 6.0,
    std: float = 0.75,
    seed=None,
) -> VectorDataset:
    """DS1: 2-d points around ``grid_side**2`` centers on a uniform grid.

    The BIRCH/BUBBLE papers use 100k points in 100 grid clusters; defaults
    match. ``spacing/std = 8`` keeps clusters visually distinct, as in
    the paper's figures.
    """
    if grid_side < 1:
        raise ParameterError(f"grid_side must be >= 1, got {grid_side}")
    rng = ensure_rng(seed)
    xs, ys = np.meshgrid(np.arange(grid_side), np.arange(grid_side))
    centers = np.column_stack([xs.ravel(), ys.ravel()]).astype(np.float64) * spacing
    points, labels = _spread_points(centers, n_points, std, rng)
    return VectorDataset(points, labels, centers, name=f"DS1({n_points})")


def make_ds2(
    n_points: int = 100_000,
    n_clusters: int = 100,
    x_max: float = 600.0,
    amplitude: float = 20.0,
    periods: float = 2.5,
    std: float = 0.75,
    seed=None,
) -> VectorDataset:
    """DS2: 2-d points around centers placed along a sine wave.

    Matches the figures in the paper: x spans [0, 600], y oscillates within
    roughly ±20 over a few periods.
    """
    if n_clusters < 1:
        raise ParameterError(f"n_clusters must be >= 1, got {n_clusters}")
    rng = ensure_rng(seed)
    x = np.linspace(0.0, x_max, n_clusters)
    y = amplitude * np.sin(2.0 * np.pi * periods * x / x_max)
    centers = np.column_stack([x, y])
    points, labels = _spread_points(centers, n_points, std, rng)
    return VectorDataset(points, labels, centers, name=f"DS2({n_points})")


def make_cell_dataset(
    dim: int = 20,
    n_clusters: int = 50,
    n_points: int = 100_000,
    box: float = 10.0,
    radius_range: tuple[float, float] = (0.5, 1.0),
    seed=None,
) -> VectorDataset:
    """The ``DSkd.Kc.N`` family described by Agrawal et al. (Section 6.1).

    The box ``[0, box]^dim`` is split into ``2^dim`` cells by halving every
    dimension. ``n_clusters`` distinct cells are chosen at random, a center
    placed uniformly inside each, and ``n_points / n_clusters`` points are
    distributed uniformly within a per-cluster radius drawn from
    ``radius_range``.
    """
    if n_clusters < 1:
        raise ParameterError(f"n_clusters must be >= 1, got {n_clusters}")
    if dim < 1:
        raise ParameterError(f"dim must be >= 1, got {dim}")
    lo, hi = radius_range
    if not 0 < lo <= hi:
        raise ParameterError(f"invalid radius_range {radius_range}")
    rng = ensure_rng(seed)
    half = box / 2.0

    # Choose distinct cells: each cell is a bit pattern over the dimensions.
    chosen: set[tuple[int, ...]] = set()
    while len(chosen) < n_clusters:
        chosen.add(tuple(int(b) for b in rng.integers(0, 2, size=dim)))
    cells = np.array(sorted(chosen), dtype=np.float64)
    centers = cells * half + rng.uniform(0.0, half, size=(n_clusters, dim))

    base, extra = divmod(n_points, n_clusters)
    counts = np.full(n_clusters, base)
    counts[:extra] += 1
    points = np.empty((n_points, dim))
    labels = np.empty(n_points, dtype=np.intp)
    pos = 0
    for i in range(n_clusters):
        c = int(counts[i])
        radius = rng.uniform(lo, hi)
        # Uniform in the L2 ball: random direction, radius scaled by u^(1/dim).
        direction = rng.standard_normal((c, dim))
        direction /= np.linalg.norm(direction, axis=1, keepdims=True)
        scale = radius * rng.uniform(0.0, 1.0, size=c) ** (1.0 / dim)
        points[pos : pos + c] = centers[i] + direction * scale[:, None]
        labels[pos : pos + c] = i
        pos += c
    perm = rng.permutation(n_points)
    return VectorDataset(
        points[perm],
        labels[perm],
        centers,
        name=f"DS{dim}d.{n_clusters}c.{n_points}",
    )
