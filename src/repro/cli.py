"""Command-line interface: ``python -m repro <command>``.

The workflow commands:

* ``generate`` — write a synthetic workload (ds1 / ds2 / cell / strings) to
  a file, with ground-truth labels alongside;
* ``cluster`` — single-scan pre-clustering of a vector CSV or a string file,
  optional hierarchical global phase, labels written one per line;
* ``authority`` — build an authority file from records (Section 7), writing
  ``canonical<TAB>member`` lines;
* ``evaluate`` — score predicted labels against ground truth.

And the analysis commands (see ``docs/analysis.md``):

* ``lint`` — run **reprolint**, the project-specific static analyzer;
* ``audit`` — load a scan checkpoint and run the CF*-tree invariant
  sanitizer over it;
* ``stats`` — load a scan checkpoint and print its
  :class:`~repro.observability.StatsSnapshot` (tree shape, threshold,
  M-pressure);
* ``query`` — load a scan checkpoint and answer exact ``--k`` nearest /
  ``--radius`` range queries over its sub-cluster clustroids through a
  :class:`~repro.index.MetricIndex` backend (default ``cftree``, which
  reuses the checkpointed tree's cached geometry).

``cluster`` and ``authority`` accept ``--trace PATH`` to stream a JSONL
phase trace (see ``docs/observability.md``) and print an end-of-run
NCD-by-site summary.

The CLI is a thin veneer over the library; every option maps 1:1 onto an
API parameter documented there.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import __version__
from repro.datasets import (
    make_authority_dataset,
    make_cell_dataset,
    make_ds1,
    make_ds2,
    stream_strings,
    stream_vectors,
    write_string_file,
    write_vector_file,
)
from repro.metrics import (
    DamerauLevenshteinDistance,
    EditDistance,
    EuclideanDistance,
    ManhattanDistance,
)
from repro.pipelines import build_authority_file, cluster_dataset

__all__ = ["main"]

_VECTOR_METRICS = {
    "euclidean": EuclideanDistance,
    "manhattan": ManhattanDistance,
}
_STRING_METRICS = {
    "edit": EditDistance,
    "damerau": DamerauLevenshteinDistance,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BUBBLE/BUBBLE-FM: clustering large datasets in arbitrary metric spaces",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic workload to a file")
    gen.add_argument("dataset", choices=["ds1", "ds2", "cell", "strings"])
    gen.add_argument("output", help="output file (CSV for vectors, lines for strings)")
    gen.add_argument("--labels", help="also write ground-truth labels here")
    gen.add_argument("--n-points", type=int, default=10_000)
    gen.add_argument("--n-clusters", type=int, default=50)
    gen.add_argument("--dim", type=int, default=20, help="dimensionality (cell only)")
    gen.add_argument("--seed", type=int, default=0)

    clu = sub.add_parser("cluster", help="cluster a vector CSV or string file")
    clu.add_argument("input", help="input file")
    clu.add_argument("--type", choices=["vectors", "strings"], required=True)
    clu.add_argument("--metric", default=None,
                     help="euclidean|manhattan (vectors), edit|damerau (strings)")
    clu.add_argument("--algorithm", choices=["bubble", "bubble-fm"], default="bubble")
    clu.add_argument("--n-clusters", type=int, default=None,
                     help="run the hierarchical global phase down to K clusters")
    clu.add_argument(
        "--global-phase", choices=["hac", "clarans", "clara"], default="hac",
        help="global phase over the sub-cluster clustroids: hac (paper "
             "default), clarans (exact medoid search), or clara (sampled "
             "parallel medoid search; see docs/performance.md)",
    )
    clu.add_argument(
        "--global-samples", type=int, default=5, metavar="N",
        help="subsamples searched by the clara global phase (default 5)",
    )
    clu.add_argument(
        "--global-sample-size", type=int, default=None, metavar="N",
        help="clustroids per clara subsample (default 40 + 2K)",
    )
    clu.add_argument("--max-nodes", type=int, default=None)
    clu.add_argument("--threshold", type=float, default=0.0)
    clu.add_argument("--image-dim", type=int, default=3)
    clu.add_argument("--output", help="write one label per input line here")
    clu.add_argument("--seed", type=int, default=0)
    clu.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parallel sharded build: scan in N worker processes and merge "
             "the shard trees deterministically (see docs/performance.md)",
    )
    clu.add_argument(
        "--trace", default=None, metavar="PATH",
        help="stream a JSONL phase trace here and print an NCD-by-site summary",
    )
    fault = clu.add_argument_group("fault tolerance")
    fault.add_argument(
        "--on-error", choices=["raise", "quarantine"], default="raise",
        help="quarantine objects whose insertion fails instead of aborting",
    )
    fault.add_argument(
        "--quarantine-limit", type=int, default=None, metavar="N",
        help="abort once more than N objects are quarantined",
    )
    fault.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry transient metric failures up to N times (guarded metric)",
    )
    fault.add_argument(
        "--max-distance-calls", type=int, default=None, metavar="N",
        help="hard NCD budget; the scan stops cleanly when exhausted",
    )
    fault.add_argument(
        "--deadline-seconds", type=float, default=None, metavar="S",
        help="wall-clock budget for all distance calls",
    )
    fault.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write a resumable tree snapshot here during the scan "
             "(with --jobs > 1: a directory of per-shard checkpoints)",
    )
    fault.add_argument(
        "--checkpoint-every", type=int, default=1000, metavar="N",
        help="snapshot period in objects (default 1000)",
    )
    fault.add_argument(
        "--resume-from", default=None, metavar="PATH",
        help="resume an interrupted scan from this checkpoint "
             "(sharded runs resume from the checkpoint directory, "
             "with the same shard count)",
    )
    fault.add_argument(
        "--shard-retries", type=int, default=2, metavar="N",
        help="retry a crashed/hung/aborted shard up to N times before "
             "falling back to an in-process run (default 2; sharded builds)",
    )
    fault.add_argument(
        "--shard-timeout", type=float, default=None, metavar="S",
        help="kill and retry any shard worker running longer than S seconds",
    )
    fault.add_argument(
        "--shard-backoff", type=float, default=0.25, metavar="S",
        help="base delay between shard retries, doubled per attempt "
             "(default 0.25)",
    )

    auth = sub.add_parser("authority", help="build an authority file from records")
    auth.add_argument("input", help="one record per line")
    auth.add_argument("output", help="canonical<TAB>member lines")
    auth.add_argument("--threshold", type=float, default=2.0)
    auth.add_argument("--image-dim", type=int, default=3)
    auth.add_argument("--assignment", choices=["tree", "linear"], default="tree")
    auth.add_argument("--seed", type=int, default=0)
    auth.add_argument(
        "--trace", default=None, metavar="PATH",
        help="stream a JSONL phase trace here and print an NCD-by-site summary",
    )

    ev = sub.add_parser(
        "evaluate", help="score predicted labels against ground truth"
    )
    ev.add_argument("predicted", help="one integer label per line")
    ev.add_argument("truth", help="one integer label per line")

    # The real argument surface lives in repro.analysis.lint.main; main()
    # forwards before this parser runs. Registered here so `repro --help`
    # lists it.
    sub.add_parser("lint", help="run reprolint, the project static analyzer")

    aud = sub.add_parser(
        "audit", help="audit the CF*-tree invariants of a scan checkpoint"
    )
    aud.add_argument("checkpoint", help="checkpoint file written during a scan")
    aud.add_argument("--type", choices=["vectors", "strings"], required=True)
    aud.add_argument("--metric", default=None,
                     help="euclidean|manhattan (vectors), edit|damerau (strings)")
    aud.add_argument(
        "--no-recompute", action="store_true",
        help="skip the from-scratch RowSum recomputation of exact clusters",
    )
    aud.add_argument(
        "--show-warnings", action="store_true",
        help="also print warning-severity findings (drift diagnostics)",
    )

    qr = sub.add_parser(
        "query",
        help="answer nearest/range queries over a scan checkpoint's "
             "sub-cluster clustroids",
    )
    qr.add_argument(
        "checkpoint", help="checkpoint file written during a scan"
    )
    qr.add_argument("--type", choices=["vectors", "strings"], required=True)
    qr.add_argument("--metric", default=None,
                    help="euclidean|manhattan (vectors), edit|damerau (strings)")
    qr.add_argument(
        "--backend", choices=["cftree", "mtree", "vptree", "brute"],
        default="cftree",
        help="index engine (default cftree: reuses the checkpointed tree's "
             "cached geometry)",
    )
    qr.add_argument(
        "--k", type=int, default=None, metavar="K",
        help="k-nearest-neighbour query (default k=1 when --radius is absent)",
    )
    qr.add_argument(
        "--radius", type=float, default=None, metavar="R",
        help="range query: everything within distance R (inclusive)",
    )
    qr.add_argument(
        "--query", action="append", default=None, metavar="Q",
        help="inline query object: comma-separated floats (vectors) or a "
             "string; repeatable",
    )
    qr.add_argument(
        "--query-file", default=None, metavar="PATH",
        help="file of query objects (CSV rows for vectors, one string per line)",
    )
    qr.add_argument("--seed", type=int, default=0,
                    help="seed for the vptree backend's vantage points")
    qr.add_argument(
        "--json", action="store_true",
        help="emit neighbours and query statistics as one JSON object",
    )

    st = sub.add_parser(
        "stats", help="print tree/NCD statistics of a scan checkpoint"
    )
    st.add_argument(
        "checkpoint",
        help="checkpoint file written during a scan, or a sharded "
             "checkpoint directory from a parallel build",
    )
    st.add_argument("--type", choices=["vectors", "strings"], required=True)
    st.add_argument("--metric", default=None,
                    help="euclidean|manhattan (vectors), edit|damerau (strings)")
    st.add_argument(
        "--json", action="store_true",
        help="emit the snapshot as one JSON object instead of a table",
    )
    return parser


def _make_tracer(trace_path: str | None):
    """A JSONL-streaming tracer for ``--trace PATH``, or the no-op default."""
    from repro.observability import NULL_TRACER, JsonlSink, Tracer

    if trace_path is None:
        return NULL_TRACER
    return Tracer(sinks=[JsonlSink(trace_path)])


def _finish_trace(tracer, trace_path: str | None) -> None:
    """Flush the trace file and print the NCD-by-site summary table."""
    from repro.observability import format_summary

    if not tracer.enabled:
        return
    summary = tracer.summary()
    tracer.close()
    print("--- trace summary ---")
    print(format_summary(summary))
    print(f"trace written to {trace_path}")


def _make_metric(kind: str, name: str | None):
    """Construct the metric a CLI command asked for, or None + stderr note."""
    if kind == "vectors":
        label = "vector"
        metric_name = name or "euclidean"
        registry = _VECTOR_METRICS
    else:
        label = "string"
        metric_name = name or "edit"
        registry = _STRING_METRICS
    if metric_name not in registry:
        print(f"error: unknown {label} metric {metric_name!r}", file=sys.stderr)
        return None
    return registry[metric_name]()


def _cmd_generate(args) -> int:
    if args.dataset == "strings":
        ds = make_authority_dataset(
            n_classes=args.n_clusters, n_strings=args.n_points, seed=args.seed
        )
        write_string_file(args.output, ds.strings)
        labels = ds.labels
    else:
        if args.dataset == "ds1":
            ds = make_ds1(n_points=args.n_points, seed=args.seed)
        elif args.dataset == "ds2":
            ds = make_ds2(n_points=args.n_points, n_clusters=args.n_clusters, seed=args.seed)
        else:
            ds = make_cell_dataset(
                dim=args.dim, n_clusters=args.n_clusters,
                n_points=args.n_points, seed=args.seed,
            )
        write_vector_file(args.output, ds.as_objects())
        labels = ds.labels
    if args.labels:
        with open(args.labels, "w", encoding="ascii") as f:
            for lab in labels:
                f.write(f"{int(lab)}\n")
    print(f"wrote {args.n_points} objects to {args.output}")
    return 0


def _cmd_cluster(args) -> int:
    metric = _make_metric(args.type, args.metric)
    if metric is None:
        return 2
    if args.type == "vectors":
        objects = list(stream_vectors(args.input))
    else:
        objects = list(stream_strings(args.input))
    if not objects:
        print("error: input file holds no objects", file=sys.stderr)
        return 2

    if args.retries or args.max_distance_calls or args.deadline_seconds:
        from repro.robustness import GuardedMetric

        metric = GuardedMetric(
            metric,
            on_fault="retry" if args.retries else "raise",
            max_retries=args.retries,
            max_calls=args.max_distance_calls,
            deadline_seconds=args.deadline_seconds,
            seed=args.seed,
        )

    from repro.exceptions import (
        CheckpointError,
        DeadlineExceededError,
        MetricBudgetExceededError,
        ParameterError,
        QuarantineOverflowError,
    )

    n_clusters = args.n_clusters if args.n_clusters is not None else 0
    tracer = _make_tracer(args.trace)
    try:
        result = cluster_dataset(
            objects,
            metric,
            n_clusters=n_clusters if n_clusters > 0 else max(1, len(objects)),
            algorithm=args.algorithm,
            max_nodes=args.max_nodes,
            image_dim=args.image_dim,
            global_phase=args.global_phase,
            global_samples=args.global_samples,
            global_sample_size=args.global_sample_size,
            assign=True,
            seed=args.seed,
            on_error=args.on_error,
            max_quarantine=args.quarantine_limit,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume_from=args.resume_from,
            tracer=tracer,
            n_jobs=args.jobs,
            max_shard_retries=args.shard_retries,
            shard_timeout_seconds=args.shard_timeout,
            shard_retry_backoff=args.shard_backoff,
        )
    except (MetricBudgetExceededError, DeadlineExceededError, QuarantineOverflowError) as exc:
        tracer.close()
        print(f"error: scan aborted: {exc}", file=sys.stderr)
        if args.checkpoint:
            print(f"resume with --resume-from {args.checkpoint}", file=sys.stderr)
        return 3
    except (CheckpointError, ParameterError) as exc:
        tracer.close()
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        tracer.close()
        print(f"error: cannot read checkpoint: {exc}", file=sys.stderr)
        return 2
    labels = result.labels
    print(f"{len(objects)} objects -> {len(result.subclusters)} sub-clusters"
          f" -> {result.n_clusters} clusters")
    print(f"distance calls: {result.n_distance_calls}, "
          f"time: {result.total_seconds:.2f}s")
    report = result.ingest_report
    if report is not None and (
        report.n_quarantined
        or report.n_metric_faults
        or report.n_checkpoints
        or report.resumed_at is not None
        or report.shards_retried
        or report.workers_crashed
        or report.shards_resumed
        or report.global_samples
    ):
        print("--- ingest report ---")
        print(report.format())
        quarantine = result.model.quarantine_
        if quarantine:
            counts = ", ".join(
                f"{name}: {n}" for name, n in sorted(quarantine.counts_by_error().items())
            )
            print(f"quarantine by error: {counts}")
    _finish_trace(tracer, args.trace)
    if args.output:
        with open(args.output, "w", encoding="ascii") as f:
            for lab in labels:
                f.write(f"{int(lab)}\n")
        print(f"labels written to {args.output}")
    return 0


def _cmd_authority(args) -> int:
    records = list(stream_strings(args.input))
    if not records:
        print("error: input file holds no records", file=sys.stderr)
        return 2
    tracer = _make_tracer(args.trace)
    try:
        af = build_authority_file(
            records,
            threshold=args.threshold,
            image_dim=args.image_dim,
            assignment=args.assignment,
            seed=args.seed,
            tracer=tracer,
        )
    except Exception:
        tracer.close()
        raise
    with open(args.output, "w", encoding="utf-8") as f:
        for canonical, members in zip(af.canonical, af.members):
            for member in members:
                f.write(f"{canonical}\t{member}\n")
    print(f"{len(records)} records -> {af.n_classes} classes "
          f"({af.n_distance_calls} distance calls, {af.seconds:.2f}s)")
    _finish_trace(tracer, args.trace)
    print(f"authority file written to {args.output}")
    return 0


def _read_labels(path: str) -> np.ndarray:
    with open(path, "r", encoding="ascii") as f:
        return np.asarray([int(line) for line in f if line.strip()], dtype=np.intp)


def _cmd_evaluate(args) -> int:
    from repro.evaluation import (
        adjusted_rand_index,
        hungarian_accuracy,
        misplaced_count,
        rand_index,
    )

    predicted = _read_labels(args.predicted)
    truth = _read_labels(args.truth)
    if predicted.shape != truth.shape:
        print(
            f"error: {len(predicted)} predictions vs {len(truth)} truth labels",
            file=sys.stderr,
        )
        return 2
    print(f"objects:             {len(predicted)}")
    print(f"predicted clusters:  {len(set(predicted.tolist()))}")
    print(f"true classes:        {len(set(truth.tolist()))}")
    print(f"adjusted Rand index: {adjusted_rand_index(truth, predicted):.4f}")
    print(f"Rand index:          {rand_index(truth, predicted):.4f}")
    print(f"misplaced objects:   {misplaced_count(truth, predicted)}")
    print(f"Hungarian accuracy:  {hungarian_accuracy(truth, predicted):.4f}")
    return 0


def _cmd_audit(args) -> int:
    from repro.analysis import audit_tree
    from repro.core.cftree import CFTree
    from repro.exceptions import CheckpointError
    from repro.persistence import load_checkpoint

    metric = _make_metric(args.type, args.metric)
    if metric is None:
        return 2
    try:
        ck = load_checkpoint(args.checkpoint, metric=metric)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: cannot read checkpoint: {exc}", file=sys.stderr)
        return 2
    if not isinstance(ck.tree, CFTree):
        print("error: checkpoint does not hold a CF*-tree", file=sys.stderr)
        return 2
    report = audit_tree(
        ck.tree,
        recompute_exact=not args.no_recompute,
        raise_on_error=False,
    )
    algorithm = ck.metadata.get("algorithm", "?")
    print(
        f"checkpoint: {algorithm} at cursor {ck.cursor}; "
        f"{ck.tree.n_nodes} nodes, {ck.tree.n_clusters} clusters, "
        f"T={ck.tree.threshold:.6g}, rebuilds={ck.tree.n_rebuilds}"
    )
    print(
        f"audit: {report.n_nodes} nodes and {report.n_features} leaf features "
        f"checked; {len(report.errors)} error(s), {len(report.warnings)} warning(s)"
    )
    for issue in report.errors:
        print(issue.format())
    if args.show_warnings:
        for issue in report.warnings:
            print(issue.format())
    return 0 if report.ok else 1


def _load_snapshot(path: str, metric):
    """(snapshot, algorithm, cursor) of one sequential checkpoint file."""
    from repro.core.cftree import CFTree
    from repro.exceptions import CheckpointError
    from repro.observability import StatsSnapshot
    from repro.persistence import load_checkpoint

    ck = load_checkpoint(path, metric=metric)
    if not isinstance(ck.tree, CFTree):
        raise CheckpointError("checkpoint does not hold a CF*-tree")
    snapshot = StatsSnapshot.from_tree(ck.tree, metric=metric)
    # The freshly attached metric has counted nothing; the scan's NCD lives
    # in the checkpointed ingest report.
    report = ck.state.get("report") or {}
    snapshot.ncd_total = int(report.get("n_distance_calls", snapshot.ncd_total))
    snapshot.apply_report(report)
    return snapshot, ck.metadata.get("algorithm", "?"), ck.cursor


def _cmd_stats_sharded(args, metric) -> int:
    """``repro stats`` on a sharded checkpoint directory: manifest summary
    plus one row (or JSON record) per shard checkpoint present so far."""
    import json as _json
    import os

    from repro.exceptions import CheckpointError
    from repro.persistence import load_shard_manifest, shard_checkpoint_file

    try:
        manifest = load_shard_manifest(args.checkpoint)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    n_shards = int(manifest["n_shards"])
    shards = []
    for shard_id in range(n_shards):
        path = shard_checkpoint_file(args.checkpoint, shard_id)
        if not os.path.exists(path):
            shards.append((shard_id, None, None))
            continue
        try:
            snapshot, _, cursor = _load_snapshot(path, metric)
        except CheckpointError as exc:
            print(f"error: shard {shard_id}: {exc}", file=sys.stderr)
            return 2
        shards.append((shard_id, snapshot, cursor))
    if args.json:
        doc = {
            "sharded": True,
            "algorithm": manifest.get("algorithm", "?"),
            "n_shards": n_shards,
            "seed": manifest.get("seed"),
            "checkpoint_every": manifest.get("checkpoint_every"),
            "shards": [
                {"shard": shard_id, "cursor": cursor, **snapshot.to_dict()}
                if snapshot is not None
                else {"shard": shard_id, "cursor": None}
                for shard_id, snapshot, cursor in shards
            ],
        }
        print(_json.dumps(doc, indent=2, sort_keys=True))
        return 0
    present = sum(1 for _, snapshot, _ in shards if snapshot is not None)
    print(
        f"sharded checkpoint: {manifest.get('algorithm', '?')}, "
        f"{present}/{n_shards} shard checkpoint(s) present"
    )
    for shard_id, snapshot, cursor in shards:
        if snapshot is None:
            print(f"shard {shard_id}: no checkpoint yet")
            continue
        print(
            f"shard {shard_id}: cursor {cursor}, {snapshot.n_objects} objects, "
            f"{snapshot.n_clusters} sub-clusters, T={snapshot.threshold:.6g}, "
            f"{snapshot.ncd_total} distance calls"
        )
    return 0


def _parse_queries(args) -> list | None:
    """Query objects from ``--query``/``--query-file``, or None + stderr note."""
    queries: list = []
    if args.query:
        for raw in args.query:
            if args.type == "vectors":
                try:
                    queries.append(
                        np.asarray(
                            [float(x) for x in raw.replace(",", " ").split()],
                            dtype=np.float64,
                        )
                    )
                except ValueError:
                    print(f"error: cannot parse vector query {raw!r}", file=sys.stderr)
                    return None
            else:
                queries.append(raw)
    if args.query_file:
        if args.type == "vectors":
            queries.extend(stream_vectors(args.query_file))
        else:
            queries.extend(stream_strings(args.query_file))
    if not queries:
        print("error: no queries given (use --query and/or --query-file)",
              file=sys.stderr)
        return None
    return queries


def _cmd_query(args) -> int:
    import json as _json

    from repro.exceptions import CheckpointError, ParameterError
    from repro.index import make_index
    from repro.observability import StatsSnapshot, Tracer
    from repro.persistence import is_sharded_checkpoint, load_checkpoint

    metric = _make_metric(args.type, args.metric)
    if metric is None:
        return 2
    if args.k is not None and args.radius is not None:
        print("error: --k and --radius are mutually exclusive", file=sys.stderr)
        return 2
    if is_sharded_checkpoint(args.checkpoint):
        print(
            "error: query serves sequential checkpoints; merge the sharded "
            "scan first (resume it to completion)",
            file=sys.stderr,
        )
        return 2
    queries = _parse_queries(args)
    if queries is None:
        return 2
    try:
        ck = load_checkpoint(args.checkpoint, metric=metric)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: cannot read checkpoint: {exc}", file=sys.stderr)
        return 2

    tracer = Tracer()
    with tracer.activation():
        try:
            if args.backend == "cftree":
                index = ck.index(metric=metric)
            else:
                kwargs = {"seed": args.seed} if args.backend == "vptree" else {}
                index = make_index(args.backend, metric, **kwargs)
                index.build(
                    [f.clustroid for f in ck.tree.leaf_features()]
                )
        except (CheckpointError, ParameterError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        results = []
        for q in queries:
            if args.radius is not None:
                results.append(index.within(q, args.radius))
            else:
                results.append(index.nearest(q, args.k if args.k else 1))

    snapshot = StatsSnapshot.from_tree(ck.tree, metric=metric, tracer=tracer)
    snapshot.apply_index(index)
    if args.json:
        doc = {
            "backend": index.backend,
            "n_indexed": len(index),
            "results": [r.as_dict() for r in results],
        }
        doc.update(snapshot.to_dict())
        print(_json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(
        f"{args.backend} index over {len(index)} clustroids "
        f"(build NCD {index.stats.build_calls})"
    )
    for q, result in zip(queries, results):
        label = repr(q) if args.type == "strings" else f"vector[{len(q)}]"
        print(
            f"query {label}: {len(result)} neighbour(s), "
            f"{result.n_calls} distance call(s), {result.n_pruned} pruned"
        )
        for n in result:
            shown = repr(n.obj) if args.type == "strings" else f"#{n.index}"
            print(f"  {shown}  index={n.index}  distance={n.distance:.6g}")
    print(snapshot.format())
    return 0


def _cmd_stats(args) -> int:
    import json as _json

    from repro.exceptions import CheckpointError
    from repro.persistence import is_sharded_checkpoint

    metric = _make_metric(args.type, args.metric)
    if metric is None:
        return 2
    if is_sharded_checkpoint(args.checkpoint):
        return _cmd_stats_sharded(args, metric)
    try:
        snapshot, algorithm, cursor = _load_snapshot(args.checkpoint, metric)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: cannot read checkpoint: {exc}", file=sys.stderr)
        return 2
    if args.json:
        doc = {"algorithm": algorithm, "cursor": cursor}
        doc.update(snapshot.to_dict())
        print(_json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(f"checkpoint: {algorithm} at cursor {cursor}")
        print(snapshot.format())
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    arg_list = list(sys.argv[1:] if argv is None else argv)
    if arg_list and arg_list[0] == "lint":
        # reprolint owns its argument surface (shared with
        # `python -m repro.analysis`); forward everything after the verb.
        from repro.analysis.lint import main as lint_main

        return lint_main(arg_list[1:])
    args = _build_parser().parse_args(arg_list)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    if args.command == "audit":
        return _cmd_audit(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "query":
        return _cmd_query(args)
    return _cmd_authority(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
