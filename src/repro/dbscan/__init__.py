"""Density-based clustering for arbitrary metric spaces.

Section 2 of the paper rules DBSCAN out for distance spaces: "Since DBSCAN
relies on the R*-Tree for speed and scalability in its nearest neighbor
search queries, it cannot cluster data in a distance space." The limitation
is the *index*, not the algorithm — DBSCAN's region queries only need a
metric. This package pairs the classic DBSCAN expansion with this
repository's M-tree (which indexes any metric space) to lift the
restriction, giving a density-based comparator for workloads where clusters
are not convex.
"""

from repro.dbscan.dbscan import NOISE, MetricDBSCAN

__all__ = ["MetricDBSCAN", "NOISE"]
