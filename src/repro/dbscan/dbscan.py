"""DBSCAN (Ester, Kriegel, Sander & Xu, KDD 1996) over an M-tree.

Standard definitions: an object is a *core* object if at least ``min_pts``
objects (itself included) lie within ``eps`` of it; clusters are the
transitive closure of core objects over the eps-neighbourhood relation;
non-core objects within eps of a core object join its cluster (border
objects); everything else is noise.

Region queries go through :class:`repro.mtree.MTree`, so the only
requirement on the data is a distance function with the triangle
inequality — exactly the paper's distance-space contract.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

import numpy as np

from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.metrics.base import DistanceFunction
from repro.metrics.tagged import TaggedMetric
from repro.mtree import MTree
from repro.utils.validation import check_integer, check_positive

__all__ = ["MetricDBSCAN", "NOISE"]

#: Label assigned to noise objects.
NOISE = -1


class MetricDBSCAN:
    """Density-based clustering of any metric space via M-tree region queries.

    Parameters
    ----------
    eps:
        Neighbourhood radius.
    min_pts:
        Minimum neighbourhood size (including the object itself) for a core
        object.
    metric:
        The distance function; NCD accumulates on it.
    node_capacity:
        M-tree node capacity.

    Attributes
    ----------
    labels_:
        Cluster index per object; ``NOISE`` (= -1) marks noise.
    core_mask_:
        Boolean array marking core objects.
    n_clusters_:
        Number of clusters discovered.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.metrics import EuclideanDistance
    >>> pts = [np.array([0.0, i * 0.1]) for i in range(20)]
    >>> pts += [np.array([10.0, 0.0])]
    >>> model = MetricDBSCAN(eps=0.2, min_pts=3, metric=EuclideanDistance())
    >>> model.fit(pts).n_clusters_
    1
    >>> int(model.labels_[-1]) == NOISE
    True
    """

    def __init__(
        self,
        eps: float,
        min_pts: int,
        metric: DistanceFunction,
        node_capacity: int = 8,
    ):
        if not isinstance(metric, DistanceFunction):
            raise ParameterError("metric must be a DistanceFunction")
        self.eps = check_positive(eps, "eps")
        self.min_pts = check_integer(min_pts, "min_pts", minimum=1)
        self.metric = metric
        self.node_capacity = check_integer(node_capacity, "node_capacity", minimum=2)
        self.labels_: np.ndarray | None = None
        self.core_mask_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, objects: Sequence) -> "MetricDBSCAN":
        objects = list(objects)
        n = len(objects)
        if n == 0:
            raise EmptyDatasetError("MetricDBSCAN.fit requires at least one object")

        index = MTree(TaggedMetric(self.metric), node_capacity=self.node_capacity)
        for i, obj in enumerate(objects):
            index.insert((i, obj))

        labels = np.full(n, NOISE, dtype=np.intp)
        core = np.zeros(n, dtype=bool)
        visited = np.zeros(n, dtype=bool)
        neighbour_cache: dict[int, list[int]] = {}

        def region(i: int) -> list[int]:
            if i not in neighbour_cache:
                hits = index.range_query((i, objects[i]), self.eps)
                neighbour_cache[i] = [tag for tag, _ in hits]
            return neighbour_cache[i]

        cluster_id = 0
        for start in range(n):
            if visited[start]:
                continue
            visited[start] = True
            neighbours = region(start)
            if len(neighbours) < self.min_pts:
                continue  # stays noise unless later claimed as border
            core[start] = True
            labels[start] = cluster_id
            queue = deque(neighbours)
            while queue:
                j = queue.popleft()
                if labels[j] == NOISE:
                    labels[j] = cluster_id  # border or soon-to-be core
                if visited[j]:
                    continue
                visited[j] = True
                j_neighbours = region(j)
                if len(j_neighbours) >= self.min_pts:
                    core[j] = True
                    queue.extend(j_neighbours)
            # Expansion done: free cached neighbourhoods of this cluster.
            neighbour_cache.clear()
            cluster_id += 1

        self.labels_ = labels
        self.core_mask_ = core
        return self

    # ------------------------------------------------------------------
    @property
    def n_clusters_(self) -> int:
        if self.labels_ is None:
            raise NotFittedError("MetricDBSCAN has not been fitted")
        non_noise = self.labels_[self.labels_ != NOISE]
        return int(non_noise.max()) + 1 if non_noise.size else 0

    @property
    def n_noise_(self) -> int:
        if self.labels_ is None:
            raise NotFittedError("MetricDBSCAN has not been fitted")
        return int(np.sum(self.labels_ == NOISE))
