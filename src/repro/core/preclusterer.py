"""User-facing single-scan pre-clustering drivers.

:class:`BUBBLE` and :class:`BUBBLEFM` wrap a CF*-tree with the corresponding
policy and expose an estimator-style API::

    model = BUBBLE(metric=EditDistance(), max_nodes=200, seed=0)
    model.fit(strings)                 # one sequential scan
    model.subclusters_                 # condensed sub-cluster summaries
    labels = model.assign(strings)     # optional second scan (Section 6.1)

Following the paper's positioning (Section 2), these are *pre-clustering*
algorithms: they compress the dataset into sub-clusters a domain-specific
method can refine — :mod:`repro.pipelines` chains them with a hierarchical
global phase exactly as the evaluation methodology does.
"""

from __future__ import annotations

import itertools
import time
from collections.abc import Iterable
from typing import Any

import numpy as np

from repro.core.bubble import BubblePolicy
from repro.core.bubble_fm import BubbleFMPolicy
from repro.core.cftree import DEFAULT_HINT_CHUNK, CFTree
from repro.core.features import SubCluster
from repro.exceptions import (
    CheckpointError,
    DeadlineExceededError,
    EmptyDatasetError,
    MetricBudgetExceededError,
    NotFittedError,
    ParameterError,
    QuarantineOverflowError,
    TreeInvariantError,
)
from repro.metrics.base import DistanceFunction
from repro.observability import NULL_TRACER, NullTracer
from repro.robustness.report import IngestReport
from repro.robustness.quarantine import Quarantine
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_integer

__all__ = ["PreClusterer", "BUBBLE", "BUBBLEFM"]

#: Failures that must abort the scan even under ``on_error="quarantine"``:
#: budget/deadline exhaustion is a global stop condition, quarantine
#: overflow is the circuit breaker itself, and an invariant violation means
#: the tree is no longer trustworthy.
_NON_QUARANTINABLE = (
    MetricBudgetExceededError,
    DeadlineExceededError,
    QuarantineOverflowError,
    TreeInvariantError,
)


class PreClusterer:
    """Base driver: scan objects once, maintain a CF*-tree, expose results.

    Parameters
    ----------
    metric:
        The distance function defining the space.
    branching_factor:
        Max entries per tree node (``B``; paper experiments use 15).
    sample_size:
        Sample objects per non-leaf node (``SS``; paper experiments use 75,
        i.e. ``5 * B``).
    representation_number:
        Representatives per leaf cluster (``2p``; paper experiments use 10).
    max_nodes:
        Node budget ``M``; the tree rebuilds with a larger threshold when it
        exceeds this. ``None`` disables rebuilds.
    threshold:
        Initial threshold ``T`` (default 0, as in BIRCH).
    outlier_fraction:
        Optional BIRCH-style outlier handling: during rebuilds, clusters
        smaller than this fraction of the average size are parked rather
        than re-inserted, then re-absorbed after the scan. ``None`` (the
        paper's setting) disables it.
    seed:
        Seed or generator for all stochastic choices (sampling, pivots).
    tracer:
        A :class:`repro.observability.Tracer` recording phase spans and
        per-site NCD attribution for every scan this model runs. The
        default no-op :data:`~repro.observability.NULL_TRACER` adds no
        overhead (and no extra distance calls).
    validate:
        ``"debug"`` audits every split/rebuild with the invariant
        sanitizer (:func:`repro.analysis.audit.audit_tree`); ``None``
        (default) skips runtime checking.
    prune:
        Route through the exact triangle-inequality pruned engine
        (:mod:`repro.core.routing`). The clustering is bit-identical
        either way; pruning only reduces NCD. On by default.
    batch_size:
        When set, :meth:`partial_fit` feeds the tree bounded blocks of
        this many objects via :meth:`CFTree.insert_batch`, amortizing
        root-level pivot distances across the block. The resulting tree is
        identical to sequential insertion. Only applies under
        ``on_error="raise"`` — per-object quarantine needs the sequential
        path — and requires ``prune`` (the hints feed the pruned engine).
        ``None`` (default) keeps the one-object-at-a-time scan.
    hint_chunk:
        Block-insert hint-gather chunk size forwarded to the CF*-tree
        (see :class:`repro.core.cftree.CFTree`); surfaced in the pruned
        engine's ``PruningStats.hint_chunk``.
    n_jobs:
        Worker processes for a sharded build. The default 1 keeps the
        paper's sequential single scan. Any other value (or an explicit
        ``n_shards``) routes :meth:`fit` through :mod:`repro.parallel`:
        the stream is split into shards, each worker runs this driver's
        ``fit`` on its shard with its own metric copy, and the shard
        trees' leaf CF*s are merged deterministically into this model's
        final tree. Requires a picklable metric.
    n_shards:
        Logical shard count of the parallel build — the determinism-
        bearing knob: for a fixed ``(seed, n_shards)`` the merged tree is
        identical whatever ``n_jobs`` executes it. Defaults to ``n_jobs``.
    max_shard_retries:
        Recoverable shard failures (worker crash, timeout, budget abort,
        metric exception) are retried up to this many times with
        exponential backoff before the shard is re-run inline in the
        parent as a last resort. 0 disables retries (the inline fallback
        still runs).
    shard_timeout_seconds:
        Per-shard wall-clock limit in a parallel build: a worker
        exceeding it is killed and its shard retried. ``None`` (default)
        never times a worker out.
    shard_retry_backoff:
        Base delay of the exponential backoff between shard retries
        (doubles per attempt).
    """

    def __init__(
        self,
        metric: DistanceFunction,
        branching_factor: int = 15,
        sample_size: int = 75,
        representation_number: int = 10,
        max_nodes: int | None = None,
        threshold: float = 0.0,
        outlier_fraction: float | None = None,
        seed: int | np.random.Generator | None = None,
        tracer: NullTracer = NULL_TRACER,
        validate: str | None = None,
        prune: bool = True,
        batch_size: int | None = None,
        hint_chunk: int = DEFAULT_HINT_CHUNK,
        n_jobs: int = 1,
        n_shards: int | None = None,
        max_shard_retries: int = 2,
        shard_timeout_seconds: float | None = None,
        shard_retry_backoff: float = 0.25,
    ):
        self.metric = metric
        self.tracer = tracer
        self.branching_factor = branching_factor
        self.sample_size = sample_size
        self.representation_number = representation_number
        self.max_nodes = max_nodes
        self.initial_threshold = threshold
        self.outlier_fraction = outlier_fraction
        self.validate = validate
        self.prune = bool(prune)
        if batch_size is not None:
            batch_size = check_integer(batch_size, "batch_size", minimum=2)
            if not self.prune:
                raise ParameterError("batch_size requires prune=True")
        self.batch_size = batch_size
        self.hint_chunk = check_integer(hint_chunk, "hint_chunk", minimum=1)
        self.n_jobs = check_integer(n_jobs, "n_jobs", minimum=1)
        if n_shards is not None:
            n_shards = check_integer(n_shards, "n_shards", minimum=1)
        self.n_shards = n_shards
        self.max_shard_retries = check_integer(
            max_shard_retries, "max_shard_retries", minimum=0
        )
        if shard_timeout_seconds is not None and shard_timeout_seconds <= 0:
            raise ParameterError(
                f"shard_timeout_seconds must be > 0, got {shard_timeout_seconds}"
            )
        self.shard_timeout_seconds = shard_timeout_seconds
        if shard_retry_backoff < 0:
            raise ParameterError(
                f"shard_retry_backoff must be >= 0, got {shard_retry_backoff}"
            )
        self.shard_retry_backoff = float(shard_retry_backoff)
        #: The raw seed argument, kept so a sharded build can derive
        #: independent, reproducible per-shard seeds from it.
        self._seed = seed
        self._rng = ensure_rng(seed)
        self.tree_: CFTree | None = None
        self.quarantine_: Quarantine = Quarantine()
        self.ingest_report_: IngestReport = IngestReport()
        #: Per-shard diagnostics of the last parallel build (empty for a
        #: sequential fit): shard id, objects, sub-clusters, NCD, wall
        #: time, and worker peak RSS.
        self.shard_summaries_: list[dict] = []
        #: Per-sample diagnostics of the last sampled global phase (empty
        #: until :meth:`global_phase` runs with ``method="clara"``).
        self.global_phase_samples_: list[dict] = []
        self._cursor = 0

    # -- subclasses supply the policy ---------------------------------
    def _make_policy(self) -> BubblePolicy:
        raise NotImplementedError

    def _shard_params(self) -> dict:
        """Constructor kwargs a shard worker needs to rebuild this driver.

        Everything except ``metric``, ``seed``, ``tracer``, and the
        parallel knobs themselves (shard drivers are always sequential).
        Subclasses with extra constructor parameters must extend this.
        """
        return dict(
            branching_factor=self.branching_factor,
            sample_size=self.sample_size,
            representation_number=self.representation_number,
            max_nodes=self.max_nodes,
            threshold=self.initial_threshold,
            outlier_fraction=self.outlier_fraction,
            validate=self.validate,
            prune=self.prune,
            batch_size=self.batch_size,
            hint_chunk=self.hint_chunk,
        )

    # ------------------------------------------------------------------
    def fit(
        self,
        objects: Iterable,
        *,
        on_error: str = "raise",
        max_quarantine: int | None = None,
        checkpoint_path: Any=None,
        checkpoint_every: int = 1000,
        resume_from: Any=None,
    ) -> "PreClusterer":
        """Cluster ``objects`` in a single sequential scan.

        Parameters
        ----------
        on_error:
            ``"raise"`` (default) propagates any insertion failure;
            ``"quarantine"`` parks the failing object in
            :attr:`quarantine_` and continues the scan (see
            :meth:`partial_fit` for the exact rules).
        max_quarantine:
            Quarantine capacity; overflowing it raises
            :class:`~repro.exceptions.QuarantineOverflowError`.
        checkpoint_path:
            When set, a full tree snapshot is written here (atomically)
            every ``checkpoint_every`` objects via
            :func:`repro.persistence.save_checkpoint`. For a sharded
            build (``n_jobs > 1`` or ``n_shards`` set) this is a
            *directory*: each worker checkpoints its own shard into it,
            next to a manifest pinning the partition.
        checkpoint_every:
            Snapshot period, in objects consumed from the stream.
        resume_from:
            Path of a checkpoint written by a previous, interrupted scan
            over the *same* object sequence. The tree, RNG state,
            quarantine buffer, and report are restored, and the first
            ``cursor`` objects of ``objects`` are skipped, so the resumed
            run reproduces the uninterrupted one exactly (same seed, same
            metric). A sharded build resumes from a sharded checkpoint
            directory written with the same ``n_shards``, algorithm, and
            seed; mixing sequential and sharded checkpoints raises
            :class:`~repro.exceptions.CheckpointError`.
        """
        if self.n_jobs > 1 or self.n_shards is not None:
            from repro.parallel import parallel_fit

            parallel_fit(
                self,
                objects,
                on_error=on_error,
                max_quarantine=max_quarantine,
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every,
                resume_from=resume_from,
            )
            return self
        if resume_from is not None:
            self._restore_checkpoint(resume_from)
            objects = itertools.islice(iter(objects), self._cursor, None)
        else:
            self.tree_ = None
            self._cursor = 0
            self.quarantine_ = Quarantine(max_size=max_quarantine)
            self.ingest_report_ = IngestReport()
        self.partial_fit(
            objects,
            on_error=on_error,
            max_quarantine=max_quarantine,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )
        if self.tree_.n_objects == 0:
            n_parked = len(self.quarantine_)
            self.tree_ = None
            if n_parked:
                raise EmptyDatasetError(
                    f"every one of the {n_parked} scanned objects was "
                    "quarantined; nothing to cluster"
                )
            raise EmptyDatasetError("fit requires at least one object")
        if self.outlier_fraction is not None:
            finish = time.perf_counter()
            with self.tracer.activation():
                self.tree_.reabsorb_outliers()
            self.ingest_report_.elapsed_seconds += time.perf_counter() - finish
        self._sync_report()
        return self

    def partial_fit(
        self,
        objects: Iterable,
        *,
        on_error: str = "raise",
        max_quarantine: int | None = None,
        checkpoint_path: Any=None,
        checkpoint_every: int = 1000,
    ) -> "PreClusterer":
        """Absorb one more batch of objects into the evolving clustering.

        BIRCH*'s incremental nature makes streaming ingestion free: batches
        arriving over time are simply a segmented version of the single
        scan. Unlike :meth:`fit`, an existing tree is extended rather than
        replaced, and parked outliers are *not* re-absorbed (call
        :meth:`finalize` when the stream ends).

        With ``on_error="quarantine"``, an object whose insertion raises is
        parked in :attr:`quarantine_` and the scan continues — but only
        when the failure provably left the tree untouched (the object was
        not counted and a structural invariant check passes). Failures
        mid-rebuild or mid-split, budget/deadline exhaustion, and
        quarantine overflow still propagate; recover from those with
        checkpoints.
        """
        if on_error not in ("raise", "quarantine"):
            raise ParameterError(
                f'on_error must be "raise" or "quarantine", got {on_error!r}'
            )
        if checkpoint_path is not None:
            checkpoint_every = check_integer(
                checkpoint_every, "checkpoint_every", minimum=1
            )
        start = time.perf_counter()
        if self.tree_ is None:
            policy = self._make_policy()
            policy.tracer = self.tracer
            self.tree_ = CFTree(
                policy,
                branching_factor=self.branching_factor,
                max_nodes=self.max_nodes,
                threshold=self.initial_threshold,
                outlier_fraction=self.outlier_fraction,
                seed=self._rng,
                tracer=self.tracer,
                validate=self.validate,
                hint_chunk=self.hint_chunk,
            )
        elif self.tree_.tracer is not self.tracer:
            # A tree restored from a checkpoint carries the no-op tracer;
            # re-attach this model's so the resumed scan is traced too.
            self.tree_.tracer = self.tracer
            self.tree_.policy.tracer = self.tracer
        if max_quarantine is not None and self.quarantine_.max_size is None:
            self.quarantine_.max_size = max_quarantine
        tree = self.tree_
        report = self.ingest_report_
        try:
            with self.tracer.activation():
                if self.batch_size is not None and on_error == "raise":
                    self._scan_batched(
                        objects, checkpoint_path, checkpoint_every
                    )
                else:
                    # Per-object quarantine needs the sequential path, so
                    # batch_size is ignored under on_error="quarantine".
                    for obj in objects:
                        index = self._cursor
                        self._cursor += 1
                        report.n_seen += 1
                        if on_error == "raise":
                            tree.insert(obj)
                            report.n_inserted += 1
                        else:
                            self._insert_or_quarantine(obj, index)
                        if checkpoint_path is not None and self._cursor % checkpoint_every == 0:
                            self._write_checkpoint(checkpoint_path)
        finally:
            report.elapsed_seconds += time.perf_counter() - start
            self._sync_report()
        return self

    def _scan_batched(
        self, objects: Iterable, checkpoint_path: Any, checkpoint_every: int
    ) -> None:
        """Feed the stream to the tree in bounded ``batch_size`` blocks.

        Checkpoints land on block boundaries: one is written whenever a
        block crosses a ``checkpoint_every`` multiple of the cursor, so a
        resumed scan sees the same cadence within one block width.
        """
        tree = self.tree_
        report = self.ingest_report_
        block: list = []

        def flush() -> None:
            before = self._cursor
            tree.insert_batch(block)
            self._cursor += len(block)
            report.n_seen += len(block)
            report.n_inserted += len(block)
            if checkpoint_path is not None and (
                self._cursor // checkpoint_every > before // checkpoint_every
            ):
                self._write_checkpoint(checkpoint_path)

        for obj in objects:
            block.append(obj)
            if len(block) >= self.batch_size:
                flush()
                block = []
        if block:
            flush()

    # ------------------------------------------------------------------
    # Fault-tolerant insertion
    # ------------------------------------------------------------------
    def _insert_or_quarantine(self, obj: Any, index: int) -> None:
        tree = self.tree_
        n_before = tree.n_objects
        try:
            tree.insert(obj)
            self.ingest_report_.n_inserted += 1
        except _NON_QUARANTINABLE:
            raise
        except Exception as exc:
            if tree.n_objects != n_before or not self._tree_is_sound():
                # The object was (partially) applied, or the failure left
                # structural damage: continuing would corrupt results.
                raise
            self.quarantine_.add(index, obj, exc)
            self.ingest_report_.n_quarantined += 1

    def _tree_is_sound(self) -> bool:
        """Metric-free structural check after a failed insert."""
        try:
            self.tree_.check_invariants()
        except TreeInvariantError:
            return False
        return True

    def _sync_report(self) -> None:
        """Pull metric-side and tree-side counters into the report."""
        report = self.ingest_report_
        report.n_distance_calls = self.metric.n_calls
        if self.tree_ is not None:
            report.n_rebuilds = self.tree_.n_rebuilds
        metric = self.metric
        report.n_retries = getattr(metric, "n_retries", 0)
        report.n_substitutions = getattr(metric, "n_substitutions", 0)
        report.n_metric_faults = getattr(metric, "n_faults", 0)

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def _write_checkpoint(self, path: Any) -> None:
        from repro.persistence import save_checkpoint

        self._sync_report()
        save_checkpoint(
            path,
            self.tree_,
            cursor=self._cursor,
            state={
                "quarantine": self.quarantine_.get_state(),
                "report": self.ingest_report_.to_dict(),
            },
            metadata={
                "algorithm": type(self).__name__,
                "branching_factor": self.branching_factor,
                "max_nodes": self.max_nodes,
            },
        )
        self.ingest_report_.n_checkpoints += 1

    def _restore_checkpoint(self, path: Any) -> None:
        from repro.persistence import load_checkpoint

        ck = load_checkpoint(path, metric=self.metric)
        algorithm = ck.metadata.get("algorithm")
        if algorithm is not None and algorithm != type(self).__name__:
            raise CheckpointError(
                f"checkpoint was written by {algorithm}, "
                f"cannot resume with {type(self).__name__}"
            )
        if not isinstance(ck.tree, CFTree):
            raise CheckpointError("checkpoint does not hold a CF*-tree")
        self.tree_ = ck.tree
        # The tree, its policy, and this model must keep sharing one
        # generator — pickle preserved the tree/policy identity, so adopt it.
        self._rng = ck.tree._rng
        self._cursor = ck.cursor
        self.quarantine_ = Quarantine.from_state(ck.state.get("quarantine"))
        self.ingest_report_ = IngestReport.from_dict(ck.state.get("report"))
        self.ingest_report_.resumed_at = ck.cursor
        self.ingest_report_.n_checkpoints = 0

    def finalize(self) -> "PreClusterer":
        """End a :meth:`partial_fit` stream: re-absorb parked outliers."""
        tree = self._require_tree()
        if self.outlier_fraction is not None:
            with self.tracer.activation():
                tree.reabsorb_outliers()
        return self

    def summary(self) -> dict:
        """Diagnostics for the fitted model, ready for logging."""
        tree = self._require_tree()
        return {
            "algorithm": type(self).__name__,
            "n_objects": tree.n_objects,
            "n_subclusters": tree.n_clusters,
            "n_nodes": tree.n_nodes,
            "height": tree.height,
            "threshold": tree.threshold,
            "n_rebuilds": tree.n_rebuilds,
            "n_outliers_parked": tree.n_outliers_parked,
            "n_quarantined": len(self.quarantine_),
            "n_distance_calls": self.metric.n_calls,
        }

    def _require_tree(self) -> CFTree:
        if self.tree_ is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted yet")
        return self.tree_

    # ------------------------------------------------------------------
    # Global phase (Section 3.2): medoid search over the leaf clustroids
    # ------------------------------------------------------------------
    def global_phase(
        self,
        n_clusters: int,
        *,
        method: str = "clarans",
        num_local: int = 2,
        max_neighbors: int | None = None,
        global_samples: int = 5,
        global_sample_size: int | None = None,
        seed: Any = None,
        chaos: Any = None,
    ) -> Any:
        """Run a medoid global phase over the fitted tree's clustroids.

        ``method="clarans"`` is the exact sequential search (the quality
        reference); ``"clara"`` draws ``global_samples`` population-weighted
        subsamples of the clustroids, searches each across this model's
        worker pool (``n_jobs``), and keeps the candidate with the best
        full-clustroid-set weighted cost — see :class:`repro.clarans.CLARA`.
        Sub-cluster populations weight both the draws and the scoring, so
        big leaves count proportionally.

        Returns the fitted search object (``CLARANS`` or ``CLARA``); CLARA
        runs also record per-sample diagnostics in
        :attr:`global_phase_samples_` and fold sample totals into
        :attr:`ingest_report_`.
        """
        if method not in ("clarans", "clara"):
            raise ParameterError(
                f'global-phase method must be "clarans" or "clara", got {method!r}'
            )
        subclusters = self.subclusters_
        clustroids = [s.clustroid for s in subclusters]
        weights = [float(s.n) for s in subclusters]
        k = min(int(n_clusters), len(clustroids))
        if seed is None:
            seed = self._seed
        if method == "clarans":
            from repro.clarans import CLARANS

            search: Any = CLARANS(
                k,
                self.metric,
                num_local=num_local,
                max_neighbors=max_neighbors,
                seed=seed,
            )
            with self.tracer.activation(), self.tracer.span("global-phase"):
                search.fit(clustroids)
            self.global_phase_samples_ = []
        else:
            from repro.clarans import CLARA

            search = CLARA(
                k,
                self.metric,
                n_samples=global_samples,
                sample_size=global_sample_size,
                num_local=num_local,
                max_neighbors=max_neighbors,
                n_jobs=self.n_jobs,
                seed=seed,
                tracer=self.tracer,
                max_retries=self.max_shard_retries,
                retry_backoff=self.shard_retry_backoff,
                chaos=chaos,
            )
            search.fit(clustroids, weights=weights)
            self.global_phase_samples_ = list(search.sample_summaries_)
            report = self.ingest_report_
            report.global_samples = len(search.sample_summaries_)
            report.global_sample_ncd = sum(
                int(s["n_calls"]) for s in search.sample_summaries_
            )
            report.global_sample_seconds = sum(
                float(s["elapsed_seconds"]) for s in search.sample_summaries_
            )
            report.n_distance_calls = self.metric.n_calls
        return search

    @property
    def subclusters_(self) -> list[SubCluster]:
        """Condensed summaries of the discovered sub-clusters."""
        return [
            SubCluster(
                clustroid=f.clustroid,
                n=f.n,
                radius=f.radius,
                representatives=f.representatives,
            )
            for f in self._require_tree().leaf_features()
        ]

    @property
    def clustroids_(self) -> list:
        """Clustroid of each sub-cluster, in leaf order."""
        return [f.clustroid for f in self._require_tree().leaf_features()]

    @property
    def n_subclusters_(self) -> int:
        return self._require_tree().n_clusters

    @property
    def n_distance_calls_(self) -> int:
        """NCD so far on this model's metric (fit + any later scans)."""
        return self.metric.n_calls

    def index(self, backend: str = "cftree", **kwargs: Any):
        """A ready :class:`~repro.index.MetricIndex` over the sub-cluster
        clustroids (in :attr:`clustroids_` order, any backend).

        ``backend="cftree"`` (default) is the cheap path: it reuses the
        fitted tree's cached leaf geometry, so the only counted calls are
        the non-leaf anchor distances. Other backends (``"mtree"``,
        ``"vptree"``, ``"brute"``) build from scratch over the clustroid
        list. Extra keyword arguments go to the backend constructor
        (e.g. ``bound_cache=`` to share one cross-query cache).
        """
        tree = self._require_tree()
        if backend == "cftree":
            from repro.index.cftree import CFTreeIndex

            return CFTreeIndex.from_tree(tree, metric=self.metric, **kwargs)
        from repro.index import make_index

        idx = make_index(backend, self.metric, **kwargs)
        idx.build(self.clustroids_)
        return idx

    def assign(self, objects: Iterable, via: str = "linear") -> np.ndarray:
        """Second scan: label each object with its nearest sub-cluster.

        Mirrors the evaluation methodology of Section 6.1: "the dataset is
        scanned a second time to associate each object with a cluster whose
        representative object is closest to it."

        Parameters
        ----------
        via:
            ``"linear"`` compares each object against every clustroid
            (exact; ``O(K)`` distance calls per object). ``"tree"`` routes
            each object down the CF*-tree (logarithmic cost, slightly
            approximate) — the option that makes the second phase viable
            when there are thousands of sub-clusters and the metric is
            expensive, as in the data-cleaning application of Section 7.
            ``"mtree"`` builds an M-tree over the clustroids once and
            answers each lookup with an exact nearest-neighbour query —
            exact like ``"linear"``, sublinear per object like ``"tree"``.
        """
        tree = self._require_tree()
        with self.tracer.activation(), self.tracer.span("redistribute"):
            if via == "linear":
                clustroids = self.clustroids_
                labels = [
                    int(np.argmin(self.metric.one_to_many(obj, clustroids)))
                    for obj in objects
                ]
            elif via == "tree":
                index = {id(f): i for i, f in enumerate(tree.leaf_features())}
                labels = [index[id(tree.nearest_leaf_feature(obj))] for obj in objects]
            elif via == "mtree":
                from repro.mtree import MTree

                # Neighbour indices are clustroid positions, so repeated
                # clustroids (equal-valued objects in different clusters)
                # stay unambiguous, and the (distance, index) tie-break
                # matches the linear scan's argmin-first-index exactly.
                index = MTree(self.metric, node_capacity=8)
                index.build(self.clustroids_)
                labels = [
                    index.nearest(obj).neighbors[0].index for obj in objects
                ]
            else:
                raise ParameterError(
                    f'via must be "linear", "tree" or "mtree", got {via!r}'
                )
        return np.asarray(labels, dtype=np.intp)


class BUBBLE(PreClusterer):
    """BUBBLE: scalable pre-clustering for arbitrary metric spaces.

    Examples
    --------
    >>> from repro.metrics import EuclideanDistance
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> data = list(rng.normal(size=(200, 2)))
    >>> model = BUBBLE(EuclideanDistance(), max_nodes=20, seed=1).fit(data)
    >>> model.n_subclusters_ >= 1
    True
    """

    def _make_policy(self) -> BubblePolicy:
        return BubblePolicy(
            self.metric,
            representation_number=self.representation_number,
            sample_size=self.sample_size,
            seed=self._rng,
            prune=self.prune,
        )


class BUBBLEFM(PreClusterer):
    """BUBBLE-FM: BUBBLE with FastMap routing to cut calls to expensive metrics.

    Additional parameters
    ---------------------
    image_dim:
        Image dimensionality ``k`` of the per-node image spaces.
    fm_iterations:
        FastMap pivot-search passes (``c``).
    mapper:
        Image-space construction: ``"fastmap"`` (the paper's) or
        ``"landmark"`` (Landmark MDS).
    """

    def __init__(
        self,
        metric: DistanceFunction,
        branching_factor: int = 15,
        sample_size: int = 75,
        representation_number: int = 10,
        max_nodes: int | None = None,
        threshold: float = 0.0,
        outlier_fraction: float | None = None,
        image_dim: int = 2,
        fm_iterations: int = 1,
        mapper: str = "fastmap",
        seed: int | np.random.Generator | None = None,
        tracer: NullTracer = NULL_TRACER,
        validate: str | None = None,
        prune: bool = True,
        batch_size: int | None = None,
        hint_chunk: int = DEFAULT_HINT_CHUNK,
        n_jobs: int = 1,
        n_shards: int | None = None,
        max_shard_retries: int = 2,
        shard_timeout_seconds: float | None = None,
        shard_retry_backoff: float = 0.25,
    ):
        super().__init__(
            metric,
            branching_factor=branching_factor,
            sample_size=sample_size,
            representation_number=representation_number,
            max_nodes=max_nodes,
            threshold=threshold,
            outlier_fraction=outlier_fraction,
            seed=seed,
            tracer=tracer,
            validate=validate,
            prune=prune,
            batch_size=batch_size,
            hint_chunk=hint_chunk,
            n_jobs=n_jobs,
            n_shards=n_shards,
            max_shard_retries=max_shard_retries,
            shard_timeout_seconds=shard_timeout_seconds,
            shard_retry_backoff=shard_retry_backoff,
        )
        self.image_dim = image_dim
        self.fm_iterations = fm_iterations
        self.mapper = mapper

    def _shard_params(self) -> dict:
        params = super()._shard_params()
        params.update(
            image_dim=self.image_dim,
            fm_iterations=self.fm_iterations,
            mapper=self.mapper,
        )
        return params

    def _make_policy(self) -> BubbleFMPolicy:
        return BubbleFMPolicy(
            self.metric,
            representation_number=self.representation_number,
            sample_size=self.sample_size,
            image_dim=self.image_dim,
            fm_iterations=self.fm_iterations,
            mapper=self.mapper,
            seed=self._rng,
            prune=self.prune,
        )
