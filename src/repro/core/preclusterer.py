"""User-facing single-scan pre-clustering drivers.

:class:`BUBBLE` and :class:`BUBBLEFM` wrap a CF*-tree with the corresponding
policy and expose an estimator-style API::

    model = BUBBLE(metric=EditDistance(), max_nodes=200, seed=0)
    model.fit(strings)                 # one sequential scan
    model.subclusters_                 # condensed sub-cluster summaries
    labels = model.assign(strings)     # optional second scan (Section 6.1)

Following the paper's positioning (Section 2), these are *pre-clustering*
algorithms: they compress the dataset into sub-clusters a domain-specific
method can refine — :mod:`repro.pipelines` chains them with a hierarchical
global phase exactly as the evaluation methodology does.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.bubble import BubblePolicy
from repro.core.bubble_fm import BubbleFMPolicy
from repro.core.cftree import CFTree
from repro.core.features import SubCluster
from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.metrics.base import DistanceFunction
from repro.utils.rng import ensure_rng

__all__ = ["PreClusterer", "BUBBLE", "BUBBLEFM"]


class PreClusterer:
    """Base driver: scan objects once, maintain a CF*-tree, expose results.

    Parameters
    ----------
    metric:
        The distance function defining the space.
    branching_factor:
        Max entries per tree node (``B``; paper experiments use 15).
    sample_size:
        Sample objects per non-leaf node (``SS``; paper experiments use 75,
        i.e. ``5 * B``).
    representation_number:
        Representatives per leaf cluster (``2p``; paper experiments use 10).
    max_nodes:
        Node budget ``M``; the tree rebuilds with a larger threshold when it
        exceeds this. ``None`` disables rebuilds.
    threshold:
        Initial threshold ``T`` (default 0, as in BIRCH).
    outlier_fraction:
        Optional BIRCH-style outlier handling: during rebuilds, clusters
        smaller than this fraction of the average size are parked rather
        than re-inserted, then re-absorbed after the scan. ``None`` (the
        paper's setting) disables it.
    seed:
        Seed or generator for all stochastic choices (sampling, pivots).
    """

    def __init__(
        self,
        metric: DistanceFunction,
        branching_factor: int = 15,
        sample_size: int = 75,
        representation_number: int = 10,
        max_nodes: int | None = None,
        threshold: float = 0.0,
        outlier_fraction: float | None = None,
        seed: int | np.random.Generator | None = None,
    ):
        self.metric = metric
        self.branching_factor = branching_factor
        self.sample_size = sample_size
        self.representation_number = representation_number
        self.max_nodes = max_nodes
        self.initial_threshold = threshold
        self.outlier_fraction = outlier_fraction
        self._rng = ensure_rng(seed)
        self.tree_: CFTree | None = None

    # -- subclasses supply the policy ---------------------------------
    def _make_policy(self) -> BubblePolicy:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def fit(self, objects: Iterable) -> "PreClusterer":
        """Cluster ``objects`` in a single sequential scan."""
        self.tree_ = None
        self.partial_fit(objects)
        if self.tree_.n_objects == 0:
            self.tree_ = None
            raise EmptyDatasetError("fit requires at least one object")
        if self.outlier_fraction is not None:
            self.tree_.reabsorb_outliers()
        return self

    def partial_fit(self, objects: Iterable) -> "PreClusterer":
        """Absorb one more batch of objects into the evolving clustering.

        BIRCH*'s incremental nature makes streaming ingestion free: batches
        arriving over time are simply a segmented version of the single
        scan. Unlike :meth:`fit`, an existing tree is extended rather than
        replaced, and parked outliers are *not* re-absorbed (call
        :meth:`finalize` when the stream ends).
        """
        if self.tree_ is None:
            policy = self._make_policy()
            self.tree_ = CFTree(
                policy,
                branching_factor=self.branching_factor,
                max_nodes=self.max_nodes,
                threshold=self.initial_threshold,
                outlier_fraction=self.outlier_fraction,
                seed=self._rng,
            )
        for obj in objects:
            self.tree_.insert(obj)
        return self

    def finalize(self) -> "PreClusterer":
        """End a :meth:`partial_fit` stream: re-absorb parked outliers."""
        tree = self._require_tree()
        if self.outlier_fraction is not None:
            tree.reabsorb_outliers()
        return self

    def summary(self) -> dict:
        """Diagnostics for the fitted model, ready for logging."""
        tree = self._require_tree()
        return {
            "algorithm": type(self).__name__,
            "n_objects": tree.n_objects,
            "n_subclusters": tree.n_clusters,
            "n_nodes": tree.n_nodes,
            "height": tree.height,
            "threshold": tree.threshold,
            "n_rebuilds": tree.n_rebuilds,
            "n_outliers_parked": tree.n_outliers_parked,
            "n_distance_calls": self.metric.n_calls,
        }

    def _require_tree(self) -> CFTree:
        if self.tree_ is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted yet")
        return self.tree_

    @property
    def subclusters_(self) -> list[SubCluster]:
        """Condensed summaries of the discovered sub-clusters."""
        return [
            SubCluster(
                clustroid=f.clustroid,
                n=f.n,
                radius=f.radius,
                representatives=f.representatives,
            )
            for f in self._require_tree().leaf_features()
        ]

    @property
    def clustroids_(self) -> list:
        """Clustroid of each sub-cluster, in leaf order."""
        return [f.clustroid for f in self._require_tree().leaf_features()]

    @property
    def n_subclusters_(self) -> int:
        return self._require_tree().n_clusters

    @property
    def n_distance_calls_(self) -> int:
        """NCD so far on this model's metric (fit + any later scans)."""
        return self.metric.n_calls

    def assign(self, objects: Iterable, via: str = "linear") -> np.ndarray:
        """Second scan: label each object with its nearest sub-cluster.

        Mirrors the evaluation methodology of Section 6.1: "the dataset is
        scanned a second time to associate each object with a cluster whose
        representative object is closest to it."

        Parameters
        ----------
        via:
            ``"linear"`` compares each object against every clustroid
            (exact; ``O(K)`` distance calls per object). ``"tree"`` routes
            each object down the CF*-tree (logarithmic cost, slightly
            approximate) — the option that makes the second phase viable
            when there are thousands of sub-clusters and the metric is
            expensive, as in the data-cleaning application of Section 7.
            ``"mtree"`` builds an M-tree over the clustroids once and
            answers each lookup with an exact nearest-neighbour query —
            exact like ``"linear"``, sublinear per object like ``"tree"``.
        """
        tree = self._require_tree()
        if via == "linear":
            clustroids = self.clustroids_
            labels = [
                int(np.argmin(self.metric.one_to_many(obj, clustroids)))
                for obj in objects
            ]
        elif via == "tree":
            index = {id(f): i for i, f in enumerate(tree.leaf_features())}
            labels = [index[id(tree.nearest_leaf_feature(obj))] for obj in objects]
        elif via == "mtree":
            from repro.metrics.tagged import TaggedMetric
            from repro.mtree import MTree

            clustroids = self.clustroids_
            # Clustroids may repeat (equal-valued objects in different
            # clusters); index (position, clustroid) pairs to keep labels
            # unambiguous, measuring only the clustroid component.
            index = MTree(TaggedMetric(self.metric), node_capacity=8)
            for i, c in enumerate(clustroids):
                index.insert((i, c))
            labels = [index.nearest((-1, obj))[1][0] for obj in objects]
        else:
            raise ParameterError(
                f'via must be "linear", "tree" or "mtree", got {via!r}'
            )
        return np.asarray(labels, dtype=np.intp)


class BUBBLE(PreClusterer):
    """BUBBLE: scalable pre-clustering for arbitrary metric spaces.

    Examples
    --------
    >>> from repro.metrics import EuclideanDistance
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> data = list(rng.normal(size=(200, 2)))
    >>> model = BUBBLE(EuclideanDistance(), max_nodes=20, seed=1).fit(data)
    >>> model.n_subclusters_ >= 1
    True
    """

    def _make_policy(self) -> BubblePolicy:
        return BubblePolicy(
            self.metric,
            representation_number=self.representation_number,
            sample_size=self.sample_size,
            seed=self._rng,
        )


class BUBBLEFM(PreClusterer):
    """BUBBLE-FM: BUBBLE with FastMap routing to cut calls to expensive metrics.

    Additional parameters
    ---------------------
    image_dim:
        Image dimensionality ``k`` of the per-node image spaces.
    fm_iterations:
        FastMap pivot-search passes (``c``).
    mapper:
        Image-space construction: ``"fastmap"`` (the paper's) or
        ``"landmark"`` (Landmark MDS).
    """

    def __init__(
        self,
        metric: DistanceFunction,
        branching_factor: int = 15,
        sample_size: int = 75,
        representation_number: int = 10,
        max_nodes: int | None = None,
        threshold: float = 0.0,
        outlier_fraction: float | None = None,
        image_dim: int = 2,
        fm_iterations: int = 1,
        mapper: str = "fastmap",
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__(
            metric,
            branching_factor=branching_factor,
            sample_size=sample_size,
            representation_number=representation_number,
            max_nodes=max_nodes,
            threshold=threshold,
            outlier_fraction=outlier_fraction,
            seed=seed,
        )
        self.image_dim = image_dim
        self.fm_iterations = fm_iterations
        self.mapper = mapper

    def _make_policy(self) -> BubbleFMPolicy:
        return BubbleFMPolicy(
            self.metric,
            representation_number=self.representation_number,
            sample_size=self.sample_size,
            image_dim=self.image_dim,
            fm_iterations=self.fm_iterations,
            mapper=self.mapper,
            seed=self._rng,
        )
