"""The BIRCH* framework and its distance-space instantiations.

Module map (paper section in parentheses):

* :mod:`repro.core.features` — generalized cluster features CF* (3.1) and the
  BUBBLE leaf-level CF* with clustroid / RowSum / representative-object
  maintenance (4.1);
* :mod:`repro.core.nodes` — CF*-tree node structures (3.2);
* :mod:`repro.core.policy` — the abstract instantiation interface: what a
  concrete algorithm must supply to the framework (3.2, last paragraph);
* :mod:`repro.core.cftree` — the CF*-tree itself: insertion, splitting,
  threshold test, rebuilding (3.2);
* :mod:`repro.core.threshold` — threshold-growth heuristic used on rebuild;
* :mod:`repro.core.bubble` — BUBBLE: sample-object routing at non-leaf
  nodes (4.2);
* :mod:`repro.core.bubble_fm` — BUBBLE-FM: FastMap image spaces at non-leaf
  nodes (5);
* :mod:`repro.core.preclusterer` — user-facing single-scan pre-clustering
  drivers.
"""

from repro.core.bubble import BubblePolicy
from repro.core.bubble_fm import BubbleFMPolicy
from repro.core.cftree import CFTree
from repro.core.features import BubbleClusterFeature, ClusterFeature, SubCluster
from repro.core.preclusterer import BUBBLE, BUBBLEFM, PreClusterer

__all__ = [
    "ClusterFeature",
    "BubbleClusterFeature",
    "SubCluster",
    "CFTree",
    "BubblePolicy",
    "BubbleFMPolicy",
    "PreClusterer",
    "BUBBLE",
    "BUBBLEFM",
]
