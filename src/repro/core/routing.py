"""Exact triangle-inequality pruned routing for the CF*-tree.

Descent through the tree is dominated by distance gathers: at a leaf the
insertion step needs ``argmin_i D0(obj, CF_i)`` over the node's clustroids,
and at a non-leaf it needs ``argmin_i D2({obj}, S(NL_i))`` over the entries'
sample sets. The exhaustive implementations measure *every* candidate. This
module prunes candidates with the triangle inequality instead, without
changing a single routing decision:

* Each node keeps the **full pairwise distance matrix** ``D[i, j] =
  d(c_i, c_j)`` over its candidate objects (clustroids at a leaf, sample
  objects at a non-leaf), maintained lazily outside the counted path.
* Routing an object ``q`` measures a small set of initial **pivots**
  exactly. Every exactly-measured candidate ``a`` (pivot or not) becomes
  an *anchor*: the triangle inequality gives the lower bound ``lb_i =
  max_a |d(q, a) - D[a, i]| <= d(q, c_i)`` for every still-unmeasured
  candidate without touching the metric.
* Candidates are then measured **best-first** in ascending lower-bound
  order — each measurement is a batched ``one_to_many`` gather whose
  results immediately tighten the remaining bounds (the AESA refinement
  loop of Vidal Ruiz, adapted to the D0/D2 aggregates) — and the walk
  stops as soon as the smallest open lower bound exceeds the best exact
  distance seen so far. The rest are pruned.

Non-leaf nodes seed the walk with up to ``_MAX_SEGMENT_PIVOTS`` pivots
spread across their sample segments — in clustered data a single reference
point cannot separate two clusters that happen to be equidistant from it,
while pivots in distinct clusters can. Every pivot measurement fills an
exact sample slot, so even a query that prunes nothing issues no more
counted calls than the exhaustive gather.

Exactness
---------
Pruning happens only when ``lb_i`` is *strictly* greater than an exactly
measured distance ``best >= min_j d(q, c_j)``, so a pruned candidate
satisfies ``d(q, c_i) >= lb_i > min_j d(q, c_j)`` — it can never achieve,
or even tie, the minimum. (The best-first walk visits candidates in
ascending ``lb`` order, so when it stops at the first ``lb_i > best``
every remaining candidate is pruned by the same argument.) Pruned slots are reported as ``+inf``; every
measured slot is produced by the same ``one_to_many`` row computation the
exhaustive gather would have used, so the returned array has bit-identical
values at every index that matters and ``np.argmin`` (first minimal index)
selects exactly the entry the exhaustive scan would select. At non-leaf
nodes the same argument lifts through the D2 aggregate because the RMS is
monotone: ``lb_j <= d(q, s_j)`` pointwise (both non-negative) implies
``rms(lb) <= rms(d)`` per segment.

Accounting
----------
Cached geometry maintenance — measuring ``d(p, c_i)`` when a clustroid
drifts or a sample set is redrawn — goes through the *raw* metric hooks and
is deliberately **not** counted toward NCD: the pivot distances are a
reusable index structure, not part of the clustering decision procedure,
and charging them would double-count work the exhaustive algorithm never
performs either. The maintenance volume is tracked honestly in
:class:`PruningStats` (``maintenance_evals``) and surfaced by the stats
snapshot and the benchmark harness. This module is on the reprolint RPL001
allowlist for exactly these reads; every *routing* evaluation goes through
the counted public API under the same call site (``leaf-d0`` /
``nonleaf-d2``) as the exhaustive path.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

import numpy as np

from repro.metrics.base import DistanceFunction, pop_site, push_site

__all__ = [
    "PruningStats",
    "LeafGeometry",
    "SampleGeometry",
    "ensure_leaf_geometry",
    "ensure_sample_geometry",
    "pruned_leaf_distances",
    "pruned_segment_distances",
]


@dataclass
class PruningStats:
    """Counters describing what the pruned routing engine did.

    All counters are cumulative since construction (or :meth:`reset`).
    ``candidates_evaluated + candidates_pruned == candidates_total`` holds
    at all times; ``maintenance_evals`` are raw (uncounted) metric
    evaluations spent keeping pivot geometry fresh.
    """

    #: Routing decisions served by the pruned path.
    queries: int = 0
    #: Lower-bound evaluations (one per open candidate per refinement
    #: round of the best-first walk).
    bound_checks: int = 0
    #: Candidate entries considered across all queries.
    candidates_total: int = 0
    #: Candidates measured exactly (pivot slot, seed, surviving candidates).
    candidates_evaluated: int = 0
    #: Candidates skipped because their lower bound exceeded the best.
    candidates_pruned: int = 0
    #: Raw (NCD-neutral) evaluations spent refreshing cached geometry.
    maintenance_evals: int = 0
    #: Pivot geometries built or rebuilt.
    geometry_builds: int = 0
    #: Batched pivot gathers issued for insert blocks.
    block_gathers: int = 0
    #: Pivot distances precomputed by block gathers.
    block_hints: int = 0
    #: Precomputed hints discarded because the tree changed mid-block.
    block_hints_wasted: int = 0
    #: Configured block-hint gather chunk size — configuration, not a
    #: counter; 0 until a tree adopts these stats (see
    #: ``CFTree(hint_chunk=...)``).
    hint_chunk: int = 0

    #: Fields that describe configuration rather than accumulated work.
    _CONFIG_FIELDS = ("hint_chunk",)

    def as_dict(self) -> dict[str, int]:
        """JSON-compatible copy of every counter."""
        return asdict(self)

    def reset(self) -> None:
        """Zero every counter (configuration fields keep their value)."""
        for name in self.__dataclass_fields__:
            if name not in self._CONFIG_FIELDS:
                setattr(self, name, 0)

    def absorb(self, counters: dict[str, int]) -> None:
        """Add another engine's counters into this one.

        Used when merging shard results: each worker process routed with
        its own :class:`PruningStats`, and the parent folds the per-shard
        counters in so one object still summarizes the whole build.
        Unknown keys and configuration fields are ignored.
        """
        for name in self.__dataclass_fields__:
            if name in self._CONFIG_FIELDS:
                continue
            value = counters.get(name)
            if value:
                setattr(self, name, getattr(self, name) + int(value))


class LeafGeometry:
    """Anchor geometry of one leaf node.

    ``pair[i, j]`` caches ``d(clustroid_i, clustroid_j)`` and
    ``clustroids[i]`` remembers *which* object row ``i`` was measured
    against, so clustroid drift (an absorb that moved the clustroid) is
    detected by identity and only the stale rows are re-measured; rows of
    surviving clustroids are carried over across entry insertions and
    removals. Identity survives pickling because the features and the
    geometry travel in one pickle graph.
    """

    __slots__ = ("clustroids", "pair")

    def __init__(self) -> None:
        self.clustroids: list[Any] = []
        self.pair: np.ndarray = np.zeros((0, 0), dtype=np.float64)


#: Cap on reference pivots per non-leaf sample cache: one per sample
#: segment, evenly spread, at most this many. More pivots tighten the D2
#: lower bounds (pivots in distinct clusters separate cluster pairs a
#: single reference point cannot) at a fixed per-query cost of one counted
#: call each — recovered because every pivot call fills an exact sample
#: slot.
_MAX_SEGMENT_PIVOTS = 8


class SampleGeometry:
    """Anchor geometry of one non-leaf sample cache.

    ``positions`` holds the flat indices of the initial pivots — the first
    sample of up to ``_MAX_SEGMENT_PIVOTS`` evenly spread segments.
    ``positions[0]`` is always ``0`` (``cache.flat[0]``) so block-gathered
    pivot hints stay valid. ``pair[i, j] == d(flat[i], flat[j])`` is the
    full sample-to-sample matrix feeding the anchor bounds. Sample sets
    are immutable between refreshes and a refresh installs a brand-new
    cache object, so this is built once per cache lifetime and never
    invalidated in place.
    """

    __slots__ = ("positions", "pair")

    def __init__(self, positions: np.ndarray, pair: np.ndarray) -> None:
        self.positions = positions
        self.pair = pair


def ensure_leaf_geometry(
    metric: DistanceFunction, node: Any, stats: PruningStats
) -> tuple[LeafGeometry, list[Any]]:
    """Return ``node``'s leaf geometry, refreshing any stale rows.

    Rows whose clustroid object is unchanged (by identity) are carried
    over; every other row is re-measured through the raw hooks.
    """
    clustroids = [feature.clustroid for feature in node.entries]
    n = len(clustroids)
    geom = node.aux
    if not isinstance(geom, LeafGeometry):
        geom = LeafGeometry()
        node.aux = geom
        stats.geometry_builds += 1
    old = geom.clustroids
    if len(old) == n and all(old[i] is clustroids[i] for i in range(n)):
        return geom, clustroids
    old_pos = {id(c): j for j, c in enumerate(old)}
    pair = np.zeros((n, n), dtype=np.float64)
    kept_new, kept_old, stale = [], [], []
    for i, clustroid in enumerate(clustroids):
        j = old_pos.get(id(clustroid))
        if j is None:
            stale.append(i)
        else:
            kept_new.append(i)
            kept_old.append(j)
    if kept_new:
        pair[np.ix_(kept_new, kept_new)] = geom.pair[np.ix_(kept_old, kept_old)]
    if stale:
        # One raw-hook cross gather covers every stale row at once (same
        # evaluation count as row-at-a-time, one batched dispatch).
        # Geometry maintenance is NCD-neutral by design (see module
        # docstring); tracked via stats.maintenance_evals.
        block = np.asarray(
            metric._cross([clustroids[i] for i in stale], clustroids),
            dtype=np.float64,
        )
        stats.maintenance_evals += len(stale) * n
        for k, i in enumerate(stale):
            pair[i, :] = block[k]
            pair[:, i] = block[k]
    geom.clustroids = clustroids
    geom.pair = pair
    return geom, clustroids


def ensure_sample_geometry(
    metric: DistanceFunction, cache: Any, stats: PruningStats
) -> SampleGeometry:
    """Return the pivot geometry of a non-leaf sample cache, building it
    on first use (raw, NCD-neutral)."""
    geom = cache.geometry
    flat = cache.flat
    if isinstance(geom, SampleGeometry) and geom.pair.shape[0] == len(flat):
        return geom
    offsets = np.asarray(cache.offsets)
    n_segments = len(offsets) - 1
    n_pivots = min(n_segments, _MAX_SEGMENT_PIVOTS)
    seg_ids = np.linspace(0, n_segments - 1, num=max(n_pivots, 1)).astype(int)
    positions = np.array(
        sorted({0} | {int(offsets[i]) for i in seg_ids}), dtype=np.intp
    )
    # Raw hook: geometry maintenance is NCD-neutral by design (see module
    # docstring); tracked via stats.maintenance_evals.
    pair = np.asarray(metric._pairwise(flat), dtype=np.float64)
    stats.maintenance_evals += len(flat) * (len(flat) - 1) // 2
    geom = SampleGeometry(positions, pair)
    cache.geometry = geom
    stats.geometry_builds += 1
    return geom


def pruned_leaf_distances(
    metric: DistanceFunction, node: Any, obj: Any, stats: PruningStats
) -> np.ndarray:
    """D0 distances from ``obj`` to every entry of leaf ``node``, with
    triangle-inequality pruning.

    Pruned slots hold ``+inf``; measured slots are bit-identical to the
    exhaustive ``one_to_many`` gather, and ``argmin`` over the result equals
    the exhaustive ``argmin`` (see module docstring). Never issues more
    counted calls than the exhaustive gather would.
    """
    geom, clustroids = ensure_leaf_geometry(metric, node, stats)
    n = len(clustroids)
    pair = geom.pair
    push_site("leaf-d0")
    try:
        out = np.full(n, np.inf, dtype=np.float64)
        known = np.zeros(n, dtype=bool)
        lb = np.zeros(n, dtype=np.float64)

        def admit(i: int, value: float) -> None:
            # An exactly-measured clustroid becomes an anchor tightening
            # every remaining lower bound (AESA refinement).
            out[i] = value
            known[i] = True
            np.maximum(lb, np.abs(pair[i] - value), out=lb)

        admit(0, float(metric.one_to_many(obj, [clustroids[0]])[0]))
        best = float(out[0])
        n_evaluated = 1
        while not known.all():
            open_lb = np.where(known, np.inf, lb)
            i = int(np.argmin(open_lb))
            stats.bound_checks += int(n - known.sum())
            if open_lb[i] > best:
                break
            admit(i, float(metric.one_to_many(obj, [clustroids[i]])[0]))
            n_evaluated += 1
            if out[i] < best:
                best = float(out[i])
        stats.queries += 1
        stats.candidates_total += n
        stats.candidates_evaluated += n_evaluated
        stats.candidates_pruned += n - n_evaluated
        return out
    finally:
        pop_site()


def pruned_segment_distances(
    metric: DistanceFunction,
    cache: Any,
    n_entries: int,
    obj: Any,
    stats: PruningStats,
    d_pivot: float | None = None,
) -> np.ndarray:
    """D2 distances from ``obj`` to every entry of a non-leaf node, with
    per-segment triangle-inequality pruning over the node's sample cache.

    ``d_pivot`` may carry a precomputed (already counted) ``d(obj, flat[0])``
    from a block gather; it must have been measured against *this* cache's
    pivot. Pruned entries hold ``+inf``; measured entries are bit-identical
    to the exhaustive computation. Never issues more counted calls than the
    exhaustive gather (``len(flat)``) would.
    """
    flat = cache.flat
    offsets = cache.offsets
    geom = ensure_sample_geometry(metric, cache, stats)
    pair = geom.pair
    pivot_positions = geom.positions
    n = len(flat)
    push_site("nonleaf-d2")
    try:
        d_full = np.full(n, np.nan, dtype=np.float64)
        known = np.zeros(n, dtype=bool)
        lb = np.zeros(n, dtype=np.float64)

        def admit(positions: list[int], values: np.ndarray) -> None:
            # Exactly-measured samples become anchors tightening every
            # remaining per-sample lower bound (AESA refinement). At an
            # anchor's own column the bound collapses to the exact
            # distance, so bounds and exact values mix consistently
            # inside a segment's RMS.
            d_full[positions] = values
            known[positions] = True
            np.maximum(
                lb, np.abs(pair[positions] - values[:, None]).max(axis=0), out=lb
            )

        if d_pivot is None:
            dq = np.asarray(
                metric.one_to_many(obj, [flat[int(p)] for p in pivot_positions]),
                dtype=np.float64,
            )
        else:
            # The hint carries d(obj, flat[0]) == d(obj, flat[positions[0]]);
            # gather the remaining pivots in one batch.
            dq = np.empty(len(pivot_positions), dtype=np.float64)
            dq[0] = d_pivot
            if len(pivot_positions) > 1:
                dq[1:] = metric.one_to_many(
                    obj, [flat[int(p)] for p in pivot_positions[1:]]
                )
        admit([int(p) for p in pivot_positions], dq)

        out = np.full(n_entries, np.inf, dtype=np.float64)
        lb_sq = np.empty(n, dtype=np.float64)
        open_entries = list(range(n_entries))
        best = np.inf
        n_evaluated = 0
        # Best-first walk: measure the open entry with the smallest RMS
        # lower bound (one batched gather per entry), let its samples
        # tighten the remaining bounds, and stop once the smallest open
        # bound exceeds the best exact D2 — which prunes everything left.
        while open_entries:
            np.multiply(lb, lb, out=lb_sq)
            entry_lb = [
                float(np.sqrt(lb_sq[offsets[i] : offsets[i + 1]].mean()))
                for i in open_entries
            ]
            stats.bound_checks += len(open_entries)
            pick = int(np.argmin(entry_lb))
            if entry_lb[pick] > best:
                break
            i = open_entries.pop(pick)
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            unknown = [p for p in range(lo, hi) if not known[p]]
            if unknown:
                admit(unknown, metric.one_to_many(obj, [flat[p] for p in unknown]))
            seg = d_full[lo:hi]
            out[i] = float(np.sqrt((seg**2).mean()))
            n_evaluated += 1
            if out[i] < best:
                best = float(out[i])
        stats.queries += 1
        stats.candidates_total += n_entries
        stats.candidates_evaluated += n_evaluated
        stats.candidates_pruned += n_entries - n_evaluated
        return out
    finally:
        pop_site()
