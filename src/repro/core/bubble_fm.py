"""BUBBLE-FM: BUBBLE with FastMap-powered non-leaf routing (Section 5).

BUBBLE measures a new object against up to ``SS`` sample objects at every
non-leaf node on its downward path — ``SS`` calls to a possibly very
expensive distance function per level. BUBBLE-FM instead maps each node's
sample objects *once* into a k-dimensional image space with FastMap; routing
a new object then needs only the ``2k`` distance calls of FastMap's
incremental mapping, after which distances to entries are Euclidean
distances to per-entry **image centroids** (no calls to ``d`` at all).

Per the paper:

* the non-leaf CF* becomes ``(S(NL_i), image centroid of S(NL_i))`` plus the
  image vectors of the ``2k`` pivot objects (Section 5.2);
* whenever ``S(NL)`` is refreshed (i.e. a child split), the node's image
  space is rebuilt by re-running FastMap (Section 4.2.2 / 5.2);
* when ``|S(NL)| <= 2k`` the image space is pointless and distances are
  measured in the original distance space exactly as BUBBLE does;
* FastMap is **never** used at the leaf level: approximation errors there
  would corrupt clusters, whereas at non-leaf levels they merely redirect
  objects to a different leaf (Section 5.2.1).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.bubble import BubblePolicy, _SampleCache
from repro.core.nodes import NonLeafNode
from repro.exceptions import ParameterError
from repro.fastmap import FastMap
from repro.fastmap.landmark import LandmarkMDS
from repro.metrics.base import DistanceFunction, pop_site, push_site
from repro.utils.validation import check_integer

__all__ = ["BubbleFMPolicy"]


class _FMSampleCache(_SampleCache):
    """Sample cache extended with the node's image space: the fitted mapper
    (FastMap by default, Landmark MDS optionally), the image vector of every
    sample, and one image centroid per entry. ``mapper is None`` marks the
    distance-space fallback."""

    __slots__ = ("mapper", "centroids", "images")

    def __init__(
        self,
        flat: Any,
        offsets: Any,
        mapper: Any,
        centroids: np.ndarray | None,
        images: np.ndarray | None = None,
    ):
        super().__init__(flat, offsets)
        self.mapper = mapper
        self.centroids = centroids
        self.images = images


class BubbleFMPolicy(BubblePolicy):
    """BUBBLE-FM's components: BUBBLE's leaf level, FastMap at non-leaf nodes.

    Parameters
    ----------
    metric, representation_number, sample_size, seed:
        As in :class:`~repro.core.bubble.BubblePolicy`.
    image_dim:
        Image dimensionality ``k`` of every node's image space. The paper
        sets one global value (Section 5.2.2); the experiments use the data
        dimensionality.
    fm_iterations:
        FastMap's choose-distant-objects passes (the parameter ``c``).
    mapper:
        Which distance-preserving transformation builds the image spaces:
        ``"fastmap"`` (the paper's choice; 2k calls per routed object) or
        ``"landmark"`` (Landmark MDS; ~2k+2 calls per routed object, one
        joint eigendecomposition instead of sequential residual axes).
    prune:
        As in :class:`~repro.core.bubble.BubblePolicy`; applies to the leaf
        level and to non-leaf nodes in distance-space fallback (too few
        samples for an image space). Image-space routing already costs only
        ``2k`` calls and is left untouched.
    """

    _MAPPERS = ("fastmap", "landmark")

    def __init__(
        self,
        metric: DistanceFunction,
        representation_number: int = 10,
        sample_size: int = 75,
        image_dim: int = 2,
        fm_iterations: int = 1,
        mapper: str = "fastmap",
        seed: Any=None,
        prune: bool = True,
    ):
        super().__init__(metric, representation_number, sample_size, seed, prune=prune)
        self.image_dim = check_integer(image_dim, "image_dim", minimum=1)
        self.fm_iterations = check_integer(fm_iterations, "fm_iterations", minimum=1)
        if mapper not in self._MAPPERS:
            raise ParameterError(f"mapper must be one of {self._MAPPERS}, got {mapper!r}")
        self.mapper = mapper
        #: Number of image-space rebuilds performed (diagnostic).
        self.n_fastmap_fits = 0

    def _min_samples_for_mapping(self) -> int:
        """Below this many samples the image space cannot beat direct D2."""
        if self.mapper == "fastmap":
            return 2 * self.image_dim
        return 2 * self.image_dim + 2  # landmark count

    def _make_mapper(self) -> FastMap | LandmarkMDS:
        if self.mapper == "fastmap":
            return FastMap(
                self.metric, self.image_dim,
                iterations=self.fm_iterations, seed=self._rng,
            )
        return LandmarkMDS(self.metric, self.image_dim, seed=self._rng)

    def refresh_node(self, node: NonLeafNode) -> None:
        super().refresh_node(node)
        cache = node.aux
        flat, offsets = cache.flat, cache.offsets
        if len(flat) <= self._min_samples_for_mapping():
            # Too few samples for a k-dimensional image space: BUBBLE-FM
            # "measures distances at NL in the distance space, as in BUBBLE".
            node.aux = _FMSampleCache(flat, offsets, None, None, None)
            return
        mapper = self._make_mapper()
        with self.tracer.span("fastmap-refit"):
            push_site("fastmap-refit")
            try:
                images = mapper.fit(flat)
            finally:
                pop_site()
        self.n_fastmap_fits += 1
        centroids = np.empty((len(node.entries), self.image_dim), dtype=np.float64)
        for i in range(len(node.entries)):
            centroids[i] = images[offsets[i] : offsets[i + 1]].mean(axis=0)
        node.aux = _FMSampleCache(flat, offsets, mapper, centroids, images)

    def on_node_split(self, old: NonLeafNode, left: NonLeafNode, right: NonLeafNode) -> None:
        """Reuse the split node's image space for both halves.

        The halves' entries keep their sample lists, which are contiguous
        segments of the old node's mapped sample set — a distance-preserving
        map of a superset stays distance-preserving on the subset, so the
        old FastMap and the cached image vectors carry over with zero calls
        to the distance function.
        """
        cache = old.aux
        if (
            not isinstance(cache, _FMSampleCache)
            or cache.mapper is None
            or cache.images is None
        ):
            super().on_node_split(old, left, right)
            return
        segments = {
            id(entry): (int(cache.offsets[i]), int(cache.offsets[i + 1]))
            for i, entry in enumerate(old.entries)
        }
        for half in (left, right):
            flat: list = []
            offsets = [0]
            image_blocks: list[np.ndarray] = []
            reusable = True
            for entry in half.entries:
                seg = segments.get(id(entry))
                if seg is None or not entry.summary:
                    reusable = False
                    break
                flat.extend(entry.summary)
                image_blocks.append(cache.images[seg[0] : seg[1]])
                offsets.append(len(flat))
            if not reusable:
                self.refresh_node(half)
                continue
            images = np.vstack(image_blocks)
            off = np.asarray(offsets, dtype=np.intp)
            centroids = np.vstack(
                [images[off[i] : off[i + 1]].mean(axis=0) for i in range(len(half.entries))]
            )
            half.aux = _FMSampleCache(flat, off, cache.mapper, centroids, images)

    def nonleaf_distances(self, node: NonLeafNode, obj: Any) -> np.ndarray:
        cache = self._node_cache(node)
        if getattr(cache, "mapper", None) is None:
            return super().nonleaf_distances(node, obj)
        push_site("fastmap-map")
        try:
            image = cache.mapper.transform(obj)  # exactly 2k distance calls
        finally:
            pop_site()
        diff = cache.centroids - image
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def nonleaf_entry_distances(self, node: NonLeafNode) -> np.ndarray:
        cache = self._node_cache(node)
        if getattr(cache, "mapper", None) is None:
            return super().nonleaf_entry_distances(node)
        # Distance between entries NL_i, NL_j is the Euclidean distance
        # between their image centroids (Section 5.2) — zero calls to d.
        c = cache.centroids
        sq = np.einsum("ij,ij->i", c, c)
        d2 = sq[:, None] + sq[None, :] - 2.0 * (c @ c.T)
        np.maximum(d2, 0.0, out=d2)
        np.fill_diagonal(d2, 0.0)
        return np.sqrt(d2)

    def _node_cache(self, node: NonLeafNode) -> _FMSampleCache:
        if not isinstance(node.aux, _FMSampleCache):
            self.refresh_node(node)
        return node.aux
