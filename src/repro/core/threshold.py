"""Threshold-growth heuristic for CF*-tree rebuilds.

When the tree outgrows its node budget ``M``, BIRCH* "merges clusters by
increasing the threshold value T associated with the leaf clusters and
re-inserting them into a new tree" (Section 3.2). The paper inherits BIRCH's
threshold heuristic; we implement its core idea: the next threshold should
be about the distance between close leaf entries, so that re-insertion
actually merges neighbours and the new tree is measurably smaller.

The estimate samples a handful of leaf nodes, computes the nearest-neighbour
distance of each entry *within its leaf* (entries sharing a leaf are already
spatially close, so these are the pairs a larger T would merge), and takes
the median. A floor of ``1.5 * T_old`` guarantees strictly increasing
thresholds, hence termination of the rebuild loop.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.metrics.base import pop_site, push_site
from repro.utils.rng import ensure_rng

__all__ = ["suggest_next_threshold"]

#: Leaves examined per estimate; keeps the NCD cost of a rebuild bounded.
_MAX_SAMPLED_LEAVES = 10
#: Minimum multiplicative growth of the threshold between rebuilds.
_GROWTH_FLOOR = 1.5


def suggest_next_threshold(tree: Any, seed: int | np.random.Generator | None = None) -> float:
    """Propose a strictly larger threshold for ``tree``'s next rebuild."""
    rng = ensure_rng(seed)
    candidates = [leaf for leaf in tree.leaves() if len(leaf.entries) >= 2]
    nn_dists: list[float] = []
    if candidates:
        if len(candidates) > _MAX_SAMPLED_LEAVES:
            idx = rng.choice(len(candidates), size=_MAX_SAMPLED_LEAVES, replace=False)
            candidates = [candidates[int(i)] for i in idx]
        push_site("threshold")
        try:
            for leaf in candidates:
                dm = tree.policy.leaf_entry_matrix(leaf.entries)
                np.fill_diagonal(dm, np.inf)
                nn_dists.extend(dm.min(axis=1).tolist())
        finally:
            pop_site()

    old_t = tree.threshold
    estimate = float(np.median(nn_dists)) if nn_dists else 0.0
    new_t = max(estimate, _GROWTH_FLOOR * old_t)
    if new_t <= old_t:
        # Degenerate tree (e.g. every leaf holds a single entry): force growth.
        new_t = old_t * _GROWTH_FLOOR if old_t > 0 else np.finfo(float).tiny
    return new_t
