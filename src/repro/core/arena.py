"""Slab arenas for CF* leaf storage (ROADMAP item 3, BETULA-style).

Before this module, every :class:`~repro.core.features.BubbleClusterFeature`
owned two Python lists — representative objects and their RowSum floats —
so a tree with thousands of leaves paid two list headers, ``2p`` boxed
``float`` objects, and pointer-chasing per leaf, and every RowSum update
was a scalar ``+=`` in a Python loop.

:class:`FeatureArena` replaces that with contiguous per-tree slabs:

* ``rowsums``       — ``(capacity, width)`` float64, the running RowSum of
  each representative slot;
* ``compensations`` — ``(capacity, width)`` float64, the Neumaier
  compensation term paired with each RowSum (the *effective* RowSum of a
  slot is ``rowsums + compensations``, see :mod:`repro.utils.numerics`);
* ``reps``          — ``(capacity, width)`` object, the representative
  member objects themselves (identity-preserving: indexing hands back the
  exact Python object, which :class:`~repro.core.routing.LeafGeometry`
  relies on for its ``id()``-keyed caches);
* ``counts``        — ``(capacity,)`` int32, how many leading slots of each
  row are live.

A cluster feature is then a *view*: ``(arena, row)``. Rows are recycled
through a free list when features merge away, and the slabs grow by
doubling, so the arena stays a handful of ndarray allocations for the
lifetime of the tree. Pickling the arena (checkpoints, worker shards)
round-trips the ndarrays bit-exactly.
"""

from __future__ import annotations

import sys
from typing import Any

import numpy as np

from repro.exceptions import ParameterError

__all__ = ["FeatureArena"]

_INITIAL_CAPACITY = 16

#: CPython's boxed ``float`` costs ~24 bytes on top of the 8-byte list slot
#: that points at it — the per-entry price of the legacy list-of-floats
#: layout that the slab's flat 8-byte float64 cell replaces.
_PYFLOAT_BYTES = sys.getsizeof(1.0)


class FeatureArena:
    """Contiguous slab storage for the CF* features of one tree.

    Parameters
    ----------
    width:
        Maximum representative slots per feature — the paper's ``2p``
        (``representation_number``). All features sharing an arena share
        one width.
    capacity:
        Initial number of rows; the slabs double when exhausted.
    """

    __slots__ = ("width", "rowsums", "compensations", "reps", "counts", "_free", "_rows_used")

    def __init__(self, width: int, capacity: int = _INITIAL_CAPACITY) -> None:
        if width < 1:
            raise ParameterError(f"FeatureArena width must be >= 1, got {width}")
        capacity = max(int(capacity), 1)
        self.width = int(width)
        self.rowsums = np.zeros((capacity, self.width), dtype=np.float64)
        self.compensations = np.zeros((capacity, self.width), dtype=np.float64)
        self.reps = np.empty((capacity, self.width), dtype=object)
        self.counts = np.zeros(capacity, dtype=np.int32)
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        self._rows_used = 0

    # ------------------------------------------------------------------
    # Row lifecycle
    # ------------------------------------------------------------------
    def alloc(self) -> int:
        """Claim an empty row, growing the slabs (doubling) if needed."""
        if not self._free:
            self._grow()
        row = self._free.pop()
        self._rows_used += 1
        return row

    def release(self, row: int) -> None:
        """Return a row to the free list, dropping its object references."""
        self.reps[row, :] = None
        self.rowsums[row, :] = 0.0
        self.compensations[row, :] = 0.0
        self.counts[row] = 0
        self._free.append(row)
        self._rows_used -= 1

    def _grow(self) -> None:
        old = self.capacity
        new = old * 2
        for name in ("rowsums", "compensations"):
            slab = np.zeros((new, self.width), dtype=np.float64)
            slab[:old] = getattr(self, name)
            setattr(self, name, slab)
        reps = np.empty((new, self.width), dtype=object)
        reps[:old] = self.reps
        self.reps = reps
        counts = np.zeros(new, dtype=np.int32)
        counts[:old] = self.counts
        self.counts = counts
        self._free.extend(range(new - 1, old - 1, -1))

    def adopt_row(self, other: "FeatureArena", row: int) -> int:
        """Copy one row from ``other`` into this arena, bit-for-bit.

        Used when worker-shard features come home through
        ``insert_feature_batch``: the incoming feature's slab row is copied
        into the merge tree's arena (exact float64 bits, same object
        references), so the merged tree is independent of the worker arena.
        """
        if other.width > self.width:
            raise ParameterError(
                f"cannot adopt a row of width {other.width} into an arena of width {self.width}"
            )
        dest = self.alloc()
        k = int(other.counts[row])
        self.rowsums[dest, :k] = other.rowsums[row, :k]
        self.compensations[dest, :k] = other.compensations[row, :k]
        self.reps[dest, :k] = other.reps[row, :k]
        self.counts[dest] = k
        return dest

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return int(self.counts.shape[0])

    @property
    def rows_used(self) -> int:
        return self._rows_used

    @property
    def occupancy(self) -> float:
        """Fraction of allocated rows that are live."""
        return self._rows_used / self.capacity if self.capacity else 0.0

    def row_bytes(self) -> int:
        """Slab bytes attributable to one row (float cells + object slots)."""
        itemsize = int(self.rowsums.itemsize)
        return self.width * (2 * itemsize + self.reps.itemsize) + int(self.counts.itemsize)

    def bytes_estimate(self) -> int:
        """Total slab bytes currently allocated (all rows, used or free)."""
        return int(
            self.rowsums.nbytes + self.compensations.nbytes + self.reps.nbytes + self.counts.nbytes
        )

    def active_bytes_estimate(self) -> int:
        """Slab bytes attributable to *live* rows only."""
        return self._rows_used * self.row_bytes()

    def legacy_bytes_estimate(self) -> int:
        """What the live rows would cost in the pre-slab layout.

        The old ``BubbleClusterFeature`` kept ``_reps: list`` and
        ``_rowsums: list[float]``: two list headers plus one 8-byte slot
        per entry each, and every RowSum a boxed ~24-byte ``float``. The
        representative objects themselves are excluded from both sides —
        they exist either way.
        """
        total = 0
        for k in (int(c) for c in self.counts):
            if k:
                list_header = sys.getsizeof([None] * k)
                total += 2 * list_header + k * _PYFLOAT_BYTES
        return total

    def used_rows(self) -> list[int]:
        """Indices of live rows (for audits; order is unspecified)."""
        free = set(self._free)
        return [row for row in range(self.capacity) if row not in free]

    # ------------------------------------------------------------------
    # Row accessors (views, not copies)
    # ------------------------------------------------------------------
    def rowsum_view(self, row: int) -> np.ndarray:
        return self.rowsums[row, : int(self.counts[row])]

    def compensation_view(self, row: int) -> np.ndarray:
        return self.compensations[row, : int(self.counts[row])]

    def rep_view(self, row: int) -> np.ndarray:
        return self.reps[row, : int(self.counts[row])]

    def effective_rowsums(self, row: int) -> np.ndarray:
        """Compensated RowSum values of a row's live slots (a fresh array)."""
        k = int(self.counts[row])
        return self.rowsums[row, :k] + self.compensations[row, :k]

    def snapshot(self) -> dict[str, Any]:
        """Occupancy / bytes summary for :class:`~repro.observability.stats.StatsSnapshot`."""
        used = self.rows_used
        active = self.active_bytes_estimate()
        legacy = self.legacy_bytes_estimate()
        return {
            "rows_used": used,
            "capacity": self.capacity,
            "width": self.width,
            "occupancy": round(self.occupancy, 4),
            "bytes_total": self.bytes_estimate(),
            "bytes_per_leaf": (active // used) if used else 0,
            "legacy_bytes_per_leaf": (legacy // used) if used else 0,
            "bytes_reduction": round(1.0 - active / legacy, 4) if legacy else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FeatureArena(width={self.width}, rows_used={self.rows_used}, "
            f"capacity={self.capacity})"
        )
