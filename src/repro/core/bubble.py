"""BUBBLE: the first BIRCH* instantiation for distance spaces (Section 4).

Leaf level: the :class:`~repro.core.features.BubbleClusterFeature` with
clustroid/RowSum/representative maintenance, routed and threshold-tested via
the clustroid distance ``D0``.

Non-leaf level: each entry NL_i carries **sample objects** ``S(NL_i)`` drawn
bottom-up from its child — random clustroids if the child is a leaf, random
members of the child's own samples otherwise (Section 4.2.1). The number of
samples at a node is capped by the *sample size* ``SS``; child ``i`` with
``n_i`` entries contributes ``max(floor(n_i * SS / sum_j n_j), 1)`` so every
child keeps at least one representative. A new object is routed to the entry
minimizing ``D2({O}, S(NL_i))``, the average inter-cluster distance of
Definition 4.4. Samples at a node are refreshed whenever one of its children
splits (Section 4.2.2).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.arena import FeatureArena
from repro.core.features import (
    BubbleClusterFeature,
    average_inter_cluster_distance,
)
from repro.core.nodes import LeafNode, NonLeafNode
from repro.core.policy import BirchStarPolicy
from repro.core.routing import (
    PruningStats,
    pruned_leaf_distances,
    pruned_segment_distances,
)
from repro.exceptions import ParameterError, TreeInvariantError
from repro.metrics.base import DistanceFunction, pop_site, push_site
from repro.utils.rng import ensure_rng
from repro.utils.sampling import sample_without_replacement
from repro.utils.validation import check_integer

__all__ = ["BubblePolicy"]

#: Below this many leaf entries, pruning cannot beat the exhaustive gather
#: (pivot + seed measurements already cover most of the node).
_MIN_PRUNE_LEAF_ENTRIES = 4


class _SampleCache:
    """Node-level cache: the concatenation of all entry samples plus the
    segment boundaries, so one batched ``one_to_many`` serves a whole node.

    ``geometry`` is lazily-built pivot geometry for the pruned routing
    engine (:mod:`repro.core.routing`); ``None`` is always legal."""

    __slots__ = ("flat", "offsets", "geometry")

    def __init__(self, flat: list, offsets: np.ndarray):
        self.flat = flat
        self.offsets = offsets
        self.geometry = None


class BubblePolicy(BirchStarPolicy):
    """The components BUBBLE plugs into the BIRCH* framework.

    Parameters
    ----------
    metric:
        Distance function of the space.
    representation_number:
        ``2p``, the number of representative objects per leaf cluster
        (paper default 10).
    sample_size:
        ``SS``, the cap on sample objects per non-leaf node (paper default
        75 = 5 * branching factor).
    seed:
        Seed/generator driving sample selection.
    prune:
        Route through the exact triangle-inequality pruned engine
        (:mod:`repro.core.routing`). Routing decisions are bit-identical to
        the exhaustive scan either way; pruning only reduces NCD. On by
        default.
    """

    def __init__(
        self,
        metric: DistanceFunction,
        representation_number: int = 10,
        sample_size: int = 75,
        seed: int | np.random.Generator | None = None,
        prune: bool = True,
    ):
        if not isinstance(metric, DistanceFunction):
            raise ParameterError("metric must be a DistanceFunction")
        self.metric = metric
        self.representation_number = check_integer(
            representation_number, "representation_number", minimum=2
        )
        self.sample_size = check_integer(sample_size, "sample_size", minimum=1)
        self._rng = ensure_rng(seed)
        self.prune = bool(prune)
        #: Counters for the pruned routing engine (always present; all zero
        #: when ``prune`` is off or no node met the pruning gates).
        self.pruning_stats = PruningStats()
        #: Per-tree slab arena backing every leaf CF* this policy creates
        #: (RowSums + Neumaier compensations + representative handles in
        #: contiguous ndarrays; see :mod:`repro.core.arena`).
        self.arena = FeatureArena(self.representation_number)

    # ------------------------------------------------------------------
    # Leaf level (D0 everywhere)
    # ------------------------------------------------------------------
    def new_leaf_feature(self, obj: Any) -> BubbleClusterFeature:
        return BubbleClusterFeature(
            self.metric, obj, self.representation_number, arena=self.arena
        )

    def adopt_feature(self, feature: Any) -> None:
        """Move a foreign slab-backed feature's row into this policy's arena.

        Worker-shard features come home through the merge path with their
        own (unpickled) arenas; copying the row bit-for-bit keeps the merge
        exactly equivalent to having built the feature here, while letting
        the worker arena be garbage collected.
        """
        if (
            isinstance(feature, BubbleClusterFeature)
            and feature.arena is not self.arena
            and feature.arena.width <= self.arena.width
        ):
            old_arena, old_row = feature.arena, feature._row
            feature._row = self.arena.adopt_row(old_arena, old_row)
            feature.arena = self.arena
            old_arena.release(old_row)

    def leaf_distances(self, node: LeafNode, obj: Any) -> np.ndarray:
        if self.prune and len(node.entries) >= _MIN_PRUNE_LEAF_ENTRIES:
            return pruned_leaf_distances(self.metric, node, obj, self.pruning_stats)
        clustroids = [feature.clustroid for feature in node.entries]
        push_site("leaf-d0")
        try:
            return self.metric.one_to_many(obj, clustroids)
        finally:
            pop_site()

    def leaf_entry_distance(self, a: Any, b: Any) -> float:
        return self.metric.distance(a.clustroid, b.clustroid)

    def leaf_entry_matrix(self, entries: Any) -> np.ndarray:
        return self.metric.pairwise([feature.clustroid for feature in entries])

    # ------------------------------------------------------------------
    # Non-leaf level (sample objects, D2)
    # ------------------------------------------------------------------
    def nonleaf_distances(self, node: NonLeafNode, obj: Any) -> np.ndarray:
        cache = self._node_cache(node)
        if self._prunable_cache(node, cache) is not None:
            return pruned_segment_distances(
                self.metric, cache, len(node.entries), obj, self.pruning_stats
            )
        push_site("nonleaf-d2")
        try:
            dists = self.metric.one_to_many(obj, cache.flat)
        finally:
            pop_site()
        sq = dists**2
        offsets = cache.offsets
        out = np.empty(len(node.entries), dtype=np.float64)
        for i in range(len(out)):
            seg = sq[offsets[i] : offsets[i + 1]]
            out[i] = np.sqrt(seg.mean())
        return out

    def _prunable_cache(self, node: NonLeafNode, cache: _SampleCache) -> _SampleCache | None:
        """The node's sample cache if pruned D2 routing applies, else None.

        Pruning needs at least two entries (something to prune) and two
        samples (a pivot plus something it can bound), and must stand aside
        when the node routes through an image space (BUBBLE-FM's mapper)."""
        if not self.prune or len(node.entries) < 2 or len(cache.flat) < 2:
            return None
        if getattr(cache, "mapper", None) is not None:
            return None
        return cache

    def begin_insert_block(self, node: NonLeafNode, objs: Any) -> np.ndarray | None:
        """Batched pivot gather for a block of objects about to descend
        through ``node``: one counted ``one_to_many`` computes every
        object's ``d(obj, pivot)`` hint up front, reusing the row the
        per-object pruned path would otherwise measure one at a time."""
        cache = self._node_cache(node)
        if self._prunable_cache(node, cache) is None:
            return None
        push_site("nonleaf-d2")
        try:
            hints = self.metric.one_to_many(cache.flat[0], objs)
        finally:
            pop_site()
        self.pruning_stats.block_gathers += 1
        self.pruning_stats.block_hints += len(objs)
        return hints

    def nonleaf_distances_hinted(
        self, node: NonLeafNode, obj: Any, hint: float | None
    ) -> np.ndarray:
        if hint is None:
            return self.nonleaf_distances(node, obj)
        cache = self._node_cache(node)
        return pruned_segment_distances(
            self.metric, cache, len(node.entries), obj, self.pruning_stats, d_pivot=hint
        )

    def end_insert_block(self, n_unused: int) -> None:
        self.pruning_stats.block_hints_wasted += n_unused

    def nonleaf_entry_distances(self, node: NonLeafNode) -> np.ndarray:
        entries = node.entries
        n = len(entries)
        out = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i + 1, n):
                d = average_inter_cluster_distance(
                    self.metric, entries[i].summary, entries[j].summary
                )
                out[i, j] = d
                out[j, i] = d
        return out

    def refresh_node(self, node: NonLeafNode) -> None:
        """Redraw sample objects for every entry of ``node`` (Section 4.2.2)."""
        with self.tracer.span("sample-refresh"):
            entry_sizes = [len(entry.child.entries) for entry in node.entries]
            total = sum(entry_sizes)
            flat: list = []
            offsets = [0]
            for entry, n_i in zip(node.entries, entry_sizes):
                quota = max((n_i * self.sample_size) // max(total, 1), 1)
                pool = self._sample_pool(entry.child)
                entry.summary = sample_without_replacement(pool, quota, self._rng)
                flat.extend(entry.summary)
                offsets.append(len(flat))
            node.aux = _SampleCache(flat, np.asarray(offsets, dtype=np.intp))

    def _sample_pool(self, child: Any) -> list:
        """Objects a non-leaf entry may sample from: the child's clustroids
        if it is a leaf, otherwise the union of the child's own samples."""
        if child.is_leaf:
            return [feature.clustroid for feature in child.entries]
        pool: list = []
        for entry in child.entries:
            if entry.summary:
                pool.extend(entry.summary)
        if not pool:
            raise TreeInvariantError(
                "non-leaf child has no samples to draw from; refresh order violated"
            )
        return pool

    def _node_cache(self, node: NonLeafNode) -> _SampleCache:
        if node.aux is None or not isinstance(node.aux, _SampleCache):
            # Defensive: a node should always be refreshed on creation.
            self.refresh_node(node)
        return node.aux
