"""CF*-tree node structures (Section 3.2).

A CF*-tree is a height-balanced tree. Leaf nodes hold up to ``B`` leaf
entries, each the CF* of one evolving cluster. Non-leaf nodes hold up to
``B`` entries of the form ``(CF*, child)``; the non-leaf CF* exists only to
*guide* new objects toward their prospective cluster, and its concrete
content is owned by the algorithm policy (sample objects for BUBBLE, sample
objects plus an image-space centroid for BUBBLE-FM, an additive vector CF
for BIRCH).
"""

from __future__ import annotations

from typing import Any

from repro.core.features import ClusterFeature

__all__ = ["LeafNode", "NonLeafNode", "NonLeafEntry"]


class LeafNode:
    """A leaf node: a list of leaf-level cluster features.

    ``aux`` is policy-owned acceleration state (the pruned routing engine
    caches pivot geometry there); the framework never inspects it, and a
    ``None`` value is always legal — caches are rebuilt lazily.
    """

    __slots__ = ("entries", "aux")
    is_leaf = True

    def __init__(self, entries: list[ClusterFeature] | None = None):
        self.entries: list[ClusterFeature] = entries if entries is not None else []
        self.aux = None

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LeafNode({len(self.entries)} entries)"


class NonLeafEntry:
    """One ``(CF*, child)`` pair of a non-leaf node.

    ``summary`` is policy-owned: the BIRCH* framework never inspects it, it
    only asks the policy to refresh it and to measure distances against it.
    """

    __slots__ = ("child", "summary")

    def __init__(self, child: Any, summary: Any=None):
        self.child = child
        self.summary = summary

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.child.is_leaf else "non-leaf"
        return f"NonLeafEntry({kind} child, {len(self.child.entries)} entries)"


class NonLeafNode:
    """A non-leaf node: entries guiding descent, plus policy-owned ``aux``
    state shared by the whole node (BUBBLE-FM stores its per-node FastMap
    there)."""

    __slots__ = ("entries", "aux")
    is_leaf = False

    def __init__(self, entries: list[NonLeafEntry] | None = None):
        self.entries: list[NonLeafEntry] = entries if entries is not None else []
        self.aux = None

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NonLeafNode({len(self.entries)} entries)"
