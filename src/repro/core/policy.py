"""The BIRCH* instantiation interface (Section 3, closing paragraph).

    "In summary, CF*s, their incremental maintenance, the distance
    measures, and the threshold requirement are the components of the
    BIRCH* framework, which have to be instantiated to derive a concrete
    clustering algorithm."

A :class:`BirchStarPolicy` supplies exactly those components:

* how to create a leaf CF* from a single object;
* the distance from an inserted object (or re-inserted cluster) to each
  leaf entry and to each non-leaf entry;
* pairwise distances among a node's entries (needed to pick split seeds);
* the content and refresh procedure of non-leaf summaries;
* optional per-descent bookkeeping (BIRCH's additive CFs update on every
  descent; BUBBLE's samples only refresh on child splits).

The framework (:mod:`repro.core.cftree`) is written purely against this
interface, so BUBBLE, BUBBLE-FM and the vector-space BIRCH baseline all
share one tree implementation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from repro.core.features import ClusterFeature
from repro.core.nodes import LeafNode, NonLeafNode
from repro.metrics.base import DistanceFunction
from repro.observability import NULL_TRACER, NullTracer

__all__ = ["BirchStarPolicy"]


class BirchStarPolicy(ABC):
    """Everything a concrete BIRCH* algorithm must provide to the CF*-tree."""

    #: The distance function of the space (used for NCD accounting).
    metric: DistanceFunction

    #: Phase tracer for span-level instrumentation (``sample-refresh``,
    #: ``fastmap-refit``). The drivers point this at their own tracer; the
    #: default no-op singleton keeps un-traced runs free.
    tracer: NullTracer = NULL_TRACER

    # ------------------------------------------------------------------
    # Leaf level
    # ------------------------------------------------------------------
    @abstractmethod
    def new_leaf_feature(self, obj: Any) -> ClusterFeature:
        """Create the CF* of a brand-new cluster containing only ``obj``."""

    def adopt_feature(self, feature: ClusterFeature) -> None:
        """Take ownership of a CF* built under a different policy instance.

        Called by :meth:`CFTree.insert_feature_batch` for every incoming
        feature before routing — the hook where slab-backed policies move a
        worker-shard or checkpointed feature's storage into their own arena
        (bit-for-bit, no distance calls). The default is a no-op for
        features that own their state outright.
        """

    @abstractmethod
    def leaf_distances(self, node: LeafNode, obj: Any) -> np.ndarray:
        """Distances from ``obj`` to every leaf entry of ``node`` (the D0
        column the insertion step minimizes)."""

    @abstractmethod
    def leaf_entry_distance(self, a: ClusterFeature, b: ClusterFeature) -> float:
        """Distance between two leaf entries (split seeds, merge test)."""

    def leaf_entry_matrix(self, entries: list[ClusterFeature]) -> np.ndarray:
        """Symmetric pairwise distance matrix among leaf entries.

        Used for split-seed selection and the threshold heuristic. The
        default loops over :meth:`leaf_entry_distance`; policies whose
        metric batches well should override it.
        """
        n = len(entries)
        out = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i + 1, n):
                # Bounded by B+1 entries of one overflowing node, not by the
                # dataset: this is the paper's split-seed cost, not a scan.
                d = self.leaf_entry_distance(entries[i], entries[j])  # reprolint: disable=RPL004 -- split-seed pairs over one node's B+1 entries, not the dataset
                out[i, j] = d
                out[j, i] = d
        return out

    def routing_object(self, feature: ClusterFeature) -> Any:
        """The object used to route a re-inserted cluster down the tree.

        Type II insertions re-insert a whole CF*; BUBBLE routes it by its
        clustroid.
        """
        return feature.clustroid

    # ------------------------------------------------------------------
    # Non-leaf level
    # ------------------------------------------------------------------
    @abstractmethod
    def nonleaf_distances(self, node: NonLeafNode, obj: Any) -> np.ndarray:
        """Distances from ``obj`` to every entry of non-leaf ``node``."""

    @abstractmethod
    def nonleaf_entry_distances(self, node: NonLeafNode) -> np.ndarray:
        """Symmetric pairwise distance matrix among ``node``'s entries,
        used to choose split seeds when the node overflows."""

    @abstractmethod
    def refresh_node(self, node: NonLeafNode) -> None:
        """(Re)build the summaries of all entries of ``node`` and its
        node-level ``aux`` state.

        The framework calls this whenever one of ``node``'s children split
        (Section 4.2.2) and when ``node`` itself was just created by a
        split.
        """

    # ------------------------------------------------------------------
    # Optional hooks
    # ------------------------------------------------------------------
    def begin_insert_block(self, node: NonLeafNode, objs: Any) -> np.ndarray | None:
        """Precompute per-object routing hints for a block of insertions
        about to descend through non-leaf ``node``.

        Returns an array aligned with ``objs`` (BUBBLE returns batched
        pivot distances) or ``None`` when the policy has no batched
        shortcut; the framework then routes each object individually. Any
        hint becomes stale — and the framework discards the rest of the
        block via :meth:`end_insert_block` — as soon as ``node`` changes
        structurally."""
        return None

    def nonleaf_distances_hinted(
        self, node: NonLeafNode, obj: Any, hint: float | None
    ) -> np.ndarray:
        """:meth:`nonleaf_distances` with an optional
        :meth:`begin_insert_block` hint. The default ignores the hint."""
        return self.nonleaf_distances(node, obj)

    def end_insert_block(self, n_unused: int) -> None:
        """Called when a block gather is abandoned mid-block (a structural
        change invalidated ``n_unused`` remaining hints)."""

    def on_node_split(
        self, old: NonLeafNode, left: NonLeafNode, right: NonLeafNode
    ) -> None:
        """Called when non-leaf ``old`` was split into ``left`` and ``right``.

        Each half's entries keep their summaries (their children are
        untouched), but node-level state must be re-derived. The default
        simply refreshes both halves; BUBBLE-FM overrides this to *reuse*
        the old node's image space — the halves' samples are a subset of the
        old samples, whose image vectors are already known, so no new
        distance calls are needed.
        """
        self.refresh_node(left)
        self.refresh_node(right)

    def on_descend(self, node: NonLeafNode, entry_index: int, obj: Any, feature: Any) -> None:
        """Called as an insertion descends through ``node`` via
        ``entry_index``. BUBBLE ignores it; the BIRCH instantiation uses it
        to keep its additive non-leaf CFs exact."""

    def on_leaf_updated(self, node: LeafNode, feature: ClusterFeature) -> None:
        """Called after a leaf entry absorbed an object or merged a cluster."""
