"""The CF*-tree: the in-memory index at the heart of BIRCH* (Section 3.2).

The tree directs each new object to the cluster closest to it in time
logarithmic in the number of clusters. Non-leaf entries "guide" objects to
the right subtree; leaf entries are the dynamically evolving clusters. Key
mechanics reproduced from the paper:

* descent always follows the closest non-leaf entry;
* at the leaf, the object is absorbed by the closest cluster if the
  threshold requirement ``T`` holds, otherwise it starts a new cluster;
* an overflowing node splits into two around the farthest pair of entries,
  and splits may propagate to the root (growing the tree's height);
* whenever a child of a non-leaf node splits, the policy refreshes that
  node's summaries (Section 4.2.2);
* when the node count exceeds the budget ``M``, the threshold grows and all
  leaf clusters are re-inserted into a fresh tree (Type II insertions).
"""

from __future__ import annotations

import logging
from collections.abc import Iterator
from typing import Any

import numpy as np

from repro.core.features import ClusterFeature
from repro.core.nodes import LeafNode, NonLeafEntry, NonLeafNode
from repro.core.policy import BirchStarPolicy
from repro.core.threshold import suggest_next_threshold
from repro.exceptions import ParameterError, TreeInvariantError
from repro.observability import NULL_TRACER, NullTracer
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_integer, check_positive

__all__ = ["CFTree", "DEFAULT_HINT_CHUNK"]

#: Default block-insert hint-gather chunk: root hints are gathered this
#: many objects at a time. A gather is NCD-neutral per consumed hint (it
#: replaces the per-object root pivot call), but hints left over when the
#: root changes structurally are pure waste, so the chunk bounds the waste
#: per change. Override per tree with ``CFTree(hint_chunk=...)``.
DEFAULT_HINT_CHUNK = 32

logger = logging.getLogger("repro.cftree")


class CFTree:
    """Height-balanced tree of generalized cluster features.

    Parameters
    ----------
    policy:
        The BIRCH* instantiation (BUBBLE, BUBBLE-FM, or vector BIRCH).
    branching_factor:
        Maximum entries per node (the paper's ``B``; default 15 matches the
        experimental setup of Section 6.1).
    max_nodes:
        Node budget ``M``. ``None`` disables rebuilding (unbounded memory).
    threshold:
        Initial threshold requirement ``T``; 0 makes every distinct object
        its own cluster until the first rebuild, as in BIRCH.
    seed:
        Seed/generator for the threshold heuristic's leaf sampling.
    tracer:
        A :class:`repro.observability.Tracer` recording phase spans
        (``insert``, ``split``, ``rebuild``) and NCD attribution. Defaults
        to the no-op :data:`~repro.observability.NULL_TRACER`.
    validate:
        ``None`` (default) for no runtime checking; ``"debug"`` runs the
        full invariant sanitizer (:func:`repro.analysis.audit.audit_tree`)
        after every insertion that split a node and after every rebuild,
        raising :class:`~repro.exceptions.TreeInvariantError` at the first
        violation. Expensive — meant for tests and bug hunts, not
        production scans.
    hint_chunk:
        How many objects each block-insert root-hint gather covers (see
        :meth:`insert_batch`). Larger chunks amortize more root pivot
        calls per gather but waste more hints when the root changes
        structurally mid-block. The configured value is surfaced as
        ``PruningStats.hint_chunk``.
    """

    def __init__(
        self,
        policy: BirchStarPolicy,
        branching_factor: int = 15,
        max_nodes: int | None = None,
        threshold: float = 0.0,
        outlier_fraction: float | None = None,
        seed: int | np.random.Generator | None = None,
        tracer: NullTracer = NULL_TRACER,
        validate: str | None = None,
        hint_chunk: int = DEFAULT_HINT_CHUNK,
    ):
        if not isinstance(policy, BirchStarPolicy):
            raise ParameterError("policy must be a BirchStarPolicy")
        self.policy = policy
        self.branching_factor = check_integer(branching_factor, "branching_factor", minimum=2)
        if max_nodes is not None:
            max_nodes = check_integer(max_nodes, "max_nodes", minimum=3)
        self.max_nodes = max_nodes
        self.threshold = check_positive(threshold, "threshold", allow_zero=True)
        if outlier_fraction is not None:
            outlier_fraction = check_positive(outlier_fraction, "outlier_fraction")
            if outlier_fraction >= 1.0:
                raise ParameterError(
                    f"outlier_fraction must be < 1, got {outlier_fraction}"
                )
        #: BIRCH-style optional outlier handling: during a rebuild, leaf
        #: clusters holding fewer than ``outlier_fraction * average`` objects
        #: are parked instead of re-inserted, freeing nodes for real
        #: clusters; :meth:`reabsorb_outliers` re-inserts them once the
        #: threshold has stabilized. ``None`` disables the feature (the
        #: BUBBLE paper does not evaluate it).
        self.outlier_fraction = outlier_fraction
        self._outliers: list[ClusterFeature] = []
        self.n_outliers_parked = 0
        if validate not in (None, "debug"):
            raise ParameterError(f'validate must be None or "debug", got {validate!r}')
        self.validate = validate
        self.hint_chunk = check_integer(hint_chunk, "hint_chunk", minimum=1)
        stats = getattr(policy, "pruning_stats", None)
        if stats is not None:
            stats.hint_chunk = self.hint_chunk
        self.tracer = tracer
        self._rng = ensure_rng(seed)
        self.root: LeafNode | NonLeafNode = LeafNode()
        self.n_nodes = 1
        self.n_objects = 0
        self.n_rebuilds = 0
        self._split_since_audit = False

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, obj: Any) -> None:
        """Type I insertion of a single object; may trigger a rebuild."""
        with self.tracer.span("insert"):
            self._insert_top(None, obj)
            self.n_objects += 1
            if self.max_nodes is not None:
                while self.n_nodes > self.max_nodes:
                    self.rebuild(suggest_next_threshold(self, self._rng))
        if self.validate is not None and self._split_since_audit:
            self._audit()

    def insert_feature(self, feature: ClusterFeature) -> None:
        """Type II insertion of a whole cluster (used by :meth:`rebuild`)."""
        self._insert_top(feature, self.policy.routing_object(feature))

    def insert_batch(self, objs: Any) -> None:
        """Type I insertion of a block of objects.

        The resulting tree is identical to inserting the objects one at a
        time with :meth:`insert` — the block only changes *when* root-level
        pivot distances are measured. While the root is structurally stable
        the policy's :meth:`~repro.core.policy.BirchStarPolicy.begin_insert_block`
        gather pays the per-object root pivot call once for the whole
        remaining block; any structural change at the root (a direct child
        split, root growth, a rebuild) invalidates the remaining hints,
        which are discarded (``end_insert_block``) and re-gathered. Hints
        are gathered in chunks of :attr:`hint_chunk`, so wasted distance
        calls are bounded by one chunk per root-level structural change.

        Equivalence with sequential insertion additionally assumes the
        metric's batched rows are symmetric bit-for-bit (``d(p, q) ==
        d(q, p)``), which holds for every metric shipped in this repo.
        """
        if not objs:
            return
        with self.tracer.span("insert-batch"):
            self._insert_block([(None, obj) for obj in objs], rebuild=True)

    def insert_feature_batch(self, features: list[ClusterFeature]) -> None:
        """Type II insertion of a block of whole clusters.

        This is the merge primitive of the parallel build
        (:mod:`repro.parallel`): leaf CF*s harvested from shard trees are
        re-inserted here in a deterministic order, through the same hinted
        block path :meth:`rebuild` uses, so the merged tree is reproducible
        run-to-run. Unlike :meth:`insert_feature` (which :meth:`rebuild`
        calls with the object count already on the books), this method
        *adds* the features' populations to :attr:`n_objects` and then
        enforces the node budget, so invariants and audits hold on the
        merged tree.
        """
        if not features:
            return
        # Sum populations before inserting: a feature absorbed into an
        # earlier one from this same batch mutates that entry's n in place,
        # so summing afterwards would double-count the absorbed objects.
        total = sum(feature.n for feature in features)
        # Foreign features (worker shards, checkpoints) move their slab
        # storage into this tree's arena before routing — bit-for-bit, no
        # distance calls, NCD-neutral.
        for feature in features:
            self.policy.adopt_feature(feature)
        self._insert_block(
            [(feature, self.policy.routing_object(feature)) for feature in features],
            rebuild=False,
        )
        self.n_objects += total
        if self.max_nodes is not None:
            while self.n_nodes > self.max_nodes:
                self.rebuild(suggest_next_threshold(self, self._rng))
        if self.validate is not None and self._split_since_audit:
            self._audit()

    def _insert_block(
        self, items: list[tuple[Any, Any]], rebuild: bool
    ) -> None:
        """Insert ``(feature, routing_obj)`` items in order, re-gathering
        root hints whenever the root changes structurally."""
        pos = 0
        n = len(items)
        while pos < n:
            root = self.root
            if root.is_leaf:
                # No shared upper level to amortize yet: insert directly
                # until the root grows.
                feature, routing_obj = items[pos]
                self._insert_item(feature, routing_obj, rebuild, hint=None)
                pos += 1
                continue
            block = items[pos : pos + self.hint_chunk]
            hints = self.policy.begin_insert_block(
                root, [routing_obj for _, routing_obj in block]
            )
            consumed = 0
            for j, (feature, routing_obj) in enumerate(block):
                hint = float(hints[j]) if hints is not None else None
                changed = self._insert_item(feature, routing_obj, rebuild, hint=hint)
                consumed += 1
                if changed:
                    break
            pos += consumed
            if hints is not None and consumed < len(block):
                self.policy.end_insert_block(len(block) - consumed)

    def _insert_item(
        self, feature: Any, routing_obj: Any, rebuild: bool, hint: float | None
    ) -> bool:
        """One block item, with :meth:`insert`'s exact per-object semantics
        (span, rebuild loop, audit). Returns True if the root changed
        structurally — the signal that remaining block hints are stale."""
        if feature is not None:
            return self._insert_top_hinted(feature, routing_obj, hint)
        with self.tracer.span("insert"):
            changed = self._insert_top_hinted(None, routing_obj, hint)
            self.n_objects += 1
            if rebuild and self.max_nodes is not None:
                while self.n_nodes > self.max_nodes:
                    self.rebuild(suggest_next_threshold(self, self._rng))
                    changed = True
        if self.validate is not None and self._split_since_audit:
            self._audit()
        return changed

    def _insert_top_hinted(
        self, feature: Any, routing_obj: Any, hint: float | None
    ) -> bool:
        """:meth:`_insert_top`, but the *root-level* routing may consume a
        precomputed pivot-distance hint. Mirrors :meth:`_insert_into`'s
        non-leaf branch exactly apart from the hinted distance call."""
        root = self.root
        aux_before = getattr(root, "aux", None)
        if hint is None or root.is_leaf:
            self._insert_top(feature, routing_obj)
        else:
            dists = self.policy.nonleaf_distances_hinted(root, routing_obj, hint)
            idx = int(np.argmin(dists))
            self.policy.on_descend(root, idx, routing_obj, feature)
            split = self._insert_into(root.entries[idx].child, feature, routing_obj)
            if split is not None:
                left, right = split
                root.entries[idx] = NonLeafEntry(left)
                root.entries.insert(idx + 1, NonLeafEntry(right))
                self.policy.refresh_node(root)
                if len(root.entries) > self.branching_factor:
                    upper = self._split_nonleaf(root)
                    new_root = NonLeafNode(
                        [NonLeafEntry(upper[0]), NonLeafEntry(upper[1])]
                    )
                    self.root = new_root
                    self.n_nodes += 1
                    self.policy.refresh_node(new_root)
        return self.root is not root or getattr(self.root, "aux", None) is not aux_before

    def _insert_top(self, feature: Any, routing_obj: Any) -> None:
        split = self._insert_into(self.root, feature, routing_obj)
        if split is not None:
            left, right = split
            new_root = NonLeafNode([NonLeafEntry(left), NonLeafEntry(right)])
            self.root = new_root
            self.n_nodes += 1
            self.policy.refresh_node(new_root)

    def _insert_into(
        self, node: Any, feature: Any, routing_obj: Any
    ) -> tuple[Any, Any] | None:
        """Insert below ``node``; return ``(left, right)`` if it split."""
        if node.is_leaf:
            return self._insert_into_leaf(node, feature, routing_obj)

        dists = self.policy.nonleaf_distances(node, routing_obj)
        idx = int(np.argmin(dists))
        self.policy.on_descend(node, idx, routing_obj, feature)
        split = self._insert_into(node.entries[idx].child, feature, routing_obj)
        if split is None:
            return None
        left, right = split
        node.entries[idx] = NonLeafEntry(left)
        node.entries.insert(idx + 1, NonLeafEntry(right))
        # A child of this node split: refresh summaries at *all* entries
        # (Section 4.2.2).
        self.policy.refresh_node(node)
        if len(node.entries) > self.branching_factor:
            return self._split_nonleaf(node)
        return None

    def _insert_into_leaf(
        self, node: LeafNode, feature: Any, routing_obj: Any
    ) -> tuple[Any, Any] | None:
        if node.entries:
            dists = self.policy.leaf_distances(node, routing_obj)
            idx = int(np.argmin(dists))
            target = node.entries[idx]
            dist = float(dists[idx])
            if feature is None:
                if target.admits(routing_obj, dist, self.threshold):
                    target.absorb(routing_obj, dist)
                    self.policy.on_leaf_updated(node, target)
                    return None
            elif target.admits_feature(feature, dist, self.threshold):
                target.merge(feature)
                self.policy.on_leaf_updated(node, target)
                return None
        new_feature = feature if feature is not None else self.policy.new_leaf_feature(routing_obj)
        node.entries.append(new_feature)
        if len(node.entries) > self.branching_factor:
            return self._split_leaf(node)
        return None

    # ------------------------------------------------------------------
    # Node splitting
    # ------------------------------------------------------------------
    @staticmethod
    def _partition_by_seeds(dist_matrix: np.ndarray) -> tuple[list[int], list[int]]:
        """Pick the farthest pair as seeds; attach every other index to the
        closer seed. Returns the two index groups."""
        n = dist_matrix.shape[0]
        flat = int(np.argmax(dist_matrix))
        seed_a, seed_b = divmod(flat, n)
        if seed_a == seed_b:
            # All pairwise distances are zero; split by position.
            half = n // 2
            return list(range(half)), list(range(half, n))
        group_a, group_b = [seed_a], [seed_b]
        for i in range(n):
            if i in (seed_a, seed_b):
                continue
            if dist_matrix[i, seed_a] <= dist_matrix[i, seed_b]:
                group_a.append(i)
            else:
                group_b.append(i)
        return group_a, group_b

    def _split_leaf(self, node: LeafNode) -> tuple[LeafNode, LeafNode]:
        with self.tracer.span("split"):
            dm = self.policy.leaf_entry_matrix(node.entries)
        group_a, group_b = self._partition_by_seeds(dm)
        left = LeafNode([node.entries[i] for i in group_a])
        right = LeafNode([node.entries[i] for i in group_b])
        self.n_nodes += 1
        self._split_since_audit = True
        return left, right

    def _split_nonleaf(self, node: NonLeafNode) -> tuple[NonLeafNode, NonLeafNode]:
        with self.tracer.span("split"):
            dm = self.policy.nonleaf_entry_distances(node)
        group_a, group_b = self._partition_by_seeds(dm)
        left = NonLeafNode([node.entries[i] for i in group_a])
        right = NonLeafNode([node.entries[i] for i in group_b])
        self.n_nodes += 1
        self._split_since_audit = True
        # Both halves are new nodes: re-derive their node-level summaries
        # (policies may reuse the old node's state instead of refreshing).
        self.policy.on_node_split(node, left, right)
        return left, right

    # ------------------------------------------------------------------
    # Rebuilding
    # ------------------------------------------------------------------
    def rebuild(self, new_threshold: float) -> None:
        """Shrink the tree by raising ``T`` and re-inserting all leaf clusters.

        Re-insertion treats each leaf cluster collectively through its CF*
        (a Type II insertion); no data objects are revisited.
        """
        if not np.isfinite(new_threshold):
            raise TreeInvariantError(
                f"rebuild threshold is not finite ({new_threshold}); the "
                "distance function returned non-finite values"
            )
        if new_threshold <= self.threshold:
            raise ParameterError(
                f"rebuild threshold must exceed the current one "
                f"({new_threshold} <= {self.threshold})"
            )
        with self.tracer.span("rebuild"):
            self._rebuild(new_threshold)
        if self.validate is not None:
            self._audit()

    def _rebuild(self, new_threshold: float) -> None:
        features = self.leaf_features()
        if self.outlier_fraction is not None and features:
            average = sum(f.n for f in features) / len(features)
            cutoff = self.outlier_fraction * average
            parked = [f for f in features if f.n < cutoff]
            if parked:
                features = [f for f in features if f.n >= cutoff]
                self._outliers.extend(parked)
                self.n_outliers_parked += len(parked)
        logger.debug(
            "rebuild #%d: threshold %.6g -> %.6g, re-inserting %d clusters "
            "(%d currently parked as outliers)",
            self.n_rebuilds + 1,
            self.threshold,
            new_threshold,
            len(features),
            len(self._outliers),
        )
        self.threshold = new_threshold
        self.root = LeafNode()
        self.n_nodes = 1
        self.n_rebuilds += 1
        # Re-insert as one block: identical tree to one-at-a-time Type II
        # insertion, but root pivot distances are gathered batched.
        self._insert_block(
            [(feature, self.policy.routing_object(feature)) for feature in features],
            rebuild=False,
        )
        logger.debug(
            "rebuild #%d done: %d nodes, %d clusters",
            self.n_rebuilds,
            self.n_nodes,
            self.n_clusters,
        )

    def reabsorb_outliers(self) -> int:
        """Re-insert all parked outlier clusters; returns how many.

        Call once the data scan is complete (the threshold has stopped
        growing): parked clusters that were only noise against an immature
        threshold now merge into real clusters; genuine outliers become
        small leaf entries again.
        """
        parked, self._outliers = self._outliers, []
        for feature in parked:
            self.insert_feature(feature)
            if self.max_nodes is not None:
                while self.n_nodes > self.max_nodes:
                    self.rebuild(suggest_next_threshold(self, self._rng))
        return len(parked)

    @property
    def outliers(self) -> list[ClusterFeature]:
        """Currently parked outlier clusters (empty unless outlier handling
        is enabled and a rebuild parked some)."""
        return list(self._outliers)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def nearest_leaf_feature(self, obj: Any) -> ClusterFeature:
        """Route ``obj`` down the tree and return the closest leaf cluster.

        This is the read-only counterpart of insertion — the CF*-tree's
        purpose is "to direct a new object O to the cluster closest to it"
        (Section 3.2) — and it is how the data-cleaning application labels
        records in its second scan at logarithmic rather than linear cost.
        The routing is approximate in the same way insertion is: non-leaf
        summaries may send an object to a neighbouring leaf.
        """
        node = self.root
        while not node.is_leaf:
            dists = self.policy.nonleaf_distances(node, obj)
            node = node.entries[int(np.argmin(dists))].child
        if not node.entries:
            raise ParameterError("cannot route in an empty tree")
        dists = self.policy.leaf_distances(node, obj)
        return node.entries[int(np.argmin(dists))]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def leaves(self) -> Iterator[LeafNode]:
        """Yield every leaf node, left to right."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.extend(entry.child for entry in reversed(node.entries))

    def leaf_features(self) -> list[ClusterFeature]:
        """All leaf-level cluster features (the current sub-clusters)."""
        return [feature for leaf in self.leaves() for feature in leaf.entries]

    @property
    def n_clusters(self) -> int:
        """Number of sub-clusters currently maintained."""
        return sum(len(leaf.entries) for leaf in self.leaves())

    @property
    def height(self) -> int:
        """Number of levels (a lone leaf root has height 1)."""
        height, node = 1, self.root
        while not node.is_leaf:
            node = node.entries[0].child
            height += 1
        return height

    def _audit(self) -> None:
        """Run the full invariant sanitizer (``validate="debug"`` hook)."""
        # Imported lazily: repro.analysis depends on repro.core, not vice versa.
        from repro.analysis.audit import audit_tree

        self._split_since_audit = False
        audit_tree(self, raise_on_error=True)

    def check_invariants(self) -> None:
        """Raise :class:`TreeInvariantError` on any structural violation.

        Used by the test suite after randomized insertion sequences.
        """
        count = 0
        depths: set[int] = set()
        stack: list[tuple[object, int]] = [(self.root, 1)]
        total_objects = 0
        while stack:
            node, depth = stack.pop()
            count += 1
            if len(node.entries) > self.branching_factor:
                raise TreeInvariantError(
                    f"node holds {len(node.entries)} entries > B={self.branching_factor}"
                )
            if node.is_leaf:
                depths.add(depth)
                total_objects += sum(f.n for f in node.entries)
            else:
                if not node.entries:
                    raise TreeInvariantError("non-leaf node with no entries")
                stack.extend((e.child, depth + 1) for e in node.entries)
        if len(depths) > 1:
            raise TreeInvariantError(f"leaves at unequal depths: {sorted(depths)}")
        if count != self.n_nodes:
            raise TreeInvariantError(
                f"node counter {self.n_nodes} != walked count {count}"
            )
        total_objects += sum(f.n for f in self._outliers)
        if total_objects != self.n_objects:
            raise TreeInvariantError(
                f"leaf features plus parked outliers sum to {total_objects} "
                f"objects, expected {self.n_objects}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CFTree(nodes={self.n_nodes}, clusters={self.n_clusters}, "
            f"height={self.height}, T={self.threshold:.4g}, "
            f"rebuilds={self.n_rebuilds})"
        )
