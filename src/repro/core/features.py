"""Generalized cluster features (CF*) — Sections 3.1 and 4.1 of the paper.

A CF* is the condensed representation of one evolving cluster. It must be
(1) incrementally updatable when an object is inserted and (2) sufficient to
compute inter-cluster distances and quality metrics such as the radius.

:class:`BubbleClusterFeature` is the leaf-level CF* of BUBBLE and BUBBLE-FM:

* ``n`` — number of objects in the cluster;
* the **clustroid** — the member object minimizing RowSum (the sum of
  squared distances to all other members), i.e. the generalization of the
  centroid to distance spaces (Definition 4.1 / Lemma 4.2);
* up to ``2p`` **representative objects**: the ``p`` lowest-RowSum members
  (nearest the clustroid — these track clustroid drift under Type I
  insertions, justified by Observation 2) and the ``p`` highest-RowSum
  members (the cluster periphery — these track the clustroid jump under
  Type II merges, whose new clustroid lands midway between the old ones);
* the RowSum value of each representative;
* the cluster **radius** ``r = sqrt(RowSum(clustroid) / n)``
  (Definition 4.3).

While the cluster holds at most ``2p`` objects the feature keeps *all* of
them and every RowSum is exact; beyond that it switches to the heuristic
maintenance of Section 4.1.2, estimating the RowSum of an incoming object by
Observation 1::

    RowSum(O_new)  ≈  n * r^2 + n * d^2(clustroid, O_new)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.arena import FeatureArena
from repro.exceptions import ParameterError
from repro.metrics.base import DistanceFunction, pop_site, push_site
from repro.utils.numerics import compensated_add

__all__ = [
    "ClusterFeature",
    "BubbleClusterFeature",
    "SubCluster",
    "average_inter_cluster_distance",
    "object_to_set_distance",
]


def object_to_set_distance(metric: DistanceFunction, obj: Any, objects: Sequence) -> float:
    """``D2({obj}, objects)``: the average inter-cluster distance of Def. 4.4
    between a singleton and a set — the routing distance BUBBLE uses at
    non-leaf nodes. Counts ``len(objects)`` distance calls."""
    dists = metric.one_to_many(obj, objects)
    return float(np.sqrt(np.mean(dists**2)))


def average_inter_cluster_distance(
    metric: DistanceFunction, objects_a: Sequence, objects_b: Sequence
) -> float:
    """``D2(A, B)`` of Definition 4.4 between two object sets.

    Counts ``|A| * |B|`` distance calls, paid in a single batched
    :meth:`~repro.metrics.base.DistanceFunction.cross` dispatch; used
    between non-leaf entries when a node must be split and no image space
    is available.
    """
    if not objects_a or not objects_b:
        raise ParameterError("D2 requires two non-empty object sets")
    cross = metric.cross(objects_a, objects_b)
    total = float(np.einsum("ij,ij->", cross, cross))
    return float(np.sqrt(total / (len(objects_a) * len(objects_b))))


class ClusterFeature(ABC):
    """Abstract CF*: what the BIRCH* framework requires of a leaf feature."""

    #: Number of objects summarized by this feature.
    n: int

    @property
    @abstractmethod
    def clustroid(self) -> Any:
        """The representative center object of the cluster."""

    @property
    @abstractmethod
    def radius(self) -> float:
        """Root-mean-square distance of members to the clustroid."""

    @abstractmethod
    def absorb(self, obj: Any, dist_to_clustroid: float | None = None) -> None:
        """Type I insertion: add a single object to the cluster."""

    @abstractmethod
    def merge(self, other: "ClusterFeature") -> None:
        """Type II insertion: absorb another whole cluster (tree rebuild)."""

    @abstractmethod
    def distance_to(self, other: "ClusterFeature") -> float:
        """Inter-cluster distance used for the threshold test and splits."""

    def admits(self, obj: Any, dist: float, threshold: float) -> bool:
        """Threshold requirement: may ``obj`` (at distance ``dist`` from this
        cluster) be absorbed without violating quality ``threshold``?

        The default is the paper's D0 rule for BUBBLE: ``dist <= T``.
        """
        return dist <= threshold

    def admits_feature(self, other: "ClusterFeature", dist: float, threshold: float) -> bool:
        """Threshold requirement for merging another cluster into this one."""
        return dist <= threshold


class BubbleClusterFeature(ClusterFeature):
    """Leaf-level CF* of BUBBLE/BUBBLE-FM (Section 4.1), slab-backed.

    The feature is a thin *view* into a :class:`~repro.core.arena.FeatureArena`
    — ``(arena, row)`` — instead of owning Python lists: representative
    objects, RowSums, and their Neumaier compensation terms live in the
    arena's contiguous slabs, and every RowSum update is one vectorized
    compensated ndarray add (see :func:`repro.utils.numerics.compensated_add`).
    The *effective* RowSum of a slot is ``rowsum + compensation``; all
    decisions (clustroid argmin, radius, Observation 1 estimates) use the
    effective values, so incremental drift stays ``O(eps)`` relative
    regardless of stream length.

    Parameters
    ----------
    metric:
        Distance function of the space; all maintenance goes through it (and
        is therefore counted toward NCD).
    obj:
        The first member of the new cluster.
    representation_number:
        The paper's ``2p``: total representative objects kept once the
        cluster outgrows exact maintenance. Must be an even integer >= 2.
    arena:
        Slab arena to allocate this feature's row from. Tree-built features
        share the policy's per-tree arena; when omitted (direct
        construction, e.g. in tests) a private single-row arena is created.
    """

    __slots__ = ("metric", "n", "rep_cap", "p", "exact", "arena", "_row", "_clustroid_idx")

    def __init__(
        self,
        metric: DistanceFunction,
        obj: Any,
        representation_number: int = 10,
        *,
        arena: FeatureArena | None = None,
    ):
        if representation_number < 2 or representation_number % 2 != 0:
            raise ParameterError(
                f"representation_number (2p) must be an even integer >= 2, "
                f"got {representation_number}"
            )
        self.metric = metric
        self.rep_cap = int(representation_number)
        self.p = self.rep_cap // 2
        if arena is None:
            arena = FeatureArena(self.rep_cap, capacity=1)
        elif arena.width < self.rep_cap:
            raise ParameterError(
                f"arena width {arena.width} cannot hold {self.rep_cap} representatives"
            )
        self.n = 1
        #: True while every member object is kept and RowSums are exact.
        self.exact = True
        self.arena = arena
        self._row = arena.alloc()
        arena.reps[self._row, 0] = obj
        arena.counts[self._row] = 1
        self._clustroid_idx = 0

    # ------------------------------------------------------------------
    # Slab-view internals
    # ------------------------------------------------------------------
    @property
    def _count(self) -> int:
        return int(self.arena.counts[self._row])

    @property
    def _reps(self) -> list:
        """Live representative objects (a fresh list; objects by reference)."""
        return list(self.arena.rep_view(self._row))

    @property
    def _rowsums(self) -> np.ndarray:
        """Writable view of the *raw* (uncompensated) RowSum slots.

        Exposed for the audit layer's corruption probes; algorithmic reads
        go through :meth:`_effective_rowsums` which folds compensation in.
        """
        return self.arena.rowsum_view(self._row)

    @_rowsums.setter
    def _rowsums(self, values: Any) -> None:
        k = self._count
        self.arena.rowsums[self._row, :k] = np.asarray(values, dtype=np.float64)[:k]
        self.arena.compensations[self._row, :k] = 0.0

    def _effective_rowsums(self) -> np.ndarray:
        return self.arena.effective_rowsums(self._row)

    def _store(self, objs: list, rowsums: np.ndarray, comps: np.ndarray) -> None:
        """Overwrite this feature's row with a new representative set."""
        row, a = self._row, self.arena
        k = len(objs)
        for i, o in enumerate(objs):
            a.reps[row, i] = o
        a.reps[row, k:] = None
        a.rowsums[row, :k] = rowsums
        a.rowsums[row, k:] = 0.0
        a.compensations[row, :k] = comps
        a.compensations[row, k:] = 0.0
        a.counts[row] = k

    def release(self) -> None:
        """Return this feature's slab row to the arena.

        Called when the feature is merged away (Type II) so the row can be
        recycled; the feature must not be used afterwards.
        """
        if self._row >= 0:
            self.arena.release(self._row)
            self._row = -1

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    @property
    def clustroid(self) -> Any:
        return self.arena.reps[self._row, self._clustroid_idx]

    @property
    def radius(self) -> float:
        row = self._row
        rowsum = float(
            self.arena.rowsums[row, self._clustroid_idx]
            + self.arena.compensations[row, self._clustroid_idx]
        )
        return float(np.sqrt(max(rowsum, 0.0) / self.n))

    @property
    def representatives(self) -> list:
        """The representative objects currently kept (all members while exact)."""
        return list(self.arena.rep_view(self._row))

    @property
    def rowsums(self) -> list[float]:
        """Effective (compensated) RowSum values parallel to :attr:`representatives`."""
        return [float(v) for v in self._effective_rowsums()]

    @property
    def nearest_representatives(self) -> list:
        """The (at most) ``p`` kept members closest to the clustroid."""
        order = np.argsort(self._effective_rowsums())
        reps = self.arena.rep_view(self._row)
        return [reps[i] for i in order[: self.p]]

    @property
    def peripheral_representatives(self) -> list:
        """The kept members farthest from the clustroid (cluster periphery)."""
        order = np.argsort(self._effective_rowsums())
        reps = self.arena.rep_view(self._row)
        return [reps[i] for i in order[self.p :]]

    # ------------------------------------------------------------------
    # Type I insertion
    # ------------------------------------------------------------------
    def absorb(self, obj: Any, dist_to_clustroid: float | None = None) -> None:
        """Insert a single object (Section 4.1.2, Type I).

        ``dist_to_clustroid`` is accepted for interface symmetry; the batch
        update below measures the clustroid with the other representatives
        in a single ``one_to_many`` call, so a precomputed value is not
        reused.
        """
        reps = self._reps
        push_site("leaf-update")
        try:
            dists = self.metric.one_to_many(obj, reps)
        finally:
            pop_site()
        sq = np.asarray(dists, dtype=np.float64) ** 2
        if self.exact:
            rowsum_new = float(sq.sum())
        else:
            # Observation 1 estimate against the *current* cluster of size n.
            d0 = float(dists[self._clustroid_idx])
            rowsum_new = self.n * (self.radius**2 + d0**2)
        row, a = self._row, self.arena
        k = len(reps)
        compensated_add(a.rowsums[row, :k], a.compensations[row, :k], sq)
        self.n += 1

        if k < self.rep_cap:
            a.reps[row, k] = obj
            a.rowsums[row, k] = rowsum_new
            a.compensations[row, k] = 0.0
            a.counts[row] = k + 1
        else:
            if self.exact:
                self.exact = False
            # Replace the highest-RowSum member of the *nearest* set if the
            # newcomer beats it (the paper's O_p replacement rule).
            eff = self._effective_rowsums()
            order = np.argsort(eff)
            worst_near = int(order[self.p - 1])
            if rowsum_new < eff[worst_near]:
                a.reps[row, worst_near] = obj
                a.rowsums[row, worst_near] = rowsum_new
                a.compensations[row, worst_near] = 0.0
        self._clustroid_idx = int(np.argmin(self._effective_rowsums()))

    # ------------------------------------------------------------------
    # Type II insertion
    # ------------------------------------------------------------------
    def merge(self, other: "BubbleClusterFeature") -> None:
        """Merge another cluster into this one (Section 4.1.2, Type II).

        While both clusters are exact and the union fits within ``2p``
        objects, the merged feature stays exact (all cross distances are
        computed). Otherwise every kept representative of either side
        becomes a clustroid candidate, its RowSum against the *other*
        cluster estimated via Observation 1 from the other side's clustroid
        and radius; the new clustroid is the candidate with the smallest
        combined estimate — in practice an object midway between the two old
        clustroids, which is why the periphery representatives are kept.

        The merged-away feature's slab row is released back to the arena.
        """
        if not isinstance(other, BubbleClusterFeature):
            raise ParameterError("BubbleClusterFeature can only merge with its own kind")
        n1, n2 = self.n, other.n
        reps_self, reps_other = self._reps, other._reps
        if self.exact and other.exact and len(reps_self) + len(reps_other) <= self.rep_cap:
            self._merge_exact(other)
            return

        r1_sq, r2_sq = self.radius**2, other.radius**2
        c1, c2 = self.clustroid, other.clustroid
        # d(o, other's clustroid) for each of our candidates, and vice versa.
        push_site("leaf-update")
        try:
            d_to_c2 = self.metric.one_to_many(c2, reps_self)
            d_to_c1 = self.metric.one_to_many(c1, reps_other)
        finally:
            pop_site()

        cand_objs = reps_self + reps_other
        cand_rs = np.concatenate([self._rowsums, other._rowsums])
        cand_comp = np.concatenate(
            [self.arena.compensation_view(self._row), other.arena.compensation_view(other._row)]
        )
        deltas = np.concatenate(
            [
                n2 * (r2_sq + np.asarray(d_to_c2, dtype=np.float64) ** 2),
                n1 * (r1_sq + np.asarray(d_to_c1, dtype=np.float64) ** 2),
            ]
        )
        compensated_add(cand_rs, cand_comp, deltas)

        self.n = n1 + n2
        self.exact = False
        if len(cand_objs) > self.rep_cap:
            order = np.argsort(cand_rs + cand_comp)
            keep = list(order[: self.p]) + list(order[len(order) - self.p :])
            cand_objs = [cand_objs[i] for i in keep]
            cand_rs = cand_rs[keep]
            cand_comp = cand_comp[keep]
        self._store(cand_objs, cand_rs, cand_comp)
        self._clustroid_idx = int(np.argmin(self._effective_rowsums()))
        other.release()

    def _merge_exact(self, other: "BubbleClusterFeature") -> None:
        """Exact merge: both member lists are complete, so recompute RowSums
        from the full cross-distance matrix (``n1 * n2`` calls, one batched
        gather)."""
        reps_self, reps_other = self._reps, other._reps
        push_site("leaf-update")
        try:
            cross = self.metric.cross(reps_self, reps_other)
        finally:
            pop_site()
        cross_sq = np.asarray(cross, dtype=np.float64) ** 2
        new_rs = np.concatenate([self._rowsums, other._rowsums])
        new_comp = np.concatenate(
            [self.arena.compensation_view(self._row), other.arena.compensation_view(other._row)]
        )
        compensated_add(new_rs, new_comp, np.concatenate([cross_sq.sum(axis=1), cross_sq.sum(axis=0)]))
        self._store(reps_self + reps_other, new_rs, new_comp)
        self.n += other.n
        self._clustroid_idx = int(np.argmin(self._effective_rowsums()))
        other.release()

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def distance_to(self, other: "BubbleClusterFeature") -> float:
        """``D0`` of Definition 4.4: distance between the two clustroids."""
        return self.metric.distance(self.clustroid, other.clustroid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BubbleClusterFeature(n={self.n}, radius={self.radius:.4g}, "
            f"reps={self._count}, exact={self.exact})"
        )


@dataclass
class SubCluster:
    """Immutable snapshot of one discovered sub-cluster.

    This is what a pre-clustering run returns for downstream analysis
    (Section 2: the output of the pre-clustering phase feeds domain-specific
    methods, in our pipelines a hierarchical clustering of the clustroids).
    """

    #: The cluster's clustroid (an actual member object).
    clustroid: object
    #: Number of objects absorbed into the cluster.
    n: int
    #: RMS distance of members to the clustroid.
    radius: float
    #: Representative member objects (including the clustroid).
    representatives: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ParameterError(f"SubCluster.n must be >= 1, got {self.n}")
        if self.radius < 0:
            raise ParameterError(f"SubCluster.radius must be >= 0, got {self.radius}")
