"""Vantage-point tree: a second exact metric index.

Where the M-tree is the dynamic, paged index the paper cites, the VP-tree
(Yianilos, SODA 1993) is its static counterpart: built once over a known
object set by recursive median-distance partitioning around randomly chosen
vantage points, it answers exact nearest-neighbour and range queries with
triangle-inequality pruning. For the second-phase labeling workload —
a fixed set of clustroids queried many times — a static index is a natural
fit, and having two independent exact indexes lets the test suite
cross-validate both against brute force and each other.
"""

from repro.vptree.vptree import VPTree

__all__ = ["VPTree"]
