"""Vantage-point tree for exact similarity search in metric spaces.

Construction: pick a vantage point, measure every remaining object against
it, split at the median distance into an *inside* and an *outside* subtree,
recurse. Search prunes a subtree whenever the triangle inequality proves it
cannot contain anything within the current radius:

* inside is reachable only if ``d(q, vp) - tau <= mu``;
* outside is reachable only if ``d(q, vp) + tau >= mu``

where ``mu`` is the node's median split distance and ``tau`` the current
search radius (shrinking during kNN).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Sequence

import numpy as np

from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.metrics.base import DistanceFunction
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_integer

__all__ = ["VPTree"]


class _Node:
    __slots__ = ("index", "mu", "inside", "outside")

    def __init__(self, index: int, mu: float | None, inside, outside):
        self.index = index
        self.mu = mu
        self.inside = inside
        self.outside = outside


class VPTree:
    """Static exact metric index built by median partitioning.

    Parameters
    ----------
    metric:
        The distance function; NCD accumulates on it.
    leaf_size:
        Subtrees at or below this size are stored as flat buckets and
        scanned linearly (cheaper than deep recursion for tiny sets).
    seed:
        Seed/generator for vantage-point selection.
    """

    def __init__(
        self,
        metric: DistanceFunction,
        leaf_size: int = 8,
        seed=None,
    ):
        if not isinstance(metric, DistanceFunction):
            raise ParameterError("metric must be a DistanceFunction")
        self.metric = metric
        self.leaf_size = check_integer(leaf_size, "leaf_size", minimum=1)
        self._rng = ensure_rng(seed)
        self._objects: list | None = None
        self._root = None

    # ------------------------------------------------------------------
    def build(self, objects: Sequence) -> "VPTree":
        """Index ``objects``; they are referenced, not copied."""
        objects = list(objects)
        if not objects:
            raise EmptyDatasetError("VPTree.build requires at least one object")
        self._objects = objects
        self._root = self._build(list(range(len(objects))))
        return self

    def _build(self, indices: list[int]):
        if not indices:
            return None
        if len(indices) <= self.leaf_size:
            return list(indices)  # flat bucket
        vp_pos = int(self._rng.integers(0, len(indices)))
        vp = indices.pop(vp_pos)
        dists = self.metric.one_to_many(
            self._objects[vp], [self._objects[i] for i in indices]
        )
        mu = float(np.median(dists))
        inside = [i for i, d in zip(indices, dists) if d <= mu]
        outside = [i for i, d in zip(indices, dists) if d > mu]
        if not inside or not outside:
            # Degenerate split (many ties): store as a bucket to guarantee
            # termination.
            return [vp] + indices
        return _Node(vp, mu, self._build(inside), self._build(outside))

    # ------------------------------------------------------------------
    def knn(self, query, k: int) -> list[tuple[float, object]]:
        """The ``k`` nearest objects as ``(distance, object)``, ascending."""
        k = check_integer(k, "k", minimum=1)
        if self._root is None:
            raise NotFittedError("VPTree.knn called before build")
        counter = itertools.count()
        best: list[tuple[float, int, int]] = []  # (-dist, tiebreak, index)

        def tau() -> float:
            return -best[0][0] if len(best) == k else np.inf

        def offer(index: int, dist: float) -> None:
            if dist <= tau():
                heapq.heappush(best, (-dist, next(counter), index))
                if len(best) > k:
                    heapq.heappop(best)

        def search(node) -> None:
            if node is None:
                return
            if isinstance(node, list):
                dists = self.metric.one_to_many(
                    query, [self._objects[i] for i in node]
                )
                for i, d in zip(node, dists):
                    offer(i, float(d))
                return
            d_vp = self.metric.distance(query, self._objects[node.index])
            offer(node.index, d_vp)
            # Visit the more promising side first to shrink tau early.
            first, second = (
                (node.inside, node.outside) if d_vp <= node.mu else (node.outside, node.inside)
            )
            search(first)
            if d_vp <= node.mu:
                if d_vp + tau() >= node.mu:
                    search(second)
            elif d_vp - tau() <= node.mu:
                search(second)

        search(self._root)
        return sorted((-neg, self._objects[i]) for neg, _, i in best)

    def nearest(self, query) -> tuple[float, object]:
        """The single nearest object as ``(distance, object)``."""
        return self.knn(query, 1)[0]

    def range_query(self, query, radius: float) -> list:
        """All indexed objects within ``radius`` of ``query`` (inclusive)."""
        if radius < 0:
            raise ParameterError(f"radius must be >= 0, got {radius}")
        if self._root is None:
            raise NotFittedError("VPTree.range_query called before build")
        out: list = []

        def search(node) -> None:
            if node is None:
                return
            if isinstance(node, list):
                dists = self.metric.one_to_many(
                    query, [self._objects[i] for i in node]
                )
                out.extend(
                    self._objects[i] for i, d in zip(node, dists) if d <= radius
                )
                return
            d_vp = self.metric.distance(query, self._objects[node.index])
            if d_vp <= radius:
                out.append(self._objects[node.index])
            if d_vp - radius <= node.mu:
                search(node.inside)
            if d_vp + radius >= node.mu:
                search(node.outside)

        search(self._root)
        return out

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._objects) if self._objects is not None else 0
