"""Vantage-point tree for exact similarity search in metric spaces.

Construction: pick a vantage point, measure every remaining object against
it, split at the median distance into an *inside* and an *outside* subtree,
recurse. Search prunes a subtree whenever the triangle inequality proves it
cannot contain anything within the current radius:

* inside is reachable only if ``d(q, vp) - tau <= mu``;
* outside is reachable only if ``d(q, vp) + tau >= mu``

where ``mu`` is the node's median split distance and ``tau`` the current
search radius (shrinking during kNN).

The tree implements the :class:`repro.index.MetricIndex` protocol: objects
are indexed by build-sequence position, :meth:`~VPTree.nearest` and
:meth:`~VPTree.within` return typed :class:`~repro.index.QueryResult`
records, bucket scans go through one counted ``one_to_many`` gather, and
measured distances persist across queries in the shared
:class:`~repro.index.QueryBoundCache`.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.exceptions import EmptyDatasetError, NotFittedError
from repro.index.base import (
    QUERY_BUILD_SITE,
    MetricIndex,
    NeighborHeap,
    QueryBoundCache,
    QuerySession,
)
from repro.metrics.base import DistanceFunction, pop_site, push_site
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_integer

__all__ = ["VPTree"]


class _Node:
    __slots__ = ("index", "mu", "inside", "outside")

    def __init__(self, index: int, mu: float | None, inside: Any, outside: Any):
        self.index = index
        self.mu = mu
        self.inside = inside
        self.outside = outside


class VPTree(MetricIndex):
    """Static exact metric index built by median partitioning.

    Parameters
    ----------
    metric:
        The distance function; NCD accumulates on it.
    leaf_size:
        Subtrees at or below this size are stored as flat buckets and
        scanned linearly (cheaper than deep recursion for tiny sets).
    seed:
        Seed/generator for vantage-point selection.
    bound_cache:
        Optional shared :class:`~repro.index.QueryBoundCache`; defaults to
        a private one.
    """

    backend = "vptree"

    def __init__(
        self,
        metric: DistanceFunction,
        leaf_size: int = 8,
        seed: Any = None,
        bound_cache: QueryBoundCache | None = None,
    ):
        super().__init__(metric, bound_cache=bound_cache)
        self.leaf_size = check_integer(leaf_size, "leaf_size", minimum=1)
        self._rng = ensure_rng(seed)
        self._objects: list[Any] | None = None
        self._root: Any = None

    # ------------------------------------------------------------------
    def build(self, objects: Sequence[Any]) -> "VPTree":
        """Index ``objects``; they are referenced, not copied."""
        objects = list(objects)
        if not objects:
            raise EmptyDatasetError("VPTree.build requires at least one object")
        self._objects = objects
        start_calls = self.metric.n_calls
        push_site(QUERY_BUILD_SITE)
        try:
            self._root = self._build(list(range(len(objects))))
        finally:
            pop_site()
        self._count_build(start_calls)
        return self

    def _build(self, indices: list[int]) -> Any:
        if not indices:
            return None
        if len(indices) <= self.leaf_size:
            return list(indices)  # flat bucket
        assert self._objects is not None
        vp_pos = int(self._rng.integers(0, len(indices)))
        vp = indices.pop(vp_pos)
        dists = self.metric.one_to_many(
            self._objects[vp], [self._objects[i] for i in indices]
        )
        mu = float(np.median(dists))
        inside = [i for i, d in zip(indices, dists) if d <= mu]
        outside = [i for i, d in zip(indices, dists) if d > mu]
        if not inside or not outside:
            # Degenerate split (many ties): store as a bucket to guarantee
            # termination.
            return [vp] + indices
        return _Node(vp, mu, self._build(inside), self._build(outside))

    # ------------------------------------------------------------------
    # MetricIndex protocol
    # ------------------------------------------------------------------
    @property
    def objects(self) -> Sequence[Any]:
        if self._objects is None:
            return []
        return self._objects

    def __len__(self) -> int:
        return len(self._objects) if self._objects is not None else 0

    def _check_ready(self) -> None:
        if self._root is None:
            raise NotFittedError("VPTree queried before build")

    def _knn(
        self, session: QuerySession, obj: Any, k: int
    ) -> list[tuple[float, int]]:
        heap = NeighborHeap(k)

        def search(node: Any) -> None:
            if node is None:
                return
            if isinstance(node, list):
                dists = session.measure_many(node)
                for i, value in zip(node, dists):
                    heap.offer(i, float(value))
                return
            d_vp = session.measure(node.index)
            heap.offer(node.index, d_vp)
            # Visit the more promising side first to shrink tau early;
            # boundary tests keep equality so median ties are never lost.
            if d_vp <= node.mu:
                search(node.inside)
                session.bound_checks += 1
                if d_vp + heap.tau >= node.mu:
                    search(node.outside)
            else:
                search(node.outside)
                session.bound_checks += 1
                if d_vp - heap.tau <= node.mu:
                    search(node.inside)

        search(self._root)
        return heap.items()

    def _range(
        self, session: QuerySession, obj: Any, radius: float
    ) -> list[tuple[float, int]]:
        out: list[tuple[float, int]] = []

        def search(node: Any) -> None:
            if node is None:
                return
            if isinstance(node, list):
                dists = session.measure_many(node)
                out.extend(
                    (float(value), i)
                    for i, value in zip(node, dists)
                    if value <= radius
                )
                return
            d_vp = session.measure(node.index)
            if d_vp <= radius:
                out.append((d_vp, node.index))
            session.bound_checks += 2
            if d_vp - radius <= node.mu:
                search(node.inside)
            if d_vp + radius >= node.mu:
                search(node.outside)

        search(self._root)
        return out

    # ------------------------------------------------------------------
    # Legacy query surface (kept for existing call sites)
    # ------------------------------------------------------------------
    def knn(self, query: Any, k: int) -> list[tuple[float, object]]:
        """The ``k`` nearest objects as ``(distance, object)``, ascending."""
        return [(n.distance, n.obj) for n in self.nearest(query, k)]

    def range_query(self, query: Any, radius: float) -> list:
        """All indexed objects within ``radius`` of ``query`` (inclusive)."""
        return [n.obj for n in self.within(query, radius)]
