"""GuardedMetric: armor between the library and an untrusted distance function.

The whole BIRCH* framework interacts with data only through a user-supplied
``d`` — which is exactly where production deployments break: user callables
raise on malformed records, return NaN when a backend times out, go negative
on floating-point edge cases, or silently violate symmetry. BUBBLE-FM exists
*because* ``d`` may be expensive (Section 5 of the paper); this module exists
because ``d`` may also be wrong.

:class:`GuardedMetric` wraps any :class:`~repro.metrics.base.DistanceFunction`
and

* validates every result (finite, non-negative, optional randomized symmetry
  spot-checks),
* applies a configurable fault policy — ``"raise"``, ``"retry"`` with
  exponential backoff plus jitter, or ``"substitute"`` and record,
* enforces hard budgets: a maximum number of distance calls (the paper's NCD)
  and a wall-clock deadline, raised as typed exceptions so a scan can stop
  cleanly at a checkpoint instead of running away.

Every fault is recorded as a :class:`MetricFault`, and aggregate counters
(`n_retries`, `n_substitutions`, ...) feed the ingestion report printed by
the CLI.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.exceptions import (
    DeadlineExceededError,
    MetricBudgetExceededError,
    MetricValueError,
    ParameterError,
)
from repro.metrics.base import DistanceFunction
from repro.utils.rng import ensure_rng

__all__ = ["GuardedMetric", "MetricFault"]

_POLICIES = ("raise", "retry", "substitute")

#: Negative results larger than this are treated as floating-point noise and
#: clamped to zero rather than reported as contract violations.
_NEGATIVE_TOLERANCE = 1e-9


@dataclass
class MetricFault:
    """One recorded misbehavior of the wrapped distance function."""

    #: ``"exception"``, ``"invalid-value"``, or ``"asymmetry"``.
    kind: str
    #: Human-readable detail (exception repr or the offending value).
    detail: str
    #: Evaluation attempts spent on this pair (1 = no retries).
    attempts: int = 1
    #: True when the fault policy substituted a value instead of raising.
    substituted: bool = False


class GuardedMetric(DistanceFunction):
    """Validate, retry, budget, and account every call to an inner metric.

    Parameters
    ----------
    inner:
        The distance function to guard. Its own NCD counter is left
        untouched; this wrapper's ``n_calls`` is the authoritative count.
    on_fault:
        What to do when the inner metric raises or returns an invalid
        value: ``"raise"`` propagates immediately (invalid values become
        :class:`~repro.exceptions.MetricValueError`); ``"retry"``
        re-evaluates up to ``max_retries`` times with exponential backoff
        and jitter, then raises; ``"substitute"`` records the fault and
        returns ``substitute_value``.
    max_retries:
        Extra attempts per pair under the ``"retry"`` policy.
    backoff, backoff_multiplier, jitter:
        Sleep ``backoff * multiplier**i * (1 + jitter * U[0,1))`` seconds
        before retry ``i``. Pass ``sleep=lambda s: None`` in tests.
    substitute_value:
        Finite non-negative stand-in distance for the ``"substitute"``
        policy (required by that policy, unused otherwise).
    symmetry_check_rate:
        Probability per scalar call of also evaluating ``d(b, a)`` and
        comparing. Costs one extra (counted) call per check; 0 disables.
    symmetry_rtol:
        Relative tolerance for the symmetry comparison.
    max_calls:
        Hard NCD budget; the call that would exceed it raises
        :class:`~repro.exceptions.MetricBudgetExceededError` *before*
        evaluating.
    deadline_seconds:
        Wall-clock budget measured from construction (or the last
        :meth:`reset_budget`); raises
        :class:`~repro.exceptions.DeadlineExceededError`.
    seed:
        Seed/generator for jitter and symmetry-check sampling.
    sleep, clock:
        Injectable time functions, so tests run instantly and
        deterministically.
    max_fault_records:
        Cap on stored :class:`MetricFault` records (counters keep exact
        totals regardless).

    Examples
    --------
    >>> from repro.metrics import FunctionDistance
    >>> inner = FunctionDistance(lambda a, b: abs(a - b))
    >>> guard = GuardedMetric(inner, on_fault="substitute", substitute_value=0.0)
    >>> guard.distance(3.0, 5.0)
    2.0
    >>> guard.n_faults
    0
    """

    name = "guarded"

    def __init__(
        self,
        inner: DistanceFunction,
        *,
        on_fault: str = "raise",
        max_retries: int = 3,
        backoff: float = 0.05,
        backoff_multiplier: float = 2.0,
        jitter: float = 0.5,
        substitute_value: float | None = None,
        symmetry_check_rate: float = 0.0,
        symmetry_rtol: float = 1e-6,
        max_calls: int | None = None,
        deadline_seconds: float | None = None,
        seed: int | np.random.Generator | None = None,
        sleep: Any=time.sleep,
        clock: Any=time.monotonic,
        max_fault_records: int = 1000,
    ):
        super().__init__()
        if not isinstance(inner, DistanceFunction):
            raise ParameterError("inner must be a DistanceFunction")
        if on_fault not in _POLICIES:
            raise ParameterError(f"on_fault must be one of {_POLICIES}, got {on_fault!r}")
        if on_fault == "substitute":
            if substitute_value is None:
                raise ParameterError(
                    'on_fault="substitute" requires a substitute_value '
                    "(a finite, non-negative stand-in distance)"
                )
            substitute_value = float(substitute_value)
            if not np.isfinite(substitute_value) or substitute_value < 0:
                raise ParameterError(
                    f"substitute_value must be finite and >= 0, got {substitute_value}"
                )
        if max_retries < 0:
            raise ParameterError(f"max_retries must be >= 0, got {max_retries}")
        if not 0.0 <= symmetry_check_rate <= 1.0:
            raise ParameterError(
                f"symmetry_check_rate must be in [0, 1], got {symmetry_check_rate}"
            )
        if max_calls is not None and max_calls < 1:
            raise ParameterError(f"max_calls must be >= 1, got {max_calls}")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ParameterError(
                f"deadline_seconds must be > 0, got {deadline_seconds}"
            )
        self.inner = inner
        self.name = f"guarded({inner.name})"
        self.on_fault = on_fault
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.backoff_multiplier = float(backoff_multiplier)
        self.jitter = float(jitter)
        self.substitute_value = substitute_value
        self.symmetry_check_rate = float(symmetry_check_rate)
        self.symmetry_rtol = float(symmetry_rtol)
        self.max_calls = max_calls
        self.deadline_seconds = deadline_seconds
        self._rng = ensure_rng(seed)
        self._sleep = sleep
        self._clock = clock
        self._start = clock()
        self.max_fault_records = int(max_fault_records)
        self._faults: list[MetricFault] = []
        self.n_faults = 0
        self.n_retries = 0
        self.n_substitutions = 0
        self.n_symmetry_checks = 0
        self.n_symmetry_failures = 0

    # ------------------------------------------------------------------
    # Budgets
    # ------------------------------------------------------------------
    def reset_budget(self) -> None:
        """Restart the wall-clock deadline and the NCD budget window.

        The NCD budget compares ``max_calls`` against :attr:`n_calls`, so
        this also resets the call counter (use between scan phases).
        """
        self._start = self._clock()
        self.reset_counter()

    @property
    def remaining_calls(self) -> int | None:
        """Calls left in the NCD budget (``None`` when unlimited)."""
        if self.max_calls is None:
            return None
        return max(self.max_calls - self._n_calls, 0)

    @property
    def remaining_seconds(self) -> float | None:
        """Wall-clock seconds left before the deadline (``None`` when unset)."""
        if self.deadline_seconds is None:
            return None
        return max(self.deadline_seconds - (self._clock() - self._start), 0.0)

    def _check_deadline(self) -> None:
        if self.deadline_seconds is not None:
            elapsed = self._clock() - self._start
            if elapsed > self.deadline_seconds:
                raise DeadlineExceededError(
                    f"wall-clock deadline of {self.deadline_seconds:.3g}s "
                    f"exceeded ({elapsed:.3g}s elapsed)"
                )

    def _check_budget(self, upcoming: int) -> None:
        if self.max_calls is not None and self._n_calls + upcoming > self.max_calls:
            raise MetricBudgetExceededError(
                f"distance-call budget exhausted: {self._n_calls} calls made, "
                f"{upcoming} more requested, budget is {self.max_calls}"
            )
        self._check_deadline()

    def count_external(self, n: int, site: str | None = None) -> None:
        """Absorb worker-side calls *against the budget*.

        A parallel build splits ``max_calls`` across shard workers and
        re-books their spending here; checking the budget before absorbing
        keeps the global cap authoritative even if a worker was handed a
        stale or over-generous share.
        """
        if n > 0:
            self._check_budget(n)
        super().count_external(n, site=site)

    # ------------------------------------------------------------------
    # Fault bookkeeping
    # ------------------------------------------------------------------
    @property
    def faults(self) -> list[MetricFault]:
        """Recorded faults, oldest first (capped at ``max_fault_records``)."""
        return list(self._faults)

    def _record(self, kind: str, detail: str, attempts: int, substituted: bool = False) -> None:
        self.n_faults += 1
        if len(self._faults) < self.max_fault_records:
            self._faults.append(MetricFault(kind, detail, attempts, substituted))

    # ------------------------------------------------------------------
    # Guarded evaluation
    # ------------------------------------------------------------------
    def _invalid_reason(self, value: float) -> str | None:
        if not np.isfinite(value):
            return f"non-finite distance {value!r}"
        if value < 0:
            return f"negative distance {value!r}"
        return None

    def _guarded_eval(self, a: Any, b: Any) -> float:
        """Evaluate one pair applying the fault policy; never touches the
        counter (callers count and budget-check first)."""
        attempts = 0
        delay = self.backoff
        while True:
            attempts += 1
            problem: str | None = None
            error: Exception | None = None
            try:
                # The guard *is* the counting layer: it budgets and counts in
                # its own public wrappers, then probes the raw untrusted hook.
                value = float(self.inner._distance(a, b))  # reprolint: disable=RPL001 -- the guard is the counting layer probing the raw hook
            except Exception as exc:  # the whole point: d is untrusted
                error = exc
                problem = repr(exc)
            else:
                if -_NEGATIVE_TOLERANCE <= value < 0.0:
                    value = 0.0  # floating-point noise, not a contract breach
                problem = self._invalid_reason(value)
                if problem is None:
                    return value
            if self.on_fault == "retry" and attempts <= self.max_retries:
                self.n_retries += 1
                self._sleep(delay * (1.0 + self.jitter * float(self._rng.random())))
                delay *= self.backoff_multiplier
                continue
            kind = "exception" if error is not None else "invalid-value"
            if self.on_fault == "substitute":
                self._record(kind, problem, attempts, substituted=True)
                self.n_substitutions += 1
                return self.substitute_value
            self._record(kind, problem, attempts)
            if error is not None:
                raise error
            raise MetricValueError(
                f"metric {self.inner.name!r} returned {problem} "
                f"after {attempts} attempt(s)"
            )

    # ------------------------------------------------------------------
    # Public measuring API (budgeted + counted)
    # ------------------------------------------------------------------
    def distance(self, a: Any, b: Any) -> float:
        self._check_budget(1)
        self._count(1)
        value = self._guarded_eval(a, b)
        if self.symmetry_check_rate and float(self._rng.random()) < self.symmetry_check_rate:
            self.n_symmetry_checks += 1
            self._count(1)
            back = self._guarded_eval(b, a)
            scale = max(abs(value), abs(back), 1.0)
            if abs(value - back) > self.symmetry_rtol * scale:
                self.n_symmetry_failures += 1
                detail = f"d(a,b)={value!r} but d(b,a)={back!r}"
                if self.on_fault == "substitute":
                    self._record("asymmetry", detail, 1, substituted=True)
                    self.n_substitutions += 1
                    return 0.5 * (value + back)
                self._record("asymmetry", detail, 1)
                raise MetricValueError(f"metric {self.inner.name!r} is asymmetric: {detail}")
        return value

    def _batch_fits_budget(self, upcoming: int) -> bool:
        return self.max_calls is None or self._n_calls + upcoming <= self.max_calls

    def _validated_batch(self, raw: Any, shape: tuple[int, ...]) -> np.ndarray | None:
        """Coerce a raw batch-kernel result; ``None`` means "fall back"."""
        if raw is None:
            return None
        out = np.asarray(raw, dtype=np.float64)
        if out.shape != shape:
            return None
        out[(out < 0.0) & (out >= -_NEGATIVE_TOLERANCE)] = 0.0
        if bool(np.all(np.isfinite(out)) and np.all(out >= 0.0)):
            return out
        return None

    def _guarded_pair(self, a: Any, b: Any) -> float:
        """One budget-checked, counted, policy-guarded evaluation.

        This is the unit of the slow gather paths: an abort mid-gather
        (budget or deadline) leaves the ledger charged only for the pairs
        that were actually attempted.
        """
        self._check_budget(1)
        self._count(1)
        return self._guarded_eval(a, b)

    def one_to_many(self, obj: Any, objects: Sequence) -> np.ndarray:
        n = len(objects)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        self._check_budget(0)  # deadline gate before any work
        if self._batch_fits_budget(n):
            # Fast path: probe the inner batch kernel uncounted, validate the
            # whole array, and charge the ledger only when it is usable — so a
            # faulty kernel falls back to guarded pair-by-pair evaluation
            # without double counting.
            try:
                raw = self.inner._one_to_many(obj, objects)  # reprolint: disable=RPL001 -- the guard is the counting layer probing the raw hook
            except Exception:
                raw = None
            out = self._validated_batch(raw, (n,))
            if out is not None:
                self._count(n)
                return out
        # Slow path (faulty kernel, or the budget cannot cover the batch):
        # measure pair by pair, budgeting and counting each evaluation.
        return np.fromiter(
            (self._guarded_pair(obj, o) for o in objects),
            dtype=np.float64,
            count=n,
        )

    def pairwise(self, objects: Sequence) -> np.ndarray:
        n = len(objects)
        pairs = n * (n - 1) // 2
        if pairs == 0:
            return np.zeros((n, n), dtype=np.float64)
        self._check_budget(0)
        if self._batch_fits_budget(pairs):
            try:
                raw = self.inner._pairwise(objects)  # reprolint: disable=RPL001 -- the guard is the counting layer probing the raw hook
            except Exception:
                raw = None
            out = self._validated_batch(raw, (n, n))
            if out is not None:
                self._count(pairs)
                return out
        result = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i + 1, n):
                d = self._guarded_pair(objects[i], objects[j])
                result[i, j] = d
                result[j, i] = d
        return result

    def cross(self, objects_a: Sequence, objects_b: Sequence) -> np.ndarray:
        na, nb = len(objects_a), len(objects_b)
        if na == 0 or nb == 0:
            return np.empty((na, nb), dtype=np.float64)
        self._check_budget(0)
        if self._batch_fits_budget(na * nb):
            try:
                raw = self.inner._cross(objects_a, objects_b)  # reprolint: disable=RPL001 -- the guard is the counting layer probing the raw hook
            except Exception:
                raw = None
            out = self._validated_batch(raw, (na, nb))
            if out is not None:
                self._count(na * nb)
                return out
        result = np.empty((na, nb), dtype=np.float64)
        for i in range(na):
            for j in range(nb):
                result[i, j] = self._guarded_pair(objects_a[i], objects_b[j])
        return result

    # ------------------------------------------------------------------
    # Implementation hook (used only if someone bypasses the public API)
    # ------------------------------------------------------------------
    def _distance(self, a: Any, b: Any) -> float:
        return self._guarded_eval(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GuardedMetric({self.inner!r}, on_fault={self.on_fault!r}, "
            f"n_calls={self._n_calls}, n_faults={self.n_faults})"
        )
