"""Deterministic fault injection for exercising the robustness layer.

These are first-class library citizens (not test-only helpers) because
operators need them too: before trusting a guarded configuration in
production, replay a workload through a :class:`FlakyMetric` and confirm the
scan completes with the expected quarantine/retry accounting. Everything is
driven by a seeded generator, so a given ``(seed, failure_rate)`` produces
the exact same fault sequence on every run — the property the
checkpoint/resume tests rely on.
"""

from __future__ import annotations

import os
import signal
import time
from collections.abc import Iterable, Iterator, Sequence
from typing import Any

import numpy as np

from repro.exceptions import ParameterError
from repro.metrics.base import DistanceFunction
from repro.utils.rng import ensure_rng

__all__ = [
    "ChaosPolicy",
    "FaultInjector",
    "FlakyMetric",
    "InjectedFaultError",
    "SlowMetric",
]


class InjectedFaultError(RuntimeError):
    """The error a :class:`FlakyMetric` raises on an injected failure.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: injected
    faults simulate third-party breakage (network timeouts, native-code
    crashes), which arrive as arbitrary exception types.
    """


class FaultInjector:
    """A seeded stream of fail/succeed decisions.

    Parameters
    ----------
    failure_rate:
        Probability that a fresh call is chosen to fail.
    seed:
        Seed/generator for the decision stream.
    fail_streak:
        Once a call is chosen to fail, the next ``fail_streak - 1`` calls
        fail too. With a retrying guard, a streak of ``k`` forces exactly
        ``k`` failed attempts before a retry succeeds — letting tests pin
        down backoff behavior precisely.
    start_after:
        Number of initial calls that always succeed (lets a scan build a
        healthy tree before faults begin).
    """

    def __init__(
        self,
        failure_rate: float = 0.05,
        seed: int | np.random.Generator | None = 0,
        fail_streak: int = 1,
        start_after: int = 0,
    ):
        if not 0.0 <= failure_rate <= 1.0:
            raise ParameterError(f"failure_rate must be in [0, 1], got {failure_rate}")
        if fail_streak < 1:
            raise ParameterError(f"fail_streak must be >= 1, got {fail_streak}")
        if start_after < 0:
            raise ParameterError(f"start_after must be >= 0, got {start_after}")
        self.failure_rate = float(failure_rate)
        self.fail_streak = int(fail_streak)
        self.start_after = int(start_after)
        self._rng = ensure_rng(seed)
        self._streak_left = 0
        #: Total decisions made.
        self.n_calls = 0
        #: Decisions that came out as failures.
        self.n_injected = 0

    def should_fail(self) -> bool:
        """Decide the fate of the next call (advances the seeded stream)."""
        self.n_calls += 1
        if self._streak_left > 0:
            self._streak_left -= 1
            self.n_injected += 1
            return True
        if self.n_calls <= self.start_after:
            return False
        if float(self._rng.random()) < self.failure_rate:
            self._streak_left = self.fail_streak - 1
            self.n_injected += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector(rate={self.failure_rate}, calls={self.n_calls}, "
            f"injected={self.n_injected})"
        )


class FlakyMetric(DistanceFunction):
    """Wrap a healthy metric with deterministic, seeded misbehavior.

    Parameters
    ----------
    inner:
        The correct metric to corrupt.
    injector:
        The decision stream; built from ``failure_rate``/``seed`` when
        omitted.
    mode:
        How an injected call misbehaves: ``"raise"`` throws
        :class:`InjectedFaultError`; ``"nan"`` returns NaN; ``"negative"``
        returns ``-1.0`` (both value modes violate the metric contract and
        should be caught by a :class:`~repro.robustness.GuardedMetric`).
    poison:
        Optional predicate ``poison(obj) -> bool``; any call touching a
        poisoned object *always* raises, independent of the injector —
        modeling corrupt records rather than transient backend faults.
    """

    _MODES = ("raise", "nan", "negative")

    def __init__(
        self,
        inner: DistanceFunction,
        injector: FaultInjector | None = None,
        *,
        failure_rate: float = 0.05,
        seed: int | np.random.Generator | None = 0,
        mode: str = "raise",
        poison: Any=None,
    ):
        super().__init__()
        if not isinstance(inner, DistanceFunction):
            raise ParameterError("inner must be a DistanceFunction")
        if mode not in self._MODES:
            raise ParameterError(f"mode must be one of {self._MODES}, got {mode!r}")
        self.inner = inner
        self.injector = injector if injector is not None else FaultInjector(
            failure_rate=failure_rate, seed=seed
        )
        self.mode = mode
        self.poison = poison
        self.name = f"flaky({inner.name})"

    def _distance(self, a: Any, b: Any) -> float:
        if self.poison is not None and (self.poison(a) or self.poison(b)):
            raise InjectedFaultError("poisoned object cannot be measured")
        if self.injector.should_fail():
            if self.mode == "raise":
                raise InjectedFaultError(
                    f"injected transient fault #{self.injector.n_injected}"
                )
            return float("nan") if self.mode == "nan" else -1.0
        # Wrapper hook-to-hook delegation: the flaky layer must not double
        # count — the public wrapper entered by the caller already counted.
        return self.inner._distance(a, b)  # reprolint: disable=RPL001 -- hook delegation; the public wrapper counts


class SlowMetric(DistanceFunction):
    """Wrap a metric with a fixed per-call delay — a hang simulator.

    Used by :class:`ChaosPolicy` to make one shard's metric pathologically
    slow so the shard supervisor's per-shard timeout and pool-wide deadline
    handling can be exercised deterministically.
    """

    def __init__(self, inner: DistanceFunction, delay_seconds: float, sleep: Any = time.sleep):
        super().__init__()
        if not isinstance(inner, DistanceFunction):
            raise ParameterError("inner must be a DistanceFunction")
        if delay_seconds < 0:
            raise ParameterError(f"delay_seconds must be >= 0, got {delay_seconds}")
        self.inner = inner
        self.delay_seconds = float(delay_seconds)
        self._sleep = sleep
        self.name = f"slow({inner.name})"

    def _distance(self, a: Any, b: Any) -> float:
        self._sleep(self.delay_seconds)
        # Hook-to-hook delegation, same no-double-count rule as FlakyMetric.
        return self.inner._distance(a, b)  # reprolint: disable=RPL001 -- hook delegation; the public wrapper counts


def _splice_innermost(
    metric: DistanceFunction,
    wrap: "Any",
) -> DistanceFunction:
    """Wrap the *innermost* metric of a ``.inner`` chain.

    Fault wrappers must sit below any :class:`GuardedMetric` /
    cache in the chain — wrapping outermost would bypass exactly the
    budget/validation machinery the chaos drill is supposed to exercise.
    """
    parent: DistanceFunction | None = None
    node = metric
    while isinstance(getattr(node, "inner", None), DistanceFunction):
        parent = node
        node = node.inner
    wrapped = wrap(node)
    if parent is None:
        return wrapped
    parent.inner = wrapped
    return metric


class ChaosPolicy:
    """A seeded, reproducible schedule of process-level faults.

    The chaos drill for parallel builds: hand one of these to
    :func:`repro.parallel.parallel_fit` and it will — on the shards and
    attempts you name — kill the worker mid-scan with SIGKILL, splice a
    flaky or slow wrapper under the shard's metric, or corrupt the shard's
    checkpoint before the retry reads it. Every decision is explicit or
    seeded, so a failing drill replays exactly.

    Parameters
    ----------
    kill_at:
        ``{shard_id: object_index}`` — the worker scanning that shard dies
        (os-level ``SIGKILL``, no cleanup) just before ingesting the given
        object. Only fires in a real worker process: the policy is *armed*
        with the parent PID by ``parallel_fit``, and a process whose PID
        matches the armed parent never kills itself.
    kill_attempts:
        Attempts (per shard) on which the kill fires; retries with
        ``attempt >= kill_attempts`` scan unharmed.
    flaky_shards, flaky_rate, flaky_mode, flaky_streak, flaky_attempts:
        Shards whose metric is wrapped in a :class:`FlakyMetric` (seeded
        per ``(seed, shard, attempt)``) for attempts below
        ``flaky_attempts``.
    slow_shards, slow_seconds, slow_attempts:
        Shards whose metric is wrapped in a :class:`SlowMetric` adding
        ``slow_seconds`` per distance call for attempts below
        ``slow_attempts``.
    corrupt_checkpoints:
        Shards whose on-disk checkpoint is overwritten with seeded garbage
        before their first retry — exercising the corrupt-checkpoint
        recovery path (discard and rescan).
    seed:
        Root seed for the flaky injectors and the corruption bytes.
    """

    def __init__(
        self,
        *,
        kill_at: dict[int, int] | None = None,
        kill_attempts: int = 1,
        flaky_shards: Sequence[int] = (),
        flaky_rate: float = 0.05,
        flaky_mode: str = "raise",
        flaky_streak: int = 1,
        flaky_attempts: int = 1,
        slow_shards: Sequence[int] = (),
        slow_seconds: float = 0.05,
        slow_attempts: int = 1,
        corrupt_checkpoints: Sequence[int] = (),
        seed: int = 0,
    ):
        if kill_attempts < 0:
            raise ParameterError(f"kill_attempts must be >= 0, got {kill_attempts}")
        if flaky_attempts < 0 or slow_attempts < 0:
            raise ParameterError("flaky_attempts and slow_attempts must be >= 0")
        if not 0.0 <= flaky_rate <= 1.0:
            raise ParameterError(f"flaky_rate must be in [0, 1], got {flaky_rate}")
        if flaky_mode not in FlakyMetric._MODES:
            raise ParameterError(
                f"flaky_mode must be one of {FlakyMetric._MODES}, got {flaky_mode!r}"
            )
        if slow_seconds < 0:
            raise ParameterError(f"slow_seconds must be >= 0, got {slow_seconds}")
        self.kill_at = {int(k): int(v) for k, v in (kill_at or {}).items()}
        self.kill_attempts = int(kill_attempts)
        self.flaky_shards = frozenset(int(s) for s in flaky_shards)
        self.flaky_rate = float(flaky_rate)
        self.flaky_mode = flaky_mode
        self.flaky_streak = int(flaky_streak)
        self.flaky_attempts = int(flaky_attempts)
        self.slow_shards = frozenset(int(s) for s in slow_shards)
        self.slow_seconds = float(slow_seconds)
        self.slow_attempts = int(slow_attempts)
        self.corrupt_checkpoints = frozenset(int(s) for s in corrupt_checkpoints)
        self.seed = int(seed)
        self._armed_pid: int | None = None

    # ------------------------------------------------------------------
    # Arming (parent side)
    # ------------------------------------------------------------------
    def arm(self, parent_pid: int) -> None:
        """Record the supervisor's PID; kills only fire in *other* PIDs.

        An unarmed policy never kills — so accidentally running one inline
        cannot take down the calling process.
        """
        self._armed_pid = int(parent_pid)

    def _may_kill_here(self) -> bool:
        return self._armed_pid is not None and os.getpid() != self._armed_pid

    # ------------------------------------------------------------------
    # Worker-side hooks
    # ------------------------------------------------------------------
    def wrap_metric(
        self, metric: DistanceFunction, shard_id: int, attempt: int
    ) -> DistanceFunction:
        """Splice scheduled flaky/slow wrappers under the shard's metric."""
        if shard_id in self.flaky_shards and attempt < self.flaky_attempts:
            injector = FaultInjector(
                failure_rate=self.flaky_rate,
                seed=int(
                    np.random.SeedSequence(
                        [self.seed, shard_id, attempt]
                    ).generate_state(1)[0]
                ),
                fail_streak=self.flaky_streak,
            )
            metric = _splice_innermost(
                metric,
                lambda inner: FlakyMetric(inner, injector, mode=self.flaky_mode),
            )
        if shard_id in self.slow_shards and attempt < self.slow_attempts:
            metric = _splice_innermost(
                metric, lambda inner: SlowMetric(inner, self.slow_seconds)
            )
        return metric

    def stream(self, objects: Iterable, shard_id: int, attempt: int) -> Iterable:
        """Wrap a shard's object stream with the scheduled mid-scan kill."""
        kill_index = self.kill_at.get(shard_id)
        if kill_index is None or attempt >= self.kill_attempts or not self._may_kill_here():
            return objects

        def doomed() -> Iterator:
            for i, obj in enumerate(objects):
                if i == kill_index:
                    # SIGKILL, not sys.exit: the drill is an uncatchable,
                    # no-cleanup process death, exactly like the OOM killer.
                    os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))
                yield obj

        return doomed()

    # ------------------------------------------------------------------
    # Parent-side hooks
    # ------------------------------------------------------------------
    def before_retry(self, shard_id: int, attempt: int, checkpoint_path: str | None) -> None:
        """Corrupt the shard's checkpoint ahead of its first retry."""
        if (
            shard_id not in self.corrupt_checkpoints
            or attempt != 1
            or checkpoint_path is None
            or not os.path.exists(checkpoint_path)
        ):
            return
        rng = ensure_rng(
            int(np.random.SeedSequence([self.seed, shard_id, 0xC0]).generate_state(1)[0])
        )
        size = os.path.getsize(checkpoint_path)
        junk = rng.integers(0, 256, size=64, dtype=np.uint8).tobytes()
        with open(checkpoint_path, "r+b") as fh:
            fh.seek(max(size // 2, 0))
            fh.write(junk)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        if self.kill_at:
            parts.append(f"kill_at={self.kill_at}")
        if self.flaky_shards:
            parts.append(f"flaky={sorted(self.flaky_shards)}")
        if self.slow_shards:
            parts.append(f"slow={sorted(self.slow_shards)}")
        if self.corrupt_checkpoints:
            parts.append(f"corrupt={sorted(self.corrupt_checkpoints)}")
        return f"ChaosPolicy({', '.join(parts)}, seed={self.seed})"
