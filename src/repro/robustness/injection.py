"""Deterministic fault injection for exercising the robustness layer.

These are first-class library citizens (not test-only helpers) because
operators need them too: before trusting a guarded configuration in
production, replay a workload through a :class:`FlakyMetric` and confirm the
scan completes with the expected quarantine/retry accounting. Everything is
driven by a seeded generator, so a given ``(seed, failure_rate)`` produces
the exact same fault sequence on every run — the property the
checkpoint/resume tests rely on.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.exceptions import ParameterError
from repro.metrics.base import DistanceFunction
from repro.utils.rng import ensure_rng

__all__ = ["FaultInjector", "FlakyMetric", "InjectedFaultError"]


class InjectedFaultError(RuntimeError):
    """The error a :class:`FlakyMetric` raises on an injected failure.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: injected
    faults simulate third-party breakage (network timeouts, native-code
    crashes), which arrive as arbitrary exception types.
    """


class FaultInjector:
    """A seeded stream of fail/succeed decisions.

    Parameters
    ----------
    failure_rate:
        Probability that a fresh call is chosen to fail.
    seed:
        Seed/generator for the decision stream.
    fail_streak:
        Once a call is chosen to fail, the next ``fail_streak - 1`` calls
        fail too. With a retrying guard, a streak of ``k`` forces exactly
        ``k`` failed attempts before a retry succeeds — letting tests pin
        down backoff behavior precisely.
    start_after:
        Number of initial calls that always succeed (lets a scan build a
        healthy tree before faults begin).
    """

    def __init__(
        self,
        failure_rate: float = 0.05,
        seed: int | np.random.Generator | None = 0,
        fail_streak: int = 1,
        start_after: int = 0,
    ):
        if not 0.0 <= failure_rate <= 1.0:
            raise ParameterError(f"failure_rate must be in [0, 1], got {failure_rate}")
        if fail_streak < 1:
            raise ParameterError(f"fail_streak must be >= 1, got {fail_streak}")
        if start_after < 0:
            raise ParameterError(f"start_after must be >= 0, got {start_after}")
        self.failure_rate = float(failure_rate)
        self.fail_streak = int(fail_streak)
        self.start_after = int(start_after)
        self._rng = ensure_rng(seed)
        self._streak_left = 0
        #: Total decisions made.
        self.n_calls = 0
        #: Decisions that came out as failures.
        self.n_injected = 0

    def should_fail(self) -> bool:
        """Decide the fate of the next call (advances the seeded stream)."""
        self.n_calls += 1
        if self._streak_left > 0:
            self._streak_left -= 1
            self.n_injected += 1
            return True
        if self.n_calls <= self.start_after:
            return False
        if float(self._rng.random()) < self.failure_rate:
            self._streak_left = self.fail_streak - 1
            self.n_injected += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector(rate={self.failure_rate}, calls={self.n_calls}, "
            f"injected={self.n_injected})"
        )


class FlakyMetric(DistanceFunction):
    """Wrap a healthy metric with deterministic, seeded misbehavior.

    Parameters
    ----------
    inner:
        The correct metric to corrupt.
    injector:
        The decision stream; built from ``failure_rate``/``seed`` when
        omitted.
    mode:
        How an injected call misbehaves: ``"raise"`` throws
        :class:`InjectedFaultError`; ``"nan"`` returns NaN; ``"negative"``
        returns ``-1.0`` (both value modes violate the metric contract and
        should be caught by a :class:`~repro.robustness.GuardedMetric`).
    poison:
        Optional predicate ``poison(obj) -> bool``; any call touching a
        poisoned object *always* raises, independent of the injector —
        modeling corrupt records rather than transient backend faults.
    """

    _MODES = ("raise", "nan", "negative")

    def __init__(
        self,
        inner: DistanceFunction,
        injector: FaultInjector | None = None,
        *,
        failure_rate: float = 0.05,
        seed: int | np.random.Generator | None = 0,
        mode: str = "raise",
        poison: Any=None,
    ):
        super().__init__()
        if not isinstance(inner, DistanceFunction):
            raise ParameterError("inner must be a DistanceFunction")
        if mode not in self._MODES:
            raise ParameterError(f"mode must be one of {self._MODES}, got {mode!r}")
        self.inner = inner
        self.injector = injector if injector is not None else FaultInjector(
            failure_rate=failure_rate, seed=seed
        )
        self.mode = mode
        self.poison = poison
        self.name = f"flaky({inner.name})"

    def _distance(self, a: Any, b: Any) -> float:
        if self.poison is not None and (self.poison(a) or self.poison(b)):
            raise InjectedFaultError("poisoned object cannot be measured")
        if self.injector.should_fail():
            if self.mode == "raise":
                raise InjectedFaultError(
                    f"injected transient fault #{self.injector.n_injected}"
                )
            return float("nan") if self.mode == "nan" else -1.0
        # Wrapper hook-to-hook delegation: the flaky layer must not double
        # count — the public wrapper entered by the caller already counted.
        return self.inner._distance(a, b)  # reprolint: disable=RPL001
