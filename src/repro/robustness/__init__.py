"""Fault-tolerant ingestion: guarded metrics, quarantine, fault injection.

Production hardening for the library's central trust boundary — the
user-supplied distance function. See :mod:`repro.robustness.guarded` for
validation/retry/budget armor, :mod:`repro.robustness.quarantine` for the
park-and-continue scan buffer, :mod:`repro.robustness.report` for ingestion
accounting, and :mod:`repro.robustness.injection` for deterministic fault
drills. Checkpoint/resume of the scan itself lives in
:mod:`repro.persistence` and is driven by ``PreClusterer.fit``.
"""

from repro.robustness.guarded import GuardedMetric, MetricFault
from repro.robustness.injection import (
    ChaosPolicy,
    FaultInjector,
    FlakyMetric,
    InjectedFaultError,
    SlowMetric,
)
from repro.robustness.quarantine import Quarantine, QuarantinedObject
from repro.robustness.report import IngestReport

__all__ = [
    "GuardedMetric",
    "MetricFault",
    "ChaosPolicy",
    "FaultInjector",
    "FlakyMetric",
    "InjectedFaultError",
    "SlowMetric",
    "Quarantine",
    "QuarantinedObject",
    "IngestReport",
]
