"""Structured accounting of one fault-tolerant ingestion run.

An :class:`IngestReport` is attached to the pre-clusterer as
``model.ingest_report_`` after every ``fit`` / ``partial_fit`` and printed
by the CLI. It answers the operational questions the paper's NCD metric
(Section 6.1) only begins to ask: how many objects made it in, how many were
quarantined, how much of the distance budget was spent, how often the metric
had to be retried, and where the last checkpoint left off.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

__all__ = ["IngestReport"]


@dataclass
class IngestReport:
    """Counters describing one ingestion scan (cumulative across batches)."""

    #: Objects consumed from the input stream (inserted + quarantined).
    n_seen: int = 0
    #: Objects successfully absorbed into the CF*-tree.
    n_inserted: int = 0
    #: Objects parked in the quarantine buffer.
    n_quarantined: int = 0
    #: Metric re-evaluations performed by a guarded metric's retry policy.
    n_retries: int = 0
    #: Distances substituted by a guarded metric instead of raised.
    n_substitutions: int = 0
    #: Total metric faults recorded (exceptions, invalid values, asymmetry).
    n_metric_faults: int = 0
    #: Distance calls (NCD) on the model's metric at the end of the scan.
    n_distance_calls: int = 0
    #: CF*-tree rebuilds triggered during the scan.
    n_rebuilds: int = 0
    #: Checkpoints written during the scan.
    n_checkpoints: int = 0
    #: Scan cursor restored from a checkpoint (``None`` for a fresh scan).
    resumed_at: int | None = None
    #: Shard attempts retried after a recoverable failure (parallel builds).
    shards_retried: int = 0
    #: Worker processes that died or were killed for overrunning a timeout.
    workers_crashed: int = 0
    #: Shards that restored state from a per-shard checkpoint.
    shards_resumed: int = 0
    #: Total exponential-backoff delay scheduled between shard retries.
    backoff_seconds_total: float = 0.0
    #: Subsamples searched by a CLARA-style sampled global phase (0 when
    #: the global phase was exact or never ran).
    global_samples: int = 0
    #: Distance calls spent inside the sample searches (worker-side NCD,
    #: re-booked on the parent metric under the ``global-sample`` site).
    global_sample_ncd: int = 0
    #: Aggregate worker wall-clock seconds across the sample searches.
    global_sample_seconds: float = 0.0
    #: Wall-clock seconds spent scanning (cumulative).
    elapsed_seconds: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict | None) -> "IngestReport":
        if not payload:
            return cls()
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})

    @classmethod
    def merged(cls, reports: "list[IngestReport]") -> "IngestReport":
        """Fold per-shard scan reports into one build-wide report.

        Object and fault counters sum across shards. ``elapsed_seconds``
        sums too — for a parallel build that is aggregate *worker* scan
        time, which the caller (:mod:`repro.parallel`) overwrites with the
        build's wall-clock time. ``n_distance_calls`` is likewise summed
        here but re-synced by the caller once the merge and any later
        phases have spent their own calls on the parent metric.
        ``resumed_at`` stays ``None`` (it is a sequential-scan cursor);
        parallel resumes are counted in ``shards_resumed``, and the other
        fault-tolerance counters (``shards_retried``, ``workers_crashed``,
        ``backoff_seconds_total``) are filled in by the shard supervisor.
        """
        out = cls()
        for report in reports:
            out.n_seen += report.n_seen
            out.n_inserted += report.n_inserted
            out.n_quarantined += report.n_quarantined
            out.n_retries += report.n_retries
            out.n_substitutions += report.n_substitutions
            out.n_metric_faults += report.n_metric_faults
            out.n_distance_calls += report.n_distance_calls
            out.n_rebuilds += report.n_rebuilds
            out.n_checkpoints += report.n_checkpoints
            out.shards_retried += report.shards_retried
            out.workers_crashed += report.workers_crashed
            out.shards_resumed += report.shards_resumed
            out.backoff_seconds_total += report.backoff_seconds_total
            out.global_samples += report.global_samples
            out.global_sample_ncd += report.global_sample_ncd
            out.global_sample_seconds += report.global_sample_seconds
            out.elapsed_seconds += report.elapsed_seconds
        return out

    def format(self) -> str:
        """Multi-line human-readable summary (what the CLI prints)."""
        lines = [
            f"objects seen:        {self.n_seen}",
            f"objects inserted:    {self.n_inserted}",
            f"objects quarantined: {self.n_quarantined}",
        ]
        if self.n_retries or self.n_substitutions or self.n_metric_faults:
            lines.append(
                f"metric faults:       {self.n_metric_faults} "
                f"({self.n_retries} retries, {self.n_substitutions} substitutions)"
            )
        lines.append(f"distance calls:      {self.n_distance_calls}")
        if self.n_rebuilds:
            lines.append(f"tree rebuilds:       {self.n_rebuilds}")
        if self.n_checkpoints:
            lines.append(f"checkpoints written: {self.n_checkpoints}")
        if self.resumed_at is not None:
            lines.append(f"resumed at object:   {self.resumed_at}")
        if self.shards_retried or self.workers_crashed or self.shards_resumed:
            lines.append(
                f"shard recovery:      {self.shards_retried} retries, "
                f"{self.workers_crashed} worker crashes, "
                f"{self.shards_resumed} shards resumed "
                f"({self.backoff_seconds_total:.2f}s backoff)"
            )
        if self.global_samples:
            lines.append(
                f"global samples:      {self.global_samples} "
                f"({self.global_sample_ncd} calls, "
                f"{self.global_sample_seconds:.2f}s search)"
            )
        lines.append(f"scan time:           {self.elapsed_seconds:.2f}s")
        return "\n".join(lines)
