"""Quarantine buffer: park objects whose insertion failed, keep scanning.

The single-scan property that makes BIRCH* viable on large datasets cuts
both ways: losing the scan to one malformed record at object 9-million
throws away hours of work. With ``fit(on_error="quarantine")`` a failed
insertion parks the object here — together with its scan position and the
error — and the scan continues. After the scan the buffer is reportable
(counts per error type) and replayable (the objects are kept verbatim, so a
fixed metric can re-ingest them via ``partial_fit``).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any

from repro.exceptions import ParameterError, QuarantineOverflowError

__all__ = ["Quarantine", "QuarantinedObject"]


@dataclass
class QuarantinedObject:
    """One parked object and why it could not be inserted."""

    #: Zero-based position of the object in the scan order.
    index: int
    #: The object itself, untouched (replayable after the fault is fixed).
    obj: object
    #: Exception class name (e.g. ``"MetricError"``).
    error_type: str
    #: Full repr of the exception.
    error: str


class Quarantine:
    """Bounded buffer of objects that failed ingestion.

    Parameters
    ----------
    max_size:
        Adding beyond this many records raises
        :class:`~repro.exceptions.QuarantineOverflowError` — the circuit
        breaker that turns "systematically broken feed" into a hard stop
        instead of a silently empty clustering. ``None`` means unbounded.
    """

    def __init__(self, max_size: int | None = None):
        if max_size is not None and max_size < 0:
            raise ParameterError(f"max_size must be >= 0, got {max_size}")
        self.max_size = max_size
        self._records: list[QuarantinedObject] = []

    def add(self, index: int, obj: Any, error: BaseException | str) -> QuarantinedObject:
        """Park one object; raises on overflow *before* storing it."""
        if self.max_size is not None and len(self._records) >= self.max_size:
            raise QuarantineOverflowError(
                f"quarantine buffer full ({self.max_size} objects); the "
                "metric or the data feed looks systematically broken"
            )
        if isinstance(error, BaseException):
            record = QuarantinedObject(index, obj, type(error).__name__, repr(error))
        else:
            record = QuarantinedObject(index, obj, "Error", str(error))
        self._records.append(record)
        return record

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[QuarantinedObject]:
        return iter(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    @property
    def records(self) -> list[QuarantinedObject]:
        return list(self._records)

    @property
    def objects(self) -> list:
        """The parked objects in scan order, ready for re-ingestion."""
        return [r.obj for r in self._records]

    def counts_by_error(self) -> dict[str, int]:
        """Histogram of exception class names — the triage view."""
        return dict(Counter(r.error_type for r in self._records))

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Picklable state for checkpoints (errors already stringified)."""
        return {
            "max_size": self.max_size,
            "records": [
                (r.index, r.obj, r.error_type, r.error) for r in self._records
            ],
        }

    @classmethod
    def from_state(cls, state: dict | None) -> "Quarantine":
        q = cls(max_size=None if state is None else state.get("max_size"))
        for index, obj, error_type, error in (state or {}).get("records", []):
            q._records.append(QuarantinedObject(int(index), obj, error_type, error))
        return q

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "inf" if self.max_size is None else self.max_size
        return f"Quarantine({len(self._records)}/{cap} objects)"
