"""repro — clustering large datasets in arbitrary metric spaces.

A production-quality reimplementation of the ICDE 1999 paper by Ganti,
Ramakrishnan, Gehrke, Powell and French: the BIRCH* framework and its two
distance-space instantiations **BUBBLE** and **BUBBLE-FM**, together with
every substrate the paper's evaluation depends on (FastMap, vector-space
BIRCH, hierarchical global clustering, synthetic workload generators, the
RED data-cleaning comparator, and the evaluation metrics distortion /
clustroid quality / NCD).

Quickstart
----------
>>> from repro import BUBBLE
>>> from repro.metrics import EuclideanDistance
>>> import numpy as np
>>> data = list(np.random.default_rng(0).normal(size=(500, 2)))
>>> model = BUBBLE(EuclideanDistance(), max_nodes=30, seed=0).fit(data)
>>> len(model.subclusters_) > 0
True
"""

from repro.birch import BIRCH
from repro.exceptions import (
    DeadlineExceededError,
    MetricBudgetExceededError,
    QuarantineOverflowError,
    ReproError,
)
from repro.robustness import (
    FaultInjector,
    FlakyMetric,
    GuardedMetric,
    IngestReport,
    Quarantine,
)
from repro.clarans import CLARANS
from repro.cure import CURE
from repro.dbscan import MetricDBSCAN
from repro.core import BUBBLE, BUBBLEFM, CFTree, PreClusterer, SubCluster
from repro.fastmap import FastMap
from repro.hac import AgglomerativeClusterer
from repro.index import MetricIndex, QueryResult, available_backends, make_index
from repro.mtree import MTree
from repro.metrics import (
    DistanceFunction,
    EditDistance,
    EuclideanDistance,
    FunctionDistance,
)
from repro.pipelines import cluster_dataset, map_first_cluster, nearest_assignment
from repro.red import REDClusterer

__version__ = "1.0.0"

__all__ = [
    "BUBBLE",
    "BUBBLEFM",
    "BIRCH",
    "CLARANS",
    "CURE",
    "MetricDBSCAN",
    "REDClusterer",
    "AgglomerativeClusterer",
    "CFTree",
    "PreClusterer",
    "SubCluster",
    "FastMap",
    "MTree",
    "MetricIndex",
    "QueryResult",
    "make_index",
    "available_backends",
    "DistanceFunction",
    "FunctionDistance",
    "EuclideanDistance",
    "EditDistance",
    "cluster_dataset",
    "map_first_cluster",
    "nearest_assignment",
    "GuardedMetric",
    "FlakyMetric",
    "FaultInjector",
    "IngestReport",
    "Quarantine",
    "ReproError",
    "MetricBudgetExceededError",
    "DeadlineExceededError",
    "QuarantineOverflowError",
    "__version__",
]
