"""The RPL1xx rule family: dataflow-aware invariants.

Where the RPL0xx rules in :mod:`repro.analysis.rules` pattern-match
syntax, these rules run on the shared analysis core — per-function CFGs
(:mod:`repro.analysis.cfg`), scope/origin resolution
(:mod:`repro.analysis.dataflow`), and the cross-module symbol table
(:mod:`repro.analysis.symbols`) — so they can *prove* properties about
paths and provenance instead of grepping for shapes:

RPL101 **pickle-safety**
    Any callable/object flowing into a worker boundary —
    ``ProcessPoolExecutor.submit``/``apply_async``, ``ShardSupervisor``'s
    task list, ``ShardTask(...)`` construction, ``Process(target=...)`` —
    must resolve to a module-level definition. Lambdas, closures, and
    locally defined classes pickle by qualified name and fail (or worse,
    resolve to the wrong object) when the spawn start method imports the
    module fresh in the worker.
RPL102 **span/ledger discipline**
    Every ``push_site`` must be popped on *all* CFG paths out of the
    function — including the exceptional ones — i.e. the pop is provably
    reached via ``try/finally``; and no ``pop_site`` may run with a
    provably empty site stack. An unpopped site mis-attributes every
    subsequent distance call, silently breaking the
    ``sum(by_site) == n_calls`` conservation law the observability layer
    guarantees.
RPL103 **seed provenance**
    RNG construction must derive from a parameter / ``SeedSequence``
    dataflow. Hard-coded literal seeds, wall-clock-derived seeds, and
    bare entropy constructions are flagged: the first silently couples
    runs, the latter two destroy reproducibility.
RPL104 **external-count booking**
    ``count_external`` — the only way to book distance calls that
    happened in another process — may appear only in the accounting-layer
    modules, and any *site-attributed* booking must be post-dominated (on
    normal flow) by a residual site-less booking, so a partial
    attribution loop can never leave ``sum(by_site) < n_calls``.
RPL105 **float-stability**
    In the numerics-bearing modules (``birch/``, ``core/features.py``,
    ``fastmap/``), flag catastrophic-cancellation shapes — differences of
    squared magnitudes (``a*a - b*b``, sum-of-squares minus
    square-of-sum) — and scalar ``+=`` accumulation of squared
    distances. These are the exact patterns the BETULA refactor (ROADMAP
    item 3) replaces with stable incremental forms; true positives are
    suppressed with a ``BETULA``-tagged justification to form that
    worklist.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.cfg import CFG, FunctionCFG, iter_function_cfgs
from repro.analysis.dataflow import OriginKind, resolve_expr
from repro.analysis.rules import Finding, Rule, RuleContext

__all__ = ["FLOW_RULES"]


# ----------------------------------------------------------------------
# RPL101 — pickle-safety at worker boundaries
# ----------------------------------------------------------------------
#: Attribute calls whose every argument crosses the pickle boundary.
_SUBMIT_METHODS = frozenset({"submit", "apply_async"})
#: Constructors whose every argument crosses the pickle boundary.
_TASK_CTORS = frozenset({"ShardTask"})
#: Constructors where only specific arguments cross (pos index / kw name).
_SUPERVISOR_CTORS = frozenset({"ShardSupervisor"})
_PROCESS_CTORS = frozenset({"Process"})

_BAD_PICKLE_KINDS = frozenset({OriginKind.LAMBDA, OriginKind.LOCAL_DEF})


def _callee_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _shipped_args(call: ast.Call, callee: str) -> list[ast.expr]:
    """The argument expressions of ``call`` that cross a pickle boundary."""
    if callee in _SUBMIT_METHODS or callee in _TASK_CTORS:
        args = [a for a in call.args]
        args.extend(kw.value for kw in call.keywords if kw.arg is not None)
        return args
    if callee in _SUPERVISOR_CTORS:
        shipped = list(call.args[:1])
        shipped.extend(kw.value for kw in call.keywords if kw.arg == "tasks")
        return shipped
    if callee in _PROCESS_CTORS:
        return [kw.value for kw in call.keywords if kw.arg in ("target", "args")]
    return []


def _check_pickle_safety(ctx: RuleContext) -> Iterator[Finding]:
    scopes = ctx.scopes
    # Walk with scope tracking: resolve each shipped argument from the
    # scope of the function the call appears in.
    for fn_cfg in ctx.function_cfgs:
        container = fn_cfg.func if fn_cfg.func is not None else ctx.tree
        scope = scopes.scope_of(container)
        for call in _calls_in(container):
            callee = _callee_name(call.func)
            if callee is None:
                continue
            sink = _sink_label(call, callee)
            if sink is None:
                continue
            for arg in _shipped_args(call, callee):
                for origin in resolve_expr(arg, scope, ctx.symbols):
                    if origin.kind in _BAD_PICKLE_KINDS:
                        what = origin.detail or origin.kind.value
                        yield (
                            arg.lineno,
                            arg.col_offset,
                            f"{what} flows into {sink} but only module-level "
                            "definitions survive pickling to a spawned worker; "
                            "move it to module scope",
                        )
                        break


def _sink_label(call: ast.Call, callee: str) -> str | None:
    if callee in _SUBMIT_METHODS:
        return f"a worker-pool `.{callee}(...)`"
    if callee in _TASK_CTORS:
        return "a shard task"
    if callee in _SUPERVISOR_CTORS:
        return "the ShardSupervisor task list"
    if callee in _PROCESS_CTORS and isinstance(call.func, (ast.Attribute, ast.Name)):
        # Only worker-process constructions, not arbitrary `Process` names:
        # require a target=/args= keyword to be present at all.
        if any(kw.arg in ("target", "args") for kw in call.keywords):
            return "a spawned Process"
    return None


def _calls_in(container: ast.AST) -> Iterator[ast.Call]:
    """Calls lexically inside ``container``, excluding nested function
    bodies (each function is visited under its own scope)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(container))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# RPL102 — push_site/pop_site pairing on every CFG path
# ----------------------------------------------------------------------
#: Bound on tracked stack depth; saturation still reports the violation
#: (an over-deep stack never empties), it just guarantees termination.
_MAX_SITE_DEPTH = 8

#: (label, line, col) describing one open push.
_PushEntry = tuple[str, int, int]
_Stack = tuple[_PushEntry, ...]


def _node_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """The sub-expressions evaluated *at* a CFG node for ``stmt``.

    A compound statement's node represents only its header (test, iterable,
    context managers, match subject) — the suite bodies have CFG nodes of
    their own, and counting their calls here would double-book them.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.Try) or (
        hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
    ):
        return []
    return [stmt]


def _calls_at(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Calls executed when this CFG node runs (nested defs excluded)."""
    stack: list[ast.AST] = list(_node_exprs(stmt))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # executed at call time, not here
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _site_calls(stmt: ast.stmt) -> list[tuple[str, ast.Call]]:
    """``("push"|"pop", call)`` for the ledger-site calls evaluated at
    ``stmt``'s CFG node, in source order."""
    found: list[tuple[str, ast.Call]] = []
    for node in _calls_at(stmt):
        name = _callee_name(node.func)
        if name == "push_site":
            found.append(("push", node))
        elif name == "pop_site":
            found.append(("pop", node))
    found.sort(key=lambda item: (item[1].lineno, item[1].col_offset))
    return found


def _push_label(call: ast.Call) -> str:
    if call.args and isinstance(call.args[0], ast.Constant):
        return str(call.args[0].value)
    return "<site>"


def _check_span_discipline(ctx: RuleContext) -> Iterator[Finding]:
    if "push_site" not in ctx.source and "pop_site" not in ctx.source:
        return
    for fn_cfg in ctx.function_cfgs:
        yield from _check_function_pairing(fn_cfg)


def _pure_site_stmt(stmt: ast.stmt) -> bool:
    """A statement that is exactly one ``push_site``/``pop_site`` call.

    The ledger accessors are trivial list operations; modeling them as
    able to raise *mid-pairing* would flag every correctly written
    ``finally: pop_site()`` (the pop itself would "escape" unpopped).
    """
    if not isinstance(stmt, ast.Expr):
        return False
    calls = [n for n in ast.walk(stmt) if isinstance(n, ast.Call)]
    if len(calls) != 1:
        return False
    return _callee_name(calls[0].func) in ("push_site", "pop_site")


def _check_function_pairing(fn_cfg: FunctionCFG) -> Iterator[Finding]:
    cfg = fn_cfg.cfg
    ops: dict[int, list[tuple[str, ast.Call]]] = {}
    pure_site: set[int] = set()
    any_ops = False
    for node in cfg.statement_nodes():
        calls = _site_calls(node.stmt) if node.stmt is not None else []
        if calls:
            ops[node.index] = calls
            any_ops = True
            if node.stmt is not None and _pure_site_stmt(node.stmt):
                pure_site.add(node.index)
    if not any_ops:
        return

    # Forward worklist over stacks-of-open-sites. Exception edges carry
    # the PRE-state (a statement that raises performed no push/pop).
    states: dict[int, set[_Stack]] = {cfg.entry: {()}}
    worklist = [cfg.entry]
    while worklist:
        index = worklist.pop()
        pre = states.get(index, set())
        node_ops = ops.get(index, [])
        post: set[_Stack] = set()
        for stack in pre:
            current = stack
            for op, call in node_ops:
                if op == "push":
                    if len(current) < _MAX_SITE_DEPTH:
                        entry: _PushEntry = (
                            _push_label(call), call.lineno, call.col_offset
                        )
                        current = (*current, entry)
                elif current:
                    current = current[:-1]
            post.add(current)
        exc_state: set[_Stack] = set() if index in pure_site else pre
        for successors, flowing in ((cfg.succ[index], post), (cfg.exc_succ[index], exc_state)):
            for succ in successors:
                known = states.setdefault(succ, set())
                new = flowing - known
                if new:
                    known |= new
                    worklist.append(succ)

    # Unmatched pushes: any stack still open at either exit.
    reported: set[tuple[int, int]] = set()
    for exit_index, how in ((cfg.exit_raise, "an exception path"), (cfg.exit_normal, "a normal path")):
        for stack in states.get(exit_index, set()):
            for label, line, col in stack:
                if (line, col) not in reported:
                    reported.add((line, col))
                    yield (
                        line,
                        col,
                        f"push_site({label!r}) is not popped on {how} out of "
                        f"`{fn_cfg.name}`; close it in a try/finally so site "
                        "attribution cannot leak",
                    )

    # Definitely-unmatched pops: every state reaching the pop is empty.
    for index, node_ops in ops.items():
        pre = states.get(index)
        if not pre:
            continue  # unreachable code: nothing to prove
        stack_depths = {len(stack) for stack in pre}
        depth_budget = min(stack_depths)
        for op, call in node_ops:
            if op == "push":
                depth_budget += 1
            else:
                if depth_budget == 0:
                    yield (
                        call.lineno,
                        call.col_offset,
                        f"pop_site() in `{fn_cfg.name}` can never match a "
                        "push_site on any path; it would close an outer "
                        "caller's site",
                    )
                    break
                depth_budget -= 1


# ----------------------------------------------------------------------
# RPL103 — seed provenance for RNG construction
# ----------------------------------------------------------------------
_RNG_CTORS = frozenset({"default_rng", "RandomState", "Random", "ensure_rng", "SeedSequence"})
#: Origin kinds acceptable as seed provenance.
_OK_SEED_KINDS = frozenset(
    {OriginKind.PARAM, OriginKind.SEED_DERIVED, OriginKind.ATTRIBUTE,
     OriginKind.UNKNOWN, OriginKind.EXTERNAL, OriginKind.MODULE_DEF}
)


def _seed_argument(call: ast.Call) -> ast.expr | None:
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg in ("seed", "entropy"):
            return kw.value
    return None


def _check_seed_provenance(ctx: RuleContext) -> Iterator[Finding]:
    scopes = ctx.scopes
    for fn_cfg in ctx.function_cfgs:
        container = fn_cfg.func if fn_cfg.func is not None else ctx.tree
        scope = scopes.scope_of(container)
        for call in _calls_in(container):
            callee = _callee_name(call.func)
            if callee not in _RNG_CTORS:
                continue
            seed = _seed_argument(call)
            if seed is None:
                yield (
                    call.lineno,
                    call.col_offset,
                    f"`{callee}()` without a seed draws fresh entropy; derive "
                    "the seed from a parameter or SeedSequence so the run is "
                    "reproducible",
                )
                continue
            origins = resolve_expr(seed, scope, ctx.symbols)
            kinds = {origin.kind for origin in origins}
            if any(kind == OriginKind.TIME for kind in kinds):
                detail = next(
                    (o.detail for o in origins if o.kind == OriginKind.TIME), "clock"
                )
                yield (
                    call.lineno,
                    call.col_offset,
                    f"`{callee}(...)` seeded from the wall clock ({detail}) is "
                    "unreproducible by construction; thread an explicit seed",
                )
            elif kinds and kinds <= {OriginKind.LITERAL}:
                if _is_none_literal(seed):
                    yield (
                        call.lineno,
                        call.col_offset,
                        f"`{callee}(None)` requests fresh entropy; derive the "
                        "seed from a parameter or SeedSequence instead",
                    )
                else:
                    yield (
                        call.lineno,
                        call.col_offset,
                        f"`{callee}(...)` with a hard-coded literal seed couples "
                        "every caller to one stream; accept a seed parameter "
                        "and derive per-use seeds with SeedSequence.spawn",
                    )


def _is_none_literal(seed: ast.expr) -> bool:
    return isinstance(seed, ast.Constant) and seed.value is None


# ----------------------------------------------------------------------
# RPL104 — external-count booking stays in the accounting layer
# ----------------------------------------------------------------------
#: Modules allowed to book external counts: the primitive itself, the
#: guard wrapper that owns its counting, and the parallel build/matrix
#: re-booking paths.
_BOOKING_ALLOWLIST = (
    "metrics/base.py",
    "robustness/guarded.py",
    "parallel/build.py",
    "parallel/matrix.py",
)


def _is_count_external(call: ast.Call) -> bool:
    return isinstance(call.func, ast.Attribute) and call.func.attr == "count_external"


def _is_super_delegation(call: ast.Call) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Call)
        and isinstance(func.value.func, ast.Name)
        and func.value.func.id == "super"
    )


def _has_site_kw(call: ast.Call) -> bool:
    return any(kw.arg == "site" for kw in call.keywords) or len(call.args) >= 2


def _check_booking_discipline(ctx: RuleContext) -> Iterator[Finding]:
    if "count_external" not in ctx.source:
        return
    allowlisted = ctx.path.endswith(_BOOKING_ALLOWLIST)
    for fn_cfg in ctx.function_cfgs:
        site_nodes: list[tuple[int, ast.Call]] = []
        residual_nodes: set[int] = set()
        for node in fn_cfg.cfg.statement_nodes():
            if node.stmt is None:
                continue
            for call in _calls_at(node.stmt):
                if not _is_count_external(call):
                    continue
                if not allowlisted:
                    yield (
                        call.lineno,
                        call.col_offset,
                        "count_external() outside the accounting layer "
                        f"({', '.join(_BOOKING_ALLOWLIST)}) can fabricate NCD; "
                        "route worker counts through the parallel build",
                    )
                    continue
                if _is_super_delegation(call):
                    continue  # the override chain IS the re-booking
                if _has_site_kw(call):
                    site_nodes.append((node.index, call))
                else:
                    residual_nodes.add(node.index)
        if not site_nodes or ctx.path.endswith("metrics/base.py"):
            # The primitive's own definition performs the site push itself.
            continue
        postdom = fn_cfg.cfg.postdominators()
        for index, call in site_nodes:
            if not (postdom[index] & residual_nodes):
                yield (
                    call.lineno,
                    call.col_offset,
                    "site-attributed count_external() is not post-dominated by "
                    "a residual site-less booking; a partial attribution loop "
                    "could leave sum(by_site) < n_calls",
                )


# ----------------------------------------------------------------------
# RPL105 — catastrophic-cancellation shapes in the numerics modules
# ----------------------------------------------------------------------
_STABILITY_SCOPE = ("birch/", "fastmap/", "core/features")

#: Names that denote squared magnitudes by project convention.
_SQUARE_NAMES = frozenset({"ss", "dss", "sq", "cross_sq", "r1_sq", "r2_sq"})
_SQUARE_NAME_RE = re.compile(r"(_sq\d*$|sq$|sumsq|sq_sum|squared|^d[a-z_]*2$|^r\d$)")


def _square_name(name: str) -> bool:
    return name in _SQUARE_NAMES or bool(_SQUARE_NAME_RE.search(name))


def _is_squareish(expr: ast.expr) -> bool:
    """True when ``expr`` denotes a squared magnitude."""
    if isinstance(expr, ast.BinOp):
        if isinstance(expr.op, ast.Pow):
            return isinstance(expr.right, ast.Constant) and expr.right.value == 2
        if isinstance(expr.op, ast.Mult):
            return ast.dump(expr.left) == ast.dump(expr.right)
        if isinstance(expr.op, ast.Div):
            # sum-of-squares normalized by a count is still a square scale.
            return _is_squareish(expr.left)
        if isinstance(expr.op, ast.Add):
            return _is_squareish(expr.left) and _is_squareish(expr.right)
        return False
    if isinstance(expr, ast.Call):
        name = _callee_name(expr.func)
        if name in ("float", "int", "abs") and expr.args:
            return _is_squareish(expr.args[0])
        if name == "square":
            return True
        if name == "dot" and len(expr.args) == 2:
            return ast.dump(expr.args[0]) == ast.dump(expr.args[1])
        if name is not None and _square_name(name):
            return True
        if name == "sum" and isinstance(expr.func, ast.Attribute):
            return _is_squareish(expr.func.value)
        return False
    if isinstance(expr, ast.Name):
        return _square_name(expr.id)
    if isinstance(expr, ast.Attribute):
        return _square_name(expr.attr)
    if isinstance(expr, ast.Subscript):
        return _is_squareish(expr.value)
    return False


def _check_float_stability(ctx: RuleContext) -> Iterator[Finding]:
    if not any(marker in ctx.path for marker in _STABILITY_SCOPE):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
            if _is_squareish(node.left) and _is_squareish(node.right):
                yield (
                    node.lineno,
                    node.col_offset,
                    "difference of squared magnitudes cancels catastrophically "
                    "when the operands are close (BETULA, PAPERS.md); prefer a "
                    "numerically stable incremental form",
                )
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            if _is_squareish(node.value):
                yield (
                    node.lineno,
                    node.col_offset,
                    "scalar += accumulation of squared magnitudes loses "
                    "precision at large n; use a compensated or pairwise "
                    "summation (BETULA worklist)",
                )


FLOW_RULES: tuple[Rule, ...] = (
    Rule(
        code="RPL101",
        summary="objects shipped to worker processes must resolve to module-level definitions",
        rationale="lambdas/closures/local classes fail to pickle under the spawn start method",
        checker=_check_pickle_safety,
    ),
    Rule(
        code="RPL102",
        summary="push_site/pop_site must pair on every CFG path, including exceptional ones",
        rationale="an unpopped site mis-attributes all later calls and breaks NCD conservation",
        checker=_check_span_discipline,
    ),
    Rule(
        code="RPL103",
        summary="RNG seeds must derive from a parameter/SeedSequence dataflow",
        rationale="literal or wall-clock seeds destroy reproducibility or couple callers",
        checker=_check_seed_provenance,
    ),
    Rule(
        code="RPL104",
        summary="count_external only in the accounting layer, site bookings followed by a residual",
        rationale="external booking elsewhere (or partial attribution) falsifies sum(by_site) == n_calls",
        checker=_check_booking_discipline,
    ),
    Rule(
        code="RPL105",
        summary="no cancellation-prone squared-magnitude arithmetic in the numerics modules",
        rationale="difference-of-squares and scalar squared accumulation drift at scale (BETULA)",
        checker=_check_float_stability,
    ),
)
