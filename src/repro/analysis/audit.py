"""CF*-tree invariant sanitizer.

:func:`audit_tree` walks a live :class:`~repro.core.cftree.CFTree` and
verifies the invariants the paper states and the implementation relies
on:

* **structure** — uniform leaf depth (height balance), at most ``B``
  entries per node, no empty non-leaf nodes, and the tree's ``n_nodes``
  / ``n_objects`` accounting matching a fresh walk;
* **leaf CF* internal consistency** (Section 4.1, Lemma 4.2,
  Observation 1) — representative/RowSum arrays in step, the clustroid
  minimizing RowSum among kept representatives, non-negative RowSums, a
  finite radius with ``r = sqrt(RowSum(clustroid) / n)``, and — for
  clusters still in exact mode — RowSums matching a from-scratch
  recomputation over the kept members;
* **non-leaf summaries** (Section 4.2) — every entry carrying a
  non-empty sample set, the node-level sample cache consistent with the
  per-entry samples, and BUBBLE-FM image-space caches whose centroids
  match the cached image vectors;
* **threshold sanity** — ``T`` finite and non-negative; co-located leaf
  clusters closer than ``T`` are reported as *warnings* (legal under
  insertion order and clustroid drift, but worth eyeballing).

Violations carry the offending node path (``root.child[2].entry[0]``).
Audits are **NCD-neutral**: they measure distances through the raw
metric hook so the paper's cost accounting is not perturbed — the one
sanctioned use of that bypass outside ``metrics/base.py``.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.features import BubbleClusterFeature, ClusterFeature
from repro.exceptions import TreeInvariantError
from repro.metrics.base import DistanceFunction

__all__ = ["AuditIssue", "AuditReport", "audit_tree"]


def _uncounted_distance(metric: DistanceFunction, a: Any, b: Any) -> float:
    # The audit must not perturb NCD (the paper's headline cost metric),
    # so it deliberately bypasses the counted wrappers.
    return float(metric._distance(a, b))  # reprolint: disable=RPL001 -- NCD-neutral audit


@dataclass(frozen=True)
class AuditIssue:
    """One invariant finding at a tree location."""

    #: ``"error"`` for a broken invariant, ``"warning"`` for a legal but
    #: suspicious state (e.g. clustroid drift artifacts).
    severity: str
    #: Short identifier of the check, e.g. ``"branching"``, ``"clustroid"``.
    check: str
    #: Node/entry path from the root, e.g. ``"root.child[1].entry[3]"``.
    path: str
    #: Human-readable description.
    message: str

    def format(self) -> str:
        return f"[{self.severity}] {self.check} at {self.path}: {self.message}"


@dataclass
class AuditReport:
    """Outcome of one :func:`audit_tree` pass."""

    issues: list[AuditIssue] = field(default_factory=list)
    #: Nodes walked (compared against the tree's own counter).
    n_nodes: int = 0
    #: Leaf cluster features inspected.
    n_features: int = 0

    @property
    def errors(self) -> list[AuditIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> list[AuditIssue]:
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity issue was found."""
        return not self.errors

    def format(self) -> str:
        if not self.issues:
            return (
                f"audit clean: {self.n_nodes} nodes, "
                f"{self.n_features} leaf features checked"
            )
        return "\n".join(issue.format() for issue in self.issues)

    def raise_if_failed(self) -> None:
        """Raise :class:`TreeInvariantError` when any error was recorded."""
        errors = self.errors
        if errors:
            head = errors[0]
            raise TreeInvariantError(
                f"CF*-tree audit failed with {len(errors)} error(s); first: "
                f"{head.check} at {head.path}: {head.message}"
            )


class _TreeAuditor:
    def __init__(
        self,
        tree: Any,
        *,
        recompute_exact: bool,
        check_samples: bool,
        check_threshold: bool,
        tolerance: float,
    ) -> None:
        self.tree = tree
        self.recompute_exact = recompute_exact
        self.check_samples = check_samples
        self.check_threshold = check_threshold
        self.tolerance = tolerance
        self.report = AuditReport()
        self.metric: DistanceFunction | None = getattr(tree.policy, "metric", None)

    # ------------------------------------------------------------------
    def _error(self, check: str, path: str, message: str) -> None:
        self.report.issues.append(AuditIssue("error", check, path, message))

    def _warn(self, check: str, path: str, message: str) -> None:
        self.report.issues.append(AuditIssue("warning", check, path, message))

    # ------------------------------------------------------------------
    def run(self) -> AuditReport:
        tree = self.tree
        if not math.isfinite(tree.threshold) or tree.threshold < 0:
            self._error(
                "threshold", "root",
                f"threshold T={tree.threshold!r} must be finite and >= 0",
            )
        leaf_depths: set[int] = set()
        n_walked = 0
        total_objects = 0
        live_features: list[ClusterFeature] = []
        stack: list[tuple[Any, str, int]] = [(tree.root, "root", 1)]
        while stack:
            node, path, depth = stack.pop()
            n_walked += 1
            if len(node.entries) > tree.branching_factor:
                self._error(
                    "branching", path,
                    f"{len(node.entries)} entries exceed B={tree.branching_factor}",
                )
            if node.is_leaf:
                leaf_depths.add(depth)
                total_objects += sum(f.n for f in node.entries)
                live_features.extend(node.entries)
                self._audit_leaf(node, path)
            else:
                if not node.entries:
                    self._error("structure", path, "non-leaf node with no entries")
                if self.check_samples:
                    self._audit_nonleaf(node, path)
                for i, entry in enumerate(node.entries):
                    child = getattr(entry, "child", None)
                    if child is None:
                        self._error(
                            "structure", f"{path}.child[{i}]",
                            "non-leaf entry without a child node",
                        )
                        continue
                    stack.append((child, f"{path}.child[{i}]", depth + 1))
        if len(leaf_depths) > 1:
            self._error(
                "leaf-depth", "root",
                f"leaves at unequal depths {sorted(leaf_depths)}; the CF*-tree "
                "must stay height-balanced",
            )
        if n_walked != tree.n_nodes:
            self._error(
                "node-count", "root",
                f"tree.n_nodes={tree.n_nodes} but the walk found {n_walked} nodes",
            )
        outliers = list(getattr(tree, "_outliers", []))
        total_objects += sum(f.n for f in outliers)
        if total_objects != tree.n_objects:
            self._error(
                "object-count", "root",
                f"leaf features plus parked outliers hold {total_objects} "
                f"objects, expected n_objects={tree.n_objects}",
            )
        self._audit_arena(live_features + outliers)
        self.report.n_nodes = n_walked
        return self.report

    # ------------------------------------------------------------------
    # Slab arena occupancy
    # ------------------------------------------------------------------
    def _audit_arena(self, features: list[ClusterFeature]) -> None:
        """Slab-backed features and arena row accounting must agree:
        every live feature holds a distinct allocated row, and the policy
        arena carries exactly one live row per tree-held feature (no leaks
        from merged-away clusters, no double-assignment after recycling)."""
        policy_arena = getattr(self.tree.policy, "arena", None)
        rows_seen: dict[tuple[int, int], int] = {}
        in_policy_arena = 0
        for k, feature in enumerate(features):
            if not isinstance(feature, BubbleClusterFeature):
                continue
            row = feature._row
            if row < 0:
                self._error(
                    "arena", "root",
                    f"leaf feature #{k} ({feature!r}) was released back to the "
                    "arena but is still referenced by the tree",
                )
                continue
            key = (id(feature.arena), row)
            if key in rows_seen:
                self._error(
                    "arena", "root",
                    f"slab row {row} is assigned to two live features "
                    f"(#{rows_seen[key]} and #{k}); row recycling corrupted",
                )
            rows_seen[key] = k
            count = int(feature.arena.counts[row])
            if not 1 <= count <= feature.arena.width:
                self._error(
                    "arena", "root",
                    f"slab row {row} records {count} representatives, outside "
                    f"[1, {feature.arena.width}]",
                )
            if feature.arena is policy_arena:
                in_policy_arena += 1
        if policy_arena is not None and policy_arena.rows_used != in_policy_arena:
            self._error(
                "arena", "root",
                f"policy arena holds {policy_arena.rows_used} live rows but the "
                f"tree references {in_policy_arena} slab-backed features "
                "(leaked or lost rows)",
            )

    # ------------------------------------------------------------------
    # Leaf level
    # ------------------------------------------------------------------
    def _audit_leaf(self, node: Any, path: str) -> None:
        for j, feature in enumerate(node.entries):
            self.report.n_features += 1
            fpath = f"{path}.entry[{j}]"
            if isinstance(feature, BubbleClusterFeature):
                self._audit_bubble_feature(feature, fpath)
            elif isinstance(feature, ClusterFeature):
                self._audit_generic_feature(feature, fpath)
        if self.check_threshold and self.metric is not None and len(node.entries) >= 2:
            self._audit_leaf_separation(node, path)

    def _audit_generic_feature(self, feature: ClusterFeature, fpath: str) -> None:
        if feature.n < 1:
            self._error("feature-count", fpath, f"cluster with n={feature.n} < 1")
        radius = feature.radius
        if not math.isfinite(radius) or radius < 0:
            self._error("radius", fpath, f"radius {radius!r} is not finite and >= 0")

    def _audit_bubble_feature(self, feature: BubbleClusterFeature, fpath: str) -> None:
        reps = feature._reps
        # Effective (compensated) RowSums — the values every maintenance
        # decision is made against; raw slab state plus compensation.
        rowsums = feature.rowsums
        idx = feature._clustroid_idx
        tol = self.tolerance
        if not reps or len(reps) != len(rowsums):
            self._error(
                "feature-shape", fpath,
                f"{len(reps)} representatives vs {len(rowsums)} RowSums",
            )
            return
        if not 0 <= idx < len(reps):
            self._error(
                "clustroid", fpath,
                f"clustroid index {idx} outside the representative array",
            )
            return
        if feature.n < 1:
            self._error("feature-count", fpath, f"cluster with n={feature.n} < 1")
        if feature.exact and feature.n != len(reps):
            self._error(
                "feature-count", fpath,
                f"exact cluster keeps all members, but n={feature.n} != "
                f"{len(reps)} representatives",
            )
        if not feature.exact and feature.n < len(reps):
            self._error(
                "feature-count", fpath,
                f"n={feature.n} smaller than the {len(reps)} kept representatives",
            )
        if len(reps) > feature.rep_cap:
            self._error(
                "feature-shape", fpath,
                f"{len(reps)} representatives exceed the 2p cap {feature.rep_cap}",
            )
        scale = max(1.0, max(abs(r) for r in rowsums))
        for r in rowsums:
            if not math.isfinite(r) or r < -tol * scale:
                self._error(
                    "rowsum", fpath,
                    f"RowSum {r!r} is negative or non-finite",
                )
                break
        # Lemma 4.2 / Definition 4.1: the clustroid minimizes RowSum over
        # the kept representatives (ties broken arbitrarily).
        min_rowsum = min(rowsums)
        if rowsums[idx] > min_rowsum + tol * scale:
            self._error(
                "clustroid", fpath,
                f"clustroid RowSum {rowsums[idx]:.6g} does not minimize the "
                f"representative RowSums (min {min_rowsum:.6g})",
            )
        # Definition 4.3: r = sqrt(RowSum(clustroid) / n).
        expected_radius = math.sqrt(max(rowsums[idx], 0.0) / feature.n)
        radius = feature.radius
        if not math.isfinite(radius) or abs(radius - expected_radius) > tol * max(
            1.0, expected_radius
        ):
            self._error(
                "radius", fpath,
                f"radius {radius!r} != sqrt(RowSum(clustroid)/n) = "
                f"{expected_radius:.6g}",
            )
        if (
            self.recompute_exact
            and feature.exact
            and len(reps) >= 2
            and self.metric is not None
        ):
            self._recompute_exact_rowsums(feature, fpath)

    def _recompute_exact_rowsums(self, feature: BubbleClusterFeature, fpath: str) -> None:
        """While a cluster is exact every member is kept and every RowSum is
        exact — so a from-scratch recomputation must agree (stale-RowSum
        detection)."""
        assert self.metric is not None
        reps = feature._reps
        # One raw-hook gather for the whole member set (NCD-neutral), then a
        # vectorized row reduction — no scalar distance loop.
        dists = self.metric._pairwise(reps)  # reprolint: disable=RPL001 -- NCD-neutral audit
        fresh = (np.asarray(dists, dtype=np.float64) ** 2).sum(axis=1)
        stored = np.asarray(feature.rowsums, dtype=np.float64)
        scale = max(1.0, float(fresh.max()))
        bad = np.flatnonzero(np.abs(fresh - stored) > self.tolerance * scale)
        if bad.size:
            k = int(bad[0])
            self._error(
                "rowsum-stale", fpath,
                f"stored RowSum[{k}]={stored[k]:.6g} but recomputation over the "
                f"kept members gives {fresh[k]:.6g}",
            )

    def _audit_leaf_separation(self, node: Any, path: str) -> None:
        """Warning-level: two clusters in one leaf closer than ``T`` suggest
        a missed merge. Legal (the threshold test ran against an older
        clustroid), but a cluster-quality smell worth surfacing."""
        assert self.metric is not None
        threshold = self.tree.threshold
        if threshold <= 0:
            return
        entries = node.entries
        for a in range(len(entries)):
            for b in range(a + 1, len(entries)):
                d = _uncounted_distance(
                    self.metric, entries[a].clustroid, entries[b].clustroid
                )
                if d < threshold * (1.0 - self.tolerance):
                    self._warn(
                        "threshold", f"{path}.entry[{a}]",
                        f"clustroids of entries {a} and {b} are {d:.6g} apart, "
                        f"inside T={threshold:.6g} (clustroid drift after the "
                        "admission test)",
                    )

    # ------------------------------------------------------------------
    # Non-leaf level
    # ------------------------------------------------------------------
    def _audit_nonleaf(self, node: Any, path: str) -> None:
        summaries: list[Sequence[Any]] = []
        have_samples = True
        for i, entry in enumerate(node.entries):
            summary = getattr(entry, "summary", None)
            if isinstance(summary, list):
                if not summary:
                    self._error(
                        "samples", f"{path}.child[{i}]",
                        "non-leaf entry carries an empty sample set",
                    )
                summaries.append(summary)
            else:
                # Policies without object samples (e.g. vector BIRCH's
                # additive CFs) are outside this check's scope.
                have_samples = False
        if not have_samples or not summaries:
            return
        self._audit_sample_cache(node, path, summaries)
        for i, entry in enumerate(node.entries):
            self._audit_sample_provenance(entry, f"{path}.child[{i}]")

    def _audit_sample_cache(
        self, node: Any, path: str, summaries: list[Sequence[Any]]
    ) -> None:
        cache = getattr(node, "aux", None)
        if cache is None:
            return  # lazily rebuilt on first routing; absence is legal
        flat = getattr(cache, "flat", None)
        offsets = getattr(cache, "offsets", None)
        if flat is None or offsets is None:
            return
        expected = [obj for summary in summaries for obj in summary]
        if len(offsets) != len(summaries) + 1 or list(offsets) != [
            sum(len(s) for s in summaries[:k]) for k in range(len(summaries) + 1)
        ]:
            self._error(
                "sample-cache", path,
                f"cached sample offsets {list(offsets)!r} disagree with the "
                f"entry sample sizes {[len(s) for s in summaries]}",
            )
            return
        if len(flat) != len(expected) or any(
            a is not b for a, b in zip(flat, expected)
        ):
            self._error(
                "sample-cache", path,
                "cached flat sample list is not the concatenation of the "
                "entry sample sets",
            )
            return
        self._audit_image_cache(node, path, cache)

    def _audit_image_cache(self, node: Any, path: str, cache: Any) -> None:
        mapper = getattr(cache, "mapper", None)
        images = getattr(cache, "images", None)
        centroids = getattr(cache, "centroids", None)
        if mapper is None or images is None or centroids is None:
            return
        n_flat = len(cache.flat)
        if images.shape[0] != n_flat:
            self._error(
                "image-cache", path,
                f"{images.shape[0]} cached image vectors for {n_flat} samples",
            )
            return
        if centroids.shape[0] != len(node.entries):
            self._error(
                "image-cache", path,
                f"{centroids.shape[0]} image centroids for "
                f"{len(node.entries)} entries",
            )
            return
        offsets = cache.offsets
        for i in range(len(node.entries)):
            segment = images[int(offsets[i]): int(offsets[i + 1])]
            if segment.size == 0:
                continue
            want = segment.mean(axis=0)
            if not np.allclose(centroids[i], want, rtol=1e-9, atol=self.tolerance):
                self._error(
                    "image-cache", f"{path}.child[{i}]",
                    "image centroid disagrees with the mean of the cached "
                    "sample images",
                )

    def _audit_sample_provenance(self, entry: Any, path: str) -> None:
        """Samples are drawn from descendant leaves at refresh time
        (Section 4.2.1); Type-I insertions may later replace the sampled
        objects inside their features, so a miss is a *warning* (staleness),
        not an error."""
        summary = getattr(entry, "summary", None)
        child = getattr(entry, "child", None)
        if not summary or child is None:
            return
        pool_ids = {id(obj) for obj in self._descendant_representatives(child)}
        missing = sum(1 for obj in summary if id(obj) not in pool_ids)
        if missing:
            self._warn(
                "sample-stale", path,
                f"{missing}/{len(summary)} sample objects are no longer held "
                "by the descendant leaf features (expected drift under "
                "Type-I insertions since the last refresh)",
            )

    def _descendant_representatives(self, node: Any) -> Iterator[Any]:
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                for feature in current.entries:
                    reps = getattr(feature, "_reps", None)
                    if reps is not None:
                        yield from reps
                    else:
                        yield feature.clustroid
            else:
                stack.extend(e.child for e in current.entries)


def audit_tree(
    tree: Any,
    *,
    recompute_exact: bool = True,
    check_samples: bool = True,
    check_threshold: bool = True,
    tolerance: float = 1e-6,
    raise_on_error: bool = True,
) -> AuditReport:
    """Audit a live CF*-tree; return the report, raising on broken invariants.

    Parameters
    ----------
    tree:
        A :class:`~repro.core.cftree.CFTree` (any policy; BUBBLE-specific
        checks activate when the features/summaries match).
    recompute_exact:
        Recompute the RowSums of exact-mode clusters from scratch and
        compare (catches stale RowSums). Costs uncounted distance
        evaluations over at most ``2p`` members per exact cluster.
    check_samples:
        Verify non-leaf sample sets, node-level sample caches, and
        BUBBLE-FM image-space caches.
    check_threshold:
        Verify ``T`` itself and emit warnings for co-located leaf
        clusters closer than ``T``.
    tolerance:
        Relative tolerance for floating-point comparisons.
    raise_on_error:
        Raise :class:`~repro.exceptions.TreeInvariantError` naming the
        offending node path when any error-severity issue is found;
        pass ``False`` to inspect the report instead.

    All distance evaluations performed by the audit bypass NCD counting,
    so auditing never changes reported experiment costs.
    """
    auditor = _TreeAuditor(
        tree,
        recompute_exact=recompute_exact,
        check_samples=check_samples,
        check_threshold=check_threshold,
        tolerance=tolerance,
    )
    report = auditor.run()
    if raise_on_error:
        report.raise_if_failed()
    return report
