"""Static analysis and runtime auditing for the reproduction.

Three layers turn the paper's stated invariants into machine-checked
guarantees:

* :mod:`repro.analysis.lint` — **reprolint**, an AST linter with
  project-specific rules (NCD-accounting hygiene, seeded randomness,
  tolerance-based distance comparisons, no accidental all-pairs scans,
  explicit public surfaces);
* :mod:`repro.analysis.audit` — a CF*-tree invariant sanitizer that walks
  a live tree and checks the structural and CF*-level properties of
  Sections 3-4 (Lemma 4.2, Observation 1);
* the mypy strict-typing gate configured in ``pyproject.toml`` (this
  package ships ``py.typed``).

See ``docs/analysis.md`` for the rule catalogue and the audit guarantees.
"""

from repro.analysis.audit import AuditIssue, AuditReport, audit_tree
from repro.analysis.lint import (
    LintViolation,
    format_violations,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "AuditIssue",
    "AuditReport",
    "LintViolation",
    "Rule",
    "audit_tree",
    "format_violations",
    "lint_file",
    "lint_paths",
    "lint_source",
]
