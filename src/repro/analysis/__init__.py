"""Static analysis and runtime auditing for the reproduction.

Three layers turn the paper's stated invariants into machine-checked
guarantees:

* :mod:`repro.analysis.lint` — **reprolint**, a dataflow-aware static
  analyser with project-specific rules: the token/AST rules
  (:mod:`repro.analysis.rules` — NCD-accounting hygiene, seeded
  randomness, tolerance-based distance comparisons, no accidental
  all-pairs scans, explicit public surfaces) and the CFG/dataflow rules
  (:mod:`repro.analysis.flowrules` — pickle-safety at worker boundaries,
  all-paths span/ledger pairing, seed provenance, external-count booking
  discipline, float-stability shapes), built on a per-function CFG
  (:mod:`repro.analysis.cfg`), a scope/value-origin model
  (:mod:`repro.analysis.dataflow`), and a cross-module symbol table
  (:mod:`repro.analysis.symbols`);
* :mod:`repro.analysis.audit` — a CF*-tree invariant sanitizer that walks
  a live tree and checks the structural and CF*-level properties of
  Sections 3-4 (Lemma 4.2, Observation 1);
* the mypy strict-typing gate configured in ``pyproject.toml`` (this
  package ships ``py.typed``).

See ``docs/analysis.md`` for the rule catalogue and the audit guarantees.
"""

from repro.analysis.audit import AuditIssue, AuditReport, audit_tree
from repro.analysis.lint import (
    ALL_RULES,
    PROFILES,
    LintViolation,
    format_violations,
    lint_file,
    lint_paths,
    lint_source,
    to_sarif,
)
from repro.analysis.rules import BASE_RULES, Rule, RuleContext

__all__ = [
    "ALL_RULES",
    "BASE_RULES",
    "PROFILES",
    "AuditIssue",
    "AuditReport",
    "LintViolation",
    "Rule",
    "RuleContext",
    "audit_tree",
    "format_violations",
    "lint_file",
    "lint_paths",
    "lint_source",
    "to_sarif",
]
