"""The reprolint rule catalogue.

Each rule encodes one invariant of the reproduction (rationale in
``docs/analysis.md``):

RPL001
    No raw ``metric._distance`` / ``_one_to_many`` / ``_pairwise`` /
    ``_cross`` calls outside the allowlisted modules (``metrics/base.py``,
    where the counted wrappers live, and ``core/routing.py``, whose
    cached-geometry maintenance is NCD-neutral by design and tracked
    separately in ``PruningStats``). The public wrappers are the *only*
    counted path — a raw hook call bypasses NCD accounting (the paper's
    headline cost metric, Section 6) and every GuardedMetric policy.
    Calls on bare ``self`` are allowed: that is an implementation hook
    delegating to a sibling hook, and counting happens in the caller.
RPL002
    No unseeded randomness inside the library: ``np.random.default_rng()``
    without a seed, legacy global-state ``np.random.*`` functions, and
    stdlib ``random.*``. Every run must be reproducible from a seed
    threaded through :func:`repro.utils.rng.ensure_rng`.
RPL003
    No ``==`` / ``!=`` between distance values. Distances are floats
    produced by arbitrary user metrics; compare with a tolerance
    (``math.isclose`` / ``np.isclose``) instead.
RPL004
    No scalar/batch distance calls nested two or more loops deep outside
    the sanctioned all-pairs modules (``evaluation/``, ``experiments/``):
    the accidental-O(n²)-NCD lint.
RPL005
    Public modules must declare ``__all__`` so the public surface is
    explicit (and the typing gate knows what to hold stable).
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analysis.cfg import FunctionCFG
    from repro.analysis.dataflow import ModuleScopes
    from repro.analysis.symbols import ProjectSymbolTable

__all__ = ["BASE_RULES", "META_RULE", "Finding", "Rule", "RuleContext"]

#: A single finding: (line, column, message).
Finding = tuple[int, int, str]

_RAW_HOOKS = frozenset({"_distance", "_one_to_many", "_pairwise", "_cross"})
_SCALAR_DISTANCE_CALLS = frozenset({"distance", "distance_to", "leaf_entry_distance"})
_BATCH_DISTANCE_CALLS = frozenset({"one_to_many", "pairwise", "cross"})

#: Modules whose raw-hook reads are sanctioned: the counted wrappers
#: themselves, and the pruned routing engine's NCD-neutral geometry
#: maintenance (accounted for separately via ``PruningStats``).
_RAW_HOOK_ALLOWLIST = ("metrics/base.py", "core/routing.py")

#: numpy.random constructors that are deterministic *given arguments*.
_SEEDED_CTORS = frozenset({"default_rng", "RandomState"})
#: numpy.random types that carry their own explicit seeding.
_RNG_TYPES = frozenset(
    {"Generator", "SeedSequence", "BitGenerator", "PCG64", "PCG64DXSM",
     "Philox", "SFC64", "MT19937"}
)


class RuleContext:
    """Everything a checker may need about one module, built lazily.

    Token-level rules only touch ``tree``/``path``/``source``; the RPL1xx
    dataflow rules additionally pull ``scopes`` (lexical scope tree with
    per-binding value origins), ``function_cfgs`` (statement-granular
    control-flow graphs), and ``symbols`` (the cross-module import-resolving
    table, shared across the whole lint run). The expensive artefacts are
    memoised so multiple rules pay for them once.
    """

    def __init__(
        self,
        tree: ast.Module,
        path: str,
        source: str,
        symbols: ProjectSymbolTable | None = None,
    ) -> None:
        self.tree = tree
        self.path = path
        self.source = source
        self.symbols = symbols
        self._scopes: ModuleScopes | None = None
        self._function_cfgs: list[FunctionCFG] | None = None

    @property
    def scopes(self) -> ModuleScopes:
        if self._scopes is None:
            from repro.analysis.dataflow import build_scopes

            self._scopes = build_scopes(self.tree)
        return self._scopes

    @property
    def function_cfgs(self) -> list[FunctionCFG]:
        if self._function_cfgs is None:
            from repro.analysis.cfg import iter_function_cfgs

            self._function_cfgs = list(iter_function_cfgs(self.tree))
        return self._function_cfgs


#: Checker signature shared by every concrete rule.
Checker = Callable[[RuleContext], Iterator[Finding]]


@dataclass(frozen=True)
class Rule:
    """One lint rule: metadata plus a ``check`` callable.

    ``checker`` is ``None`` for the RPL000 meta rule, whose findings
    (syntax errors, unused or unjustified suppressions) are produced by
    the engine itself rather than by a per-module checker.
    """

    code: str
    summary: str
    rationale: str
    checker: Checker | None = field(repr=False, default=None)

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        """Yield ``(line, col, message)`` findings for ``ctx.tree``."""
        if self.checker is not None:
            yield from self.checker(ctx)


def _dotted_name(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


# ----------------------------------------------------------------------
# RPL001 — raw distance-hook calls
# ----------------------------------------------------------------------
def _check_raw_hooks(ctx: RuleContext) -> Iterator[Finding]:
    if ctx.path.endswith(_RAW_HOOK_ALLOWLIST):
        return
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        if attr not in _RAW_HOOKS:
            continue
        receiver = node.func.value
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            continue  # hook-to-hook delegation; the public wrapper counts
        if (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Name)
            and receiver.func.id == "super"
        ):
            continue  # super()._hook(...) overrides stay inside the hook layer
        yield (
            node.lineno,
            node.col_offset,
            f"raw `{attr}` call bypasses NCD accounting and guard policies; "
            "use the counted public API (.distance/.one_to_many/.pairwise)",
        )


# ----------------------------------------------------------------------
# RPL002 — unseeded randomness
# ----------------------------------------------------------------------
class _RandomnessVisitor(ast.NodeVisitor):
    def __init__(self) -> None:
        self.numpy_aliases: set[str] = set()
        self.numpy_random_aliases: set[str] = set()
        self.stdlib_random_aliases: set[str] = set()
        self.from_random_names: dict[str, str] = {}
        self.from_numpy_random_names: dict[str, str] = {}
        self.findings: list[Finding] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy":
                self.numpy_aliases.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname:
                    self.numpy_random_aliases.add(alias.asname)
                else:
                    self.numpy_aliases.add("numpy")
            elif alias.name == "random":
                self.stdlib_random_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.numpy_random_aliases.add(alias.asname or "random")
        elif node.module == "numpy.random":
            for alias in node.names:
                self.from_numpy_random_names[alias.asname or alias.name] = alias.name
        elif node.module == "random" and node.level == 0:
            for alias in node.names:
                self.from_random_names[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def _has_seed_argument(self, node: ast.Call) -> bool:
        if node.args:
            return True
        return any(kw.arg in (None, "seed") for kw in node.keywords)

    def _numpy_random_function(self, func: ast.expr) -> str | None:
        parts = _dotted_name(func)
        if parts is None:
            return None
        if len(parts) == 3 and parts[0] in self.numpy_aliases and parts[1] == "random":
            return parts[2]
        if len(parts) == 2 and parts[0] in self.numpy_random_aliases:
            return parts[1]
        if len(parts) == 1 and parts[0] in self.from_numpy_random_names:
            return self.from_numpy_random_names[parts[0]]
        return None

    def _stdlib_random_function(self, func: ast.expr) -> str | None:
        parts = _dotted_name(func)
        if parts is None:
            return None
        if len(parts) == 2 and parts[0] in self.stdlib_random_aliases:
            return parts[1]
        if len(parts) == 1 and parts[0] in self.from_random_names:
            return self.from_random_names[parts[0]]
        return None

    def visit_Call(self, node: ast.Call) -> None:
        fn = self._numpy_random_function(node.func)
        if fn is not None:
            if fn in _SEEDED_CTORS:
                if not self._has_seed_argument(node):
                    self.findings.append((
                        node.lineno, node.col_offset,
                        f"`{fn}()` without a seed is nondeterministic; thread a "
                        "seed/Generator through repro.utils.rng.ensure_rng",
                    ))
            elif fn not in _RNG_TYPES:
                self.findings.append((
                    node.lineno, node.col_offset,
                    f"legacy global-state `np.random.{fn}` is unseedable per-call; "
                    "use a seeded np.random.Generator",
                ))
        else:
            fn = self._stdlib_random_function(node.func)
            if fn is not None and not (fn == "Random" and self._has_seed_argument(node)):
                self.findings.append((
                    node.lineno, node.col_offset,
                    f"stdlib `random.{fn}` draws from hidden global state; use a "
                    "seeded np.random.Generator",
                ))
        self.generic_visit(node)


def _check_unseeded_randomness(ctx: RuleContext) -> Iterator[Finding]:
    visitor = _RandomnessVisitor()
    visitor.visit(ctx.tree)
    yield from visitor.findings


# ----------------------------------------------------------------------
# RPL003 — exact equality between distance values
# ----------------------------------------------------------------------
_DIST_NAMES = frozenset({"d", "dist", "dists", "distance", "distances"})
_DIST_PREFIXES = ("dist_", "d_")
_DIST_SUFFIXES = ("_dist", "_dists", "_distance", "_distances")


def _is_distance_name(name: str) -> bool:
    return (
        name in _DIST_NAMES
        or name.startswith(_DIST_PREFIXES)
        or name.endswith(_DIST_SUFFIXES)
    )


def _is_distance_value(node: ast.expr) -> bool:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr in (_SCALAR_DISTANCE_CALLS | _BATCH_DISTANCE_CALLS)
    if isinstance(node, ast.Name):
        return _is_distance_name(node.id)
    if isinstance(node, ast.Attribute):
        return _is_distance_name(node.attr)
    if isinstance(node, ast.Subscript):
        return _is_distance_value(node.value)
    return False


def _check_distance_equality(ctx: RuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            if _is_distance_value(left) or _is_distance_value(right):
                yield (
                    node.lineno,
                    node.col_offset,
                    "exact ==/!= on a distance value is fragile for "
                    "metric-space floats; compare with a tolerance "
                    "(math.isclose / np.isclose)",
                )
                break


# ----------------------------------------------------------------------
# RPL004 — nested loops around distance calls
# ----------------------------------------------------------------------
_SANCTIONED_ALL_PAIRS = ("evaluation/", "experiments/")


class _LoopDepthVisitor(ast.NodeVisitor):
    """Track explicit-loop nesting depth within each function scope."""

    def __init__(self) -> None:
        self.depth = 0
        self.findings: list[Finding] = []

    def _enter_scope(self, node: ast.AST) -> None:
        saved, self.depth = self.depth, 0
        self.generic_visit(node)
        self.depth = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._enter_scope(node)

    def _enter_loop(self, node: ast.AST, levels: int = 1) -> None:
        self.depth += levels
        self.generic_visit(node)
        self.depth -= levels

    def visit_For(self, node: ast.For) -> None:
        self._enter_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._enter_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._enter_loop(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        self._enter_loop(node, levels=len(getattr(node, "generators", [])) or 1)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) and self.depth >= 2:
            attr = node.func.attr
            if attr in _SCALAR_DISTANCE_CALLS or attr in _BATCH_DISTANCE_CALLS:
                self.findings.append((
                    node.lineno, node.col_offset,
                    f"`.{attr}(...)` inside {self.depth} nested loops is an "
                    "all-pairs NCD pattern; use .pairwise()/.one_to_many() at "
                    "the outer level or move the scan into evaluation/ or "
                    "experiments/",
                ))
        self.generic_visit(node)


def _check_nested_distance_loops(ctx: RuleContext) -> Iterator[Finding]:
    if any(marker in ctx.path for marker in _SANCTIONED_ALL_PAIRS):
        return
    visitor = _LoopDepthVisitor()
    visitor.visit(ctx.tree)
    yield from visitor.findings


# ----------------------------------------------------------------------
# RPL005 — public modules declare __all__
# ----------------------------------------------------------------------
def _declares_all(tree: ast.Module) -> bool:
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                return True
    return False


def _has_public_content(tree: ast.Module) -> bool:
    return any(
        isinstance(
            node,
            (ast.Import, ast.ImportFrom, ast.Assign, ast.AnnAssign,
             ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        )
        for node in tree.body
    )


def _check_declares_all(ctx: RuleContext) -> Iterator[Finding]:
    tree = ctx.tree
    basename = ctx.path.rsplit("/", 1)[-1]
    if basename.startswith("_") and basename != "__init__.py":
        return  # private modules and __main__ entry points
    if not _has_public_content(tree):
        return  # empty namespace marker
    if not _declares_all(tree):
        yield (
            1, 0,
            "public module does not declare __all__; make the public "
            "surface explicit",
        )


META_RULE = Rule(
    code="RPL000",
    summary="lint integrity: syntax errors, unused or unjustified suppressions",
    rationale="a suppression that no longer fires (or carries no reason) hides drift",
    checker=None,
)

BASE_RULES: tuple[Rule, ...] = (
    Rule(
        code="RPL001",
        summary="no raw metric hook calls outside metrics/base.py and core/routing.py",
        rationale="raw hook calls bypass NCD accounting and GuardedMetric policies",
        checker=_check_raw_hooks,
    ),
    Rule(
        code="RPL002",
        summary="no unseeded randomness in library code",
        rationale="reproducibility: every stochastic choice must flow from a seed",
        checker=_check_unseeded_randomness,
    ),
    Rule(
        code="RPL003",
        summary="no ==/!= comparisons between distance values",
        rationale="distances are metric-dependent floats; equality needs a tolerance",
        checker=_check_distance_equality,
    ),
    Rule(
        code="RPL004",
        summary="no distance calls nested >= 2 loops deep outside evaluation//experiments/",
        rationale="accidental all-pairs scans silently inflate NCD, the paper's cost metric",
        checker=_check_nested_distance_loops,
    ),
    Rule(
        code="RPL005",
        summary="public modules must declare __all__",
        rationale="an explicit public surface is what the typing gate holds stable",
        checker=_check_declares_all,
    ),
)
