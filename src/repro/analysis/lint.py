"""reprolint — the project-specific AST linter.

Generic linters keep the code tidy; *this* linter keeps the paper's
guarantees machine-checked. Every rule encodes an invariant the
reproduction depends on (see :mod:`repro.analysis.rules` and
``docs/analysis.md`` for the catalogue): honest NCD accounting, seeded
randomness, tolerance-based distance comparisons, no accidental all-pairs
scans, and explicit public surfaces.

Built on :mod:`ast` and :mod:`tokenize` only — no third-party
dependencies. Run it as ``repro lint``, ``python -m repro.analysis``, or
programmatically::

    from repro.analysis import lint_paths
    violations = lint_paths(["src"])

Suppression: append ``# reprolint: disable=RPL001`` (comma-separate for
several codes, or ``disable=all``) to the offending line. Suppressions
are intended to carry a justifying comment; the baseline in ``src/`` is
kept at zero violations by CI.
"""

from __future__ import annotations

import ast
import io
import json
import sys
import tokenize
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.rules import ALL_RULES, Rule

__all__ = [
    "LintViolation",
    "lint_source",
    "lint_file",
    "lint_paths",
    "format_violations",
    "main",
]

_DISABLE_MARKER = "reprolint:"


@dataclass(frozen=True)
class LintViolation:
    """One rule violation at a source location."""

    #: File the violation was found in (as given to the linter).
    path: str
    #: 1-based line number.
    line: int
    #: 0-based column offset.
    col: int
    #: Rule code, e.g. ``"RPL001"``.
    code: str
    #: Human-readable explanation of the violation.
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"


@dataclass
class _Suppressions:
    """Per-line and whole-file suppression state parsed from comments."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    def active(self, line: int, code: str) -> bool:
        if "all" in self.file_wide or code in self.file_wide:
            return True
        codes = self.by_line.get(line)
        if codes is None:
            return False
        return "all" in codes or code in codes


def _parse_suppressions(source: str) -> _Suppressions:
    """Collect ``# reprolint: disable=...`` comments.

    A marker on a line suppresses the listed codes on that line; a
    ``disable-file=`` marker anywhere suppresses them for the whole file.
    """
    out = _Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            if not text.startswith(_DISABLE_MARKER):
                continue
            directive = text[len(_DISABLE_MARKER):].strip()
            for part in directive.split():
                if part.startswith("disable-file="):
                    out.file_wide.update(
                        c.strip() for c in part[len("disable-file="):].split(",") if c.strip()
                    )
                elif part.startswith("disable="):
                    codes = {
                        c.strip() for c in part[len("disable="):].split(",") if c.strip()
                    }
                    out.by_line.setdefault(tok.start[0], set()).update(codes)
    except tokenize.TokenError:
        # Unterminated string or similar: the ast parse below will produce
        # the real syntax error; suppressions simply stay empty.
        pass
    return out


def _select_rules(select: Iterable[str] | None) -> list[Rule]:
    if select is None:
        return list(ALL_RULES)
    wanted = {c.strip().upper() for c in select if c.strip()}
    known = {rule.code for rule in ALL_RULES}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule code(s) {sorted(unknown)}; known: {sorted(known)}"
        )
    return [rule for rule in ALL_RULES if rule.code in wanted]


def lint_source(
    source: str,
    path: str = "<string>",
    select: Iterable[str] | None = None,
) -> list[LintViolation]:
    """Lint Python source text; returns violations sorted by location.

    ``path`` is used both for reporting and for path-scoped rule
    exemptions (e.g. RPL001 exempts ``metrics/base.py``), so pass the
    real repository-relative path whenever one exists.
    """
    rules = _select_rules(select)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno or 1
        col = (exc.offset or 1) - 1
        return [
            LintViolation(path, line, max(col, 0), "RPL000", f"syntax error: {exc.msg}")
        ]
    suppressions = _parse_suppressions(source)
    violations: list[LintViolation] = []
    norm_path = Path(path).as_posix()
    for rule in rules:
        for line, col, message in rule.check(tree, norm_path, source):
            if not suppressions.active(line, rule.code):
                violations.append(LintViolation(path, line, col, rule.code, message))
    violations.sort(key=lambda v: (v.line, v.col, v.code))
    return violations


def lint_file(path: str | Path, select: Iterable[str] | None = None) -> list[LintViolation]:
    """Lint one file on disk."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, str(path), select=select)


def _iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    files: list[Path] = []
    for item in paths:
        p = Path(item)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    # De-duplicate while preserving order (a file may be reachable twice).
    seen: set[Path] = set()
    unique: list[Path] = []
    for f in files:
        r = f.resolve()
        if r not in seen:
            seen.add(r)
            unique.append(f)
    return unique


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
) -> list[LintViolation]:
    """Lint every ``*.py`` file under the given files/directories."""
    violations: list[LintViolation] = []
    for f in _iter_python_files(paths):
        violations.extend(lint_file(f, select=select))
    return violations


def format_violations(violations: Sequence[LintViolation], statistics: bool = False) -> str:
    """Render violations in a ``file:line:col: CODE message`` listing."""
    lines = [v.format() for v in violations]
    if statistics and violations:
        counts: dict[str, int] = {}
        for v in violations:
            counts[v.code] = counts.get(v.code, 0) + 1
        lines.append("")
        for code in sorted(counts):
            lines.append(f"{counts[code]:5d}  {code}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point shared by ``repro lint`` and ``python -m repro.analysis``.

    Exit status: 0 clean, 1 violations found, 2 usage error.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-specific static analysis (reprolint)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text", dest="output_format",
    )
    parser.add_argument(
        "--statistics", action="store_true", help="append per-rule counts",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.summary}")
        return 0

    select = args.select.split(",") if args.select else None
    try:
        violations = lint_paths(args.paths, select=select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(json.dumps([v.__dict__ for v in violations], indent=2))
    elif violations:
        print(format_violations(violations, statistics=args.statistics))
    if violations:
        print(f"{len(violations)} violation(s) found", file=sys.stderr)
        return 1
    return 0
