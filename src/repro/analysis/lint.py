"""reprolint — the project-specific static analyser.

Generic linters keep the code tidy; *this* linter keeps the paper's
guarantees machine-checked. Every rule encodes an invariant the
reproduction depends on (see :mod:`repro.analysis.rules`,
:mod:`repro.analysis.flowrules` and ``docs/analysis.md`` for the
catalogue): honest NCD accounting, seeded randomness, tolerance-based
distance comparisons, no accidental all-pairs scans, explicit public
surfaces — and, via the dataflow engine (:mod:`repro.analysis.cfg`,
:mod:`repro.analysis.dataflow`, :mod:`repro.analysis.symbols`),
pickle-safety at worker boundaries, all-paths span/ledger pairing, seed
provenance, external-count booking discipline, and float-stability
shapes feeding the BETULA worklist.

Built on :mod:`ast` and :mod:`tokenize` only — no third-party
dependencies. Run it as ``repro lint``, ``python -m repro.analysis``, or
programmatically::

    from repro.analysis import lint_paths
    violations = lint_paths(["src"])

Suppression syntax (reasons are mandatory — RPL000 flags bare ones)::

    x = risky()  # reprolint: disable=RPL001 -- counted by the caller
    # reprolint: disable-file=RPL005 -- script, not a public module

A suppression whose rule would not have fired is itself an RPL000
violation, so the suppression inventory can never silently go stale.
Profiles select which rules run: ``src`` (everything) and ``tests``
(parallel-safety rules only — RPL000/RPL101/RPL102).
"""

from __future__ import annotations

import ast
import functools
import io
import json
import sys
import tokenize
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.flowrules import FLOW_RULES
from repro.analysis.rules import BASE_RULES, META_RULE, Rule, RuleContext
from repro.analysis.symbols import ProjectSymbolTable

__all__ = [
    "ALL_RULES",
    "PROFILES",
    "LintViolation",
    "lint_source",
    "lint_file",
    "lint_paths",
    "format_violations",
    "to_sarif",
    "main",
]

#: The complete catalogue: the engine-level meta rule, the token/AST
#: rules, and the CFG/dataflow rules.
ALL_RULES: tuple[Rule, ...] = (META_RULE, *BASE_RULES, *FLOW_RULES)

#: Named rule profiles. ``None`` means "every rule". The ``tests``
#: profile keeps the parallel-safety rules (pickle-safety and span/ledger
#: pairing — tests construct real worker tasks and tracer spans) while
#: dropping style- and scope-rules that are meaningless for test code
#: (loop-depth RPL004, ``__all__`` RPL005, seeded-randomness RPL002, ...).
PROFILES: dict[str, tuple[str, ...] | None] = {
    "src": None,
    "tests": ("RPL000", "RPL101", "RPL102"),
}

_DISABLE_MARKER = "reprolint:"
_REASON_SEPARATOR = " -- "


@dataclass(frozen=True)
class LintViolation:
    """One rule violation at a source location."""

    #: File the violation was found in (as given to the linter).
    path: str
    #: 1-based line number.
    line: int
    #: 0-based column offset.
    col: int
    #: Rule code, e.g. ``"RPL001"``.
    code: str
    #: Human-readable explanation of the violation.
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"


@dataclass
class _Directive:
    """One parsed ``# reprolint: disable[-file]=...`` comment."""

    line: int
    col: int
    codes: frozenset[str]
    file_wide: bool
    reason: str
    #: Set when the directive suppressed at least one finding this run.
    used: bool = field(default=False, compare=False)


@dataclass
class _Suppressions:
    """All suppression directives parsed from one module."""

    directives: list[_Directive] = field(default_factory=list)

    def match(self, line: int, code: str) -> _Directive | None:
        """First directive covering ``code`` at ``line`` (file-wide wins)."""
        for d in self.directives:
            if not (d.file_wide or d.line == line):
                continue
            if "all" in d.codes or code in d.codes:
                return d
        return None


def _parse_suppressions(source: str) -> _Suppressions:
    """Collect ``# reprolint: disable=...`` comments with their reasons.

    A directive on a line suppresses the listed codes on that line; a
    ``disable-file=`` directive anywhere suppresses them for the whole
    file. Everything after `` -- `` is the mandatory justification.
    """
    out = _Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            if not text.startswith(_DISABLE_MARKER):
                continue
            directive = text[len(_DISABLE_MARKER):].strip()
            reason = ""
            if _REASON_SEPARATOR in directive:
                directive, _, reason = directive.partition(_REASON_SEPARATOR)
                directive = directive.strip()
                reason = reason.strip()
            for part in directive.split():
                file_wide = part.startswith("disable-file=")
                prefix = "disable-file=" if file_wide else "disable="
                if not part.startswith(prefix):
                    continue
                codes = frozenset(
                    c.strip() for c in part[len(prefix):].split(",") if c.strip()
                )
                if codes:
                    out.directives.append(
                        _Directive(
                            line=tok.start[0],
                            col=tok.start[1],
                            codes=codes,
                            file_wide=file_wide,
                            reason=reason,
                        )
                    )
    except tokenize.TokenError:
        # Unterminated string or similar: the ast parse below will produce
        # the real syntax error; suppressions simply stay empty.
        pass
    return out


def _select_rules(
    select: Iterable[str] | None, profile: str
) -> list[Rule]:
    known = {rule.code for rule in ALL_RULES}
    if select is not None:
        wanted = {c.strip().upper() for c in select if c.strip()}
        unknown = wanted - known
        if unknown:
            raise ValueError(
                f"unknown rule code(s) {sorted(unknown)}; known: {sorted(known)}"
            )
        return [rule for rule in ALL_RULES if rule.code in wanted]
    if profile not in PROFILES:
        raise ValueError(
            f"unknown profile {profile!r}; known: {sorted(PROFILES)}"
        )
    codes = PROFILES[profile]
    if codes is None:
        return list(ALL_RULES)
    return [rule for rule in ALL_RULES if rule.code in codes]


@functools.lru_cache(maxsize=1)
def _package_symbols() -> ProjectSymbolTable:
    """Shared fallback symbol table over the installed ``repro`` source."""
    return ProjectSymbolTable().with_package()


def _meta_findings(
    suppressions: _Suppressions,
    active_codes: set[str],
    select: Iterable[str] | None,
) -> list[tuple[int, int, str]]:
    """RPL000: unknown codes, missing reasons, unused suppressions.

    Unused-suppression detection only fires when every code a directive
    names was actually executed this run — a ``--select RPL001`` pass must
    not declare an RPL102 suppression stale.
    """
    known = {rule.code for rule in ALL_RULES}
    findings: list[tuple[int, int, str]] = []
    full_run = select is None
    for d in suppressions.directives:
        unknown = sorted(d.codes - known - {"all"})
        if unknown:
            findings.append((
                d.line, d.col,
                f"suppression names unknown rule code(s) {unknown}",
            ))
            continue
        if not d.reason:
            findings.append((
                d.line, d.col,
                "suppression without a justification; append `-- <reason>`",
            ))
        concrete = d.codes - {"all"}
        executed = (
            (full_run or concrete <= active_codes)
            if "all" in d.codes
            else concrete <= active_codes
        )
        if executed and not d.used:
            codes = "all" if "all" in d.codes else ",".join(sorted(concrete))
            findings.append((
                d.line, d.col,
                f"unused suppression: no {codes} finding here; remove it",
            ))
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    select: Iterable[str] | None = None,
    profile: str = "src",
    symbols: ProjectSymbolTable | None = None,
) -> list[LintViolation]:
    """Lint Python source text; returns violations sorted by location.

    ``path`` is used both for reporting and for path-scoped rule
    exemptions (e.g. RPL001 exempts ``metrics/base.py``), so pass the
    real repository-relative path whenever one exists. ``symbols``
    defaults to a table over the installed ``repro`` package, which is
    what standalone snippets need to resolve project imports.
    """
    rules = _select_rules(select, profile)
    active_codes = {rule.code for rule in rules}
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno or 1
        col = (exc.offset or 1) - 1
        return [
            LintViolation(path, line, max(col, 0), "RPL000", f"syntax error: {exc.msg}")
        ]
    suppressions = _parse_suppressions(source)
    norm_path = Path(path).as_posix()
    if symbols is None:
        symbols = _package_symbols()
    ctx = RuleContext(tree=tree, path=norm_path, source=source, symbols=symbols)
    violations: list[LintViolation] = []
    for rule in rules:
        for line, col, message in rule.check(ctx):
            directive = suppressions.match(line, rule.code)
            if directive is not None:
                directive.used = True
            else:
                violations.append(LintViolation(path, line, col, rule.code, message))
    if "RPL000" in active_codes:
        # Meta findings are about the suppressions themselves and are
        # deliberately not suppressible.
        for line, col, message in _meta_findings(suppressions, active_codes, select):
            violations.append(LintViolation(path, line, col, "RPL000", message))
    violations.sort(key=lambda v: (v.line, v.col, v.code))
    return violations


def lint_file(
    path: str | Path,
    select: Iterable[str] | None = None,
    profile: str = "src",
    symbols: ProjectSymbolTable | None = None,
) -> list[LintViolation]:
    """Lint one file on disk."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, str(path), select=select, profile=profile, symbols=symbols)


def _iter_python_files(
    paths: Sequence[str | Path], exclude: Sequence[str] = ()
) -> list[Path]:
    files: list[Path] = []
    for item in paths:
        p = Path(item)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    if exclude:
        files = [
            f for f in files
            if not any(marker in f.as_posix() for marker in exclude)
        ]
    # De-duplicate while preserving order (a file may be reachable twice).
    seen: set[Path] = set()
    unique: list[Path] = []
    for f in files:
        r = f.resolve()
        if r not in seen:
            seen.add(r)
            unique.append(f)
    return unique


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    profile: str = "src",
    exclude: Sequence[str] = (),
) -> list[LintViolation]:
    """Lint every ``*.py`` file under the given files/directories.

    ``exclude`` drops files whose posix path contains any of the given
    substrings (e.g. ``tests/fixtures`` — lint fixtures violate rules on
    purpose). One cross-module symbol table is built over everything being
    linted (plus the installed ``repro`` package as fallback) and shared by
    all files, so ``from repro.x import y`` resolves precisely.
    """
    files = _iter_python_files(paths, exclude=exclude)
    symbols = ProjectSymbolTable.from_paths(files).with_package()
    violations: list[LintViolation] = []
    for f in files:
        violations.extend(
            lint_file(f, select=select, profile=profile, symbols=symbols)
        )
    return violations


def format_violations(violations: Sequence[LintViolation], statistics: bool = False) -> str:
    """Render violations in a ``file:line:col: CODE message`` listing."""
    lines = [v.format() for v in violations]
    if statistics and violations:
        counts: dict[str, int] = {}
        for v in violations:
            counts[v.code] = counts.get(v.code, 0) + 1
        lines.append("")
        for code in sorted(counts):
            lines.append(f"{counts[code]:5d}  {code}")
    return "\n".join(lines)


def to_sarif(violations: Sequence[LintViolation]) -> dict[str, object]:
    """Render violations as a SARIF 2.1.0 log (one run, tool=reprolint).

    The shape matches what ``github/codeql-action/upload-sarif`` expects,
    so CI can annotate pull requests with findings inline.
    """
    sarif_rules = [
        {
            "id": rule.code,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in ALL_RULES
    ]
    results = [
        {
            "ruleId": v.code,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(v.path).as_posix(),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": v.line,
                            "startColumn": v.col + 1,
                        },
                    }
                }
            ],
        }
        for v in violations
    ]
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "docs/analysis.md",
                        "rules": sarif_rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point shared by ``repro lint`` and ``python -m repro.analysis``.

    Exit status: 0 clean, 1 violations found, 2 usage error.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-specific static analysis (reprolint)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: the profile's rules)",
    )
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="src",
        help="rule profile: src (all rules) or tests (RPL000/101/102)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        dest="output_format",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--exclude", action="append", default=[], metavar="SUBSTRING",
        help="skip files whose path contains SUBSTRING (repeatable)",
    )
    parser.add_argument(
        "--statistics", action="store_true", help="append per-rule counts",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.summary}")
        return 0

    select = args.select.split(",") if args.select else None
    try:
        violations = lint_paths(
            args.paths, select=select, profile=args.profile, exclude=args.exclude
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.output_format == "json":
        report = json.dumps([v.__dict__ for v in violations], indent=2)
    elif args.output_format == "sarif":
        report = json.dumps(to_sarif(violations), indent=2)
    else:
        report = format_violations(violations, statistics=args.statistics)

    if args.output is not None:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    elif report and (violations or args.output_format != "text"):
        print(report)
    if violations:
        print(f"{len(violations)} violation(s) found", file=sys.stderr)
        return 1
    return 0
