"""Cross-module symbol table for the reprolint dataflow rules.

RPL101 (pickle-safety) must decide whether a name handed to a worker
boundary resolves to a **module-level definition** — the property CPython's
pickle actually requires of functions and classes. Within one module that
is a scope question; across modules it needs an import-resolving table:
``from repro.parallel.worker import run_shard`` is pickle-safe because
``worker.py`` defines ``run_shard`` at module level, and that fact lives in
a different file than the call site.

:class:`ProjectSymbolTable` parses every module it is given (plus, by
default, the installed ``repro`` package source), records each module's
top-level bindings, and resolves ``from repro.x import y`` chains
transitively within the project. Imports that leave the project (numpy,
stdlib) resolve to :data:`EXTERNAL` — assumed module-level, which keeps the
analysis sound in the "no false positives" direction.

The table is a pure read model: building it never imports project code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "EXTERNAL",
    "ModuleBindings",
    "ProjectSymbolTable",
    "Symbol",
]

#: Maximum ``from x import y`` hops followed when resolving a re-export.
_MAX_HOPS = 16


@dataclass(frozen=True)
class Symbol:
    """One resolved top-level binding."""

    #: Dotted module the binding was finally found in.
    module: str
    #: Binding name within that module.
    name: str
    #: ``"function"``, ``"class"``, ``"lambda"``, ``"assignment"``,
    #: ``"import"`` (an imported *module* object), or ``"external"``.
    kind: str
    #: Line of the definition (0 for external).
    line: int = 0

    @property
    def is_module_level_callable(self) -> bool:
        """Pickle-safe by reference: a def/class at module scope.

        Module-level ``lambda`` assignments are *not* pickle-safe — pickle
        serializes functions by qualified name, and a lambda's
        ``__qualname__`` is ``"<lambda>"``.
        """
        return self.kind in ("function", "class", "external")


#: Sentinel for names that resolve outside the project (assumed safe).
EXTERNAL = Symbol(module="<external>", name="<external>", kind="external")


@dataclass
class ModuleBindings:
    """Top-level bindings of one parsed module."""

    module: str
    path: str
    #: name -> ("function" | "class" | "lambda" | "assignment", line)
    defs: dict[str, tuple[str, int]]
    #: imported name -> (source module, original name); original name is
    #: ``""`` for ``import x``-style whole-module bindings.
    imports: dict[str, tuple[str, str]]


def _module_name_for(path: Path) -> str | None:
    """Dotted module name for ``path``, rooted at the ``repro`` package.

    ``.../src/repro/parallel/pool.py`` -> ``repro.parallel.pool``;
    files outside a ``repro`` package tree return ``None`` (they can be
    indexed but never imported-from by project code).
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return ".".join(parts[i:])
    return None


def _bind_module(module: str, path: str, tree: ast.Module) -> ModuleBindings:
    defs: dict[str, tuple[str, int]] = {}
    imports: dict[str, tuple[str, str]] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs[node.name] = ("function", node.lineno)
        elif isinstance(node, ast.ClassDef):
            defs[node.name] = ("class", node.lineno)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            kind = "lambda" if isinstance(value, ast.Lambda) else "assignment"
            for target in targets:
                if isinstance(target, ast.Name):
                    defs[target.id] = (kind, node.lineno)
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports are unused in this codebase
            for alias in node.names:
                imports[alias.asname or alias.name] = (node.module, alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                imports[bound] = (alias.name, "")
    return ModuleBindings(module=module, path=path, defs=defs, imports=imports)


class ProjectSymbolTable:
    """Top-level bindings of every project module, import-resolved.

    Build one with :meth:`from_paths` (optionally seeded with the
    installed ``repro`` package source via :meth:`with_package`) and query
    it with :meth:`resolve_import`.
    """

    def __init__(self) -> None:
        self._modules: dict[str, ModuleBindings] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_source(self, path: str | Path, source: str) -> None:
        """Index one module's source (ignored on syntax errors)."""
        p = Path(path)
        module = _module_name_for(p)
        if module is None:
            return
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            return
        self._modules[module] = _bind_module(module, str(path), tree)

    @classmethod
    def from_paths(cls, paths: list[Path]) -> "ProjectSymbolTable":
        table = cls()
        for path in paths:
            try:
                table.add_source(path, path.read_text(encoding="utf-8"))
            except OSError:
                continue
        return table

    def with_package(self) -> "ProjectSymbolTable":
        """Also index the importable ``repro`` package source, so linting
        ``tests/`` still resolves ``from repro.x import y`` precisely."""
        try:
            import repro

            root = Path(repro.__file__).parent
        except Exception:
            return self
        for path in sorted(root.rglob("*.py")):
            module = _module_name_for(path)
            if module is not None and module not in self._modules:
                try:
                    self.add_source(path, path.read_text(encoding="utf-8"))
                except OSError:
                    continue
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def module(self, dotted: str) -> ModuleBindings | None:
        """Bindings of ``dotted``, or None when outside the project."""
        return self._modules.get(dotted)

    def resolve_import(self, module: str, name: str) -> Symbol:
        """Resolve ``from <module> import <name>`` to its defining symbol.

        Follows re-export chains inside the project (``repro.parallel``'s
        ``__init__`` re-exporting ``pool.ShardSupervisor``). Anything that
        leaves the project resolves to :data:`EXTERNAL`.
        """
        current_module, current_name = module, name
        for _ in range(_MAX_HOPS):
            bindings = self._modules.get(current_module)
            if bindings is None:
                return EXTERNAL
            if current_name in bindings.defs:
                kind, line = bindings.defs[current_name]
                return Symbol(
                    module=current_module, name=current_name, kind=kind, line=line
                )
            if current_name in bindings.imports:
                source_module, original = bindings.imports[current_name]
                if original == "":
                    # ``import x`` whole-module binding.
                    return Symbol(
                        module=current_module, name=current_name, kind="import"
                    )
                current_module, current_name = source_module, original
                continue
            # ``from repro.pkg import submodule`` where the name is a module.
            if f"{current_module}.{current_name}" in self._modules:
                return Symbol(module=current_module, name=current_name, kind="import")
            return EXTERNAL
        return EXTERNAL
