"""Reaching-definition and value-origin analysis for reprolint.

The RPL1xx rules ask questions like "what does this argument *resolve
to*?" (RPL101: a lambda? a nested function? a module-level def?) and
"where does this seed *come from*?" (RPL103: a parameter? a
``SeedSequence``? a literal? the wall clock?). This module provides the
shared machinery: a scope tree with every binding a name can receive, and
a resolver that chases a name back through its definitions — within the
function, up the closure chain, to module scope, and across modules via
the :class:`~repro.analysis.symbols.ProjectSymbolTable`.

The analysis is *may*-style and deliberately biased against false
positives: a rule should flag only when **every** resolution of a name is
bad. Bindings the resolver cannot interpret (call results, subscripts,
``global`` names, attributes of unknown objects) resolve to
:data:`UNKNOWN`, which no rule flags.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from enum import Enum

from repro.analysis.symbols import ProjectSymbolTable, Symbol

__all__ = [
    "ATTRIBUTE",
    "Binding",
    "EXTERNAL_ORIGIN",
    "ModuleScopes",
    "Origin",
    "OriginKind",
    "PARAM",
    "Scope",
    "UNKNOWN",
    "build_scopes",
    "resolve_expr",
]

#: Recursion bound when chasing definitions through definitions.
_MAX_DEPTH = 8


class OriginKind(Enum):
    """What a value ultimately is, as far as the resolver can prove."""

    LAMBDA = "lambda"  # a lambda expression
    LOCAL_DEF = "local-def"  # def/class nested inside a function
    MODULE_DEF = "module-def"  # def/class at module scope
    PARAM = "param"  # a function parameter
    LITERAL = "literal"  # a compile-time constant
    TIME = "time"  # wall-clock derived (time.time, datetime.now, ...)
    SEED_DERIVED = "seed-derived"  # SeedSequence / ensure_rng / spawn products
    ATTRIBUTE = "attribute"  # obj.attr — instance/config state
    EXTERNAL = "external"  # resolves outside the project
    UNKNOWN = "unknown"  # anything the resolver will not vouch for


@dataclass(frozen=True)
class Origin:
    """One possible origin of a value."""

    kind: OriginKind
    #: The AST node that produced the value, when one exists.
    node: ast.AST | None = None
    #: Human-readable detail for messages ("lambda", "def shard_fn", ...).
    detail: str = ""


#: Shared origins for the kinds that need no node/detail payload.
UNKNOWN = Origin(OriginKind.UNKNOWN)
PARAM = Origin(OriginKind.PARAM)
ATTRIBUTE = Origin(OriginKind.ATTRIBUTE)
EXTERNAL_ORIGIN = Origin(OriginKind.EXTERNAL)


@dataclass(eq=False)
class Binding:
    """One way a name can be bound in a scope."""

    #: ``"param" | "def" | "class" | "assign" | "import" | "import-from" |
    #: ``"loop" | "with" | "except" | "global" | "arg-unpack"``
    kind: str
    #: Assigned value for ``assign`` bindings, defining node for defs.
    node: ast.AST | None = None
    #: For import bindings: (source module, original name) — original name
    #: is ``""`` for whole-module ``import x`` bindings.
    import_ref: tuple[str, str] | None = None


@dataclass
class Scope:
    """Bindings of one lexical scope (module, function, or class body)."""

    #: ``"module" | "function" | "class"``
    kind: str
    node: ast.AST | None
    parent: "Scope | None" = None
    bindings: dict[str, list[Binding]] = field(default_factory=dict)

    def bind(self, name: str, binding: Binding) -> None:
        self.bindings.setdefault(name, []).append(binding)

    def lookup(self, name: str) -> list[Binding]:
        """All bindings of ``name`` visible from this scope.

        Follows Python's closure rule: class scopes are skipped when
        resolving from a nested function.
        """
        scope: Scope | None = self
        first = True
        while scope is not None:
            if (first or scope.kind != "class") and name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
            first = False
        return []


@dataclass
class ModuleScopes:
    """The scope tree of one module, addressable by AST node."""

    module: Scope
    #: Function/class definition node -> its body scope.
    by_node: dict[ast.AST, Scope]

    def scope_of(self, node: ast.AST) -> Scope:
        return self.by_node.get(node, self.module)


def _bind_target(scope: Scope, target: ast.expr, binding: Binding) -> None:
    """Bind every plain name in an assignment target."""
    if isinstance(target, ast.Name):
        scope.bind(target.id, binding)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind_target(scope, element, Binding(kind="arg-unpack"))
    elif isinstance(target, ast.Starred):
        _bind_target(scope, target.value, Binding(kind="arg-unpack"))
    # Attribute / subscript targets bind no local name.


class _ScopeBuilder(ast.NodeVisitor):
    """One pass over the module collecting every binding per scope."""

    def __init__(self) -> None:
        self.module = Scope(kind="module", node=None)
        self.by_node: dict[ast.AST, Scope] = {}
        self._current = self.module

    # -- scope management ----------------------------------------------
    def _enter(self, node: ast.AST, kind: str) -> Scope:
        scope = Scope(kind=kind, node=node, parent=self._current)
        self.by_node[node] = scope
        return scope

    def _walk_in(self, scope: Scope, children: list[ast.AST]) -> None:
        saved, self._current = self._current, scope
        for child in children:
            self.visit(child)
        self._current = saved

    # -- definitions ----------------------------------------------------
    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._current.bind(node.name, Binding(kind="def", node=node))
        scope = self._enter(node, "function")
        a = node.args
        for param in (*a.posonlyargs, *a.args, *a.kwonlyargs):
            scope.bind(param.arg, Binding(kind="param"))
        if a.vararg is not None:
            scope.bind(a.vararg.arg, Binding(kind="param"))
        if a.kwarg is not None:
            scope.bind(a.kwarg.arg, Binding(kind="param"))
        # Decorators and defaults evaluate in the *enclosing* scope.
        for expr in (*node.decorator_list, *a.defaults, *a.kw_defaults):
            if expr is not None:
                self.visit(expr)
        self._walk_in(scope, list(node.body))

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._current.bind(node.name, Binding(kind="class", node=node))
        scope = self._enter(node, "class")
        for expr in (*node.decorator_list, *node.bases, *(kw.value for kw in node.keywords)):
            self.visit(expr)
        self._walk_in(scope, list(node.body))

    def visit_Lambda(self, node: ast.Lambda) -> None:
        scope = self._enter(node, "function")
        a = node.args
        for param in (*a.posonlyargs, *a.args, *a.kwonlyargs):
            scope.bind(param.arg, Binding(kind="param"))
        self._walk_in(scope, [node.body])

    # -- assignments and other binders ---------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            _bind_target(self._current, target, Binding(kind="assign", node=node.value))
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            _bind_target(self._current, node.target, Binding(kind="assign", node=node.value))
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        _bind_target(self._current, node.target, Binding(kind="assign", node=node.value))
        self.visit(node.value)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        _bind_target(self._current, node.target, Binding(kind="assign", node=node.value))
        self.visit(node.value)

    def visit_For(self, node: ast.For) -> None:
        _bind_target(self._current, node.target, Binding(kind="loop", node=node.iter))
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        _bind_target(self._current, node.target, Binding(kind="loop", node=node.iter))
        self.generic_visit(node)

    def visit_comprehension_scope(self, node: ast.AST) -> None:
        # Comprehension targets are folded into the enclosing scope as
        # opaque loop bindings — precise enough for may-analysis.
        for comp in getattr(node, "generators", []):
            _bind_target(self._current, comp.target, Binding(kind="loop", node=comp.iter))
        self.generic_visit(node)

    visit_ListComp = visit_comprehension_scope
    visit_SetComp = visit_comprehension_scope
    visit_DictComp = visit_comprehension_scope
    visit_GeneratorExp = visit_comprehension_scope

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                _bind_target(
                    self._current,
                    item.optional_vars,
                    Binding(kind="with", node=item.context_expr),
                )
        self.generic_visit(node)

    visit_AsyncWith = visit_With

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self._current.bind(node.name, Binding(kind="except"))
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            self._current.bind(
                bound, Binding(kind="import", import_ref=(alias.name, ""))
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            self._current.bind(
                alias.asname or alias.name,
                Binding(kind="import-from", import_ref=(module, alias.name)),
            )

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self._current.bind(name, Binding(kind="global"))

    visit_Nonlocal = visit_Global


def build_scopes(tree: ast.Module) -> ModuleScopes:
    """Build the scope tree of ``tree`` in one pass."""
    builder = _ScopeBuilder()
    for stmt in tree.body:
        builder.visit(stmt)
    return ModuleScopes(module=builder.module, by_node=builder.by_node)


# ----------------------------------------------------------------------
# Origin resolution
# ----------------------------------------------------------------------
_TIME_CALLS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
     "perf_counter_ns", "now", "utcnow", "getpid"}
)
_SEED_CALLS = frozenset(
    {"SeedSequence", "ensure_rng", "spawn", "generate_state", "default_rng"}
)
#: Identity-ish wrappers whose origin is their first argument's origin.
_TRANSPARENT_CALLS = frozenset({"int", "abs", "float", "hash"})


def _symbol_origin(symbol: Symbol) -> Origin:
    if symbol.kind in ("function", "class"):
        return Origin(
            OriginKind.MODULE_DEF,
            detail=f"{symbol.module}.{symbol.name}",
        )
    if symbol.kind == "lambda":
        return Origin(
            OriginKind.LAMBDA,
            detail=f"lambda assigned at module level in {symbol.module}",
        )
    if symbol.kind in ("import", "external"):
        return EXTERNAL_ORIGIN
    return UNKNOWN


def _call_origin(
    node: ast.Call,
    scope: Scope,
    symbols: ProjectSymbolTable | None,
    depth: int,
) -> set[Origin]:
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name in _TIME_CALLS:
        return {Origin(OriginKind.TIME, node=node, detail=f"{name}()")}
    if name in _SEED_CALLS:
        return {Origin(OriginKind.SEED_DERIVED, node=node, detail=f"{name}()")}
    if name in _TRANSPARENT_CALLS and node.args:
        return resolve_expr(node.args[0], scope, symbols, depth + 1)
    return {UNKNOWN}


def resolve_expr(
    expr: ast.expr,
    scope: Scope,
    symbols: ProjectSymbolTable | None = None,
    depth: int = 0,
) -> set[Origin]:
    """All origins ``expr`` may resolve to, seen from ``scope``.

    Returns ``{Origin.UNKNOWN}`` rather than guessing; rules must treat
    UNKNOWN as "cannot prove a violation".
    """
    if depth > _MAX_DEPTH:
        return {UNKNOWN}

    if isinstance(expr, ast.Lambda):
        return {Origin(OriginKind.LAMBDA, node=expr, detail="lambda")}
    if isinstance(expr, ast.Constant):
        return {Origin(OriginKind.LITERAL, node=expr, detail=repr(expr.value))}
    if isinstance(expr, ast.Attribute):
        return {ATTRIBUTE}
    if isinstance(expr, ast.Call):
        return _call_origin(expr, scope, symbols, depth)
    if isinstance(expr, (ast.BinOp, ast.UnaryOp)):
        operands = (
            [expr.left, expr.right] if isinstance(expr, ast.BinOp) else [expr.operand]
        )
        combined: set[Origin] = set()
        for operand in operands:
            combined |= resolve_expr(operand, scope, symbols, depth + 1)
        kinds = {origin.kind for origin in combined}
        if kinds <= {OriginKind.LITERAL}:
            return {Origin(OriginKind.LITERAL, node=expr, detail="literal arithmetic")}
        if OriginKind.TIME in kinds:
            return {o for o in combined if o.kind == OriginKind.TIME}
        return combined
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        combined = set()
        for element in expr.elts:
            if isinstance(element, ast.Starred):
                element = element.value
            combined |= resolve_expr(element, scope, symbols, depth + 1)
        return combined or {UNKNOWN}
    if isinstance(expr, ast.Starred):
        return resolve_expr(expr.value, scope, symbols, depth + 1)
    if isinstance(expr, ast.IfExp):
        return resolve_expr(expr.body, scope, symbols, depth + 1) | resolve_expr(
            expr.orelse, scope, symbols, depth + 1
        )
    if not isinstance(expr, ast.Name):
        return {UNKNOWN}

    # A name: union over everything it may be bound to.
    bindings = scope.lookup(expr.id)
    if not bindings:
        return {UNKNOWN}
    origins: set[Origin] = set()
    for binding in bindings:
        origins |= _binding_origin(expr.id, binding, scope, symbols, depth)
    return origins


def _binding_origin(
    name: str,
    binding: Binding,
    scope: Scope,
    symbols: ProjectSymbolTable | None,
    depth: int,
) -> set[Origin]:
    if binding.kind == "param":
        return {PARAM}
    if binding.kind in ("def", "class"):
        # Module-level (or class-body) defs pickle by qualified name;
        # defs nested inside a *function* are closures.
        defining = _defining_scope(name, binding, scope)
        if defining is not None and defining.kind == "function":
            label = "def" if binding.kind == "def" else "class"
            return {
                Origin(
                    OriginKind.LOCAL_DEF,
                    node=binding.node,
                    detail=f"{label} {name} (local to a function)",
                )
            }
        return {Origin(OriginKind.MODULE_DEF, node=binding.node, detail=name)}
    if binding.kind == "assign" and isinstance(binding.node, ast.expr):
        return resolve_expr(binding.node, scope, symbols, depth + 1)
    if binding.kind in ("import", "import-from"):
        if binding.import_ref is None:
            return {EXTERNAL_ORIGIN}
        module, original = binding.import_ref
        if binding.kind == "import" or original == "":
            return {EXTERNAL_ORIGIN}
        if symbols is None:
            return {EXTERNAL_ORIGIN}
        return {_symbol_origin(symbols.resolve_import(module, original))}
    return {UNKNOWN}


def _defining_scope(name: str, binding: Binding, scope: Scope) -> Scope | None:
    """The scope that actually holds ``binding`` for ``name``."""
    current: Scope | None = scope
    while current is not None:
        if binding in current.bindings.get(name, []):
            return current
        current = current.parent
    return None
