"""Per-function control-flow graphs for the reprolint dataflow rules.

The RPL1xx rule family (:mod:`repro.analysis.flowrules`) needs to reason
about *paths*, not just syntax: "is every ``push_site`` popped on all
paths, including the exceptional ones?" and "is this booking call
post-dominated by the residual re-booking?" are CFG questions. This
module builds a statement-granular CFG for each function (and for the
module body) with two kinds of edges:

* **normal edges** — ordinary fall-through, branch, and loop flow;
* **exception edges** — from every statement that could raise to the
  innermost enclosing handler/finally, or to the function's exceptional
  exit. The analysis is deliberately conservative: *any* statement other
  than ``pass``/``break``/``continue`` may raise, and an exception edge
  carries the state from *before* the statement's effect (a call that
  raises never performed its push/pop/booking).

``try/finally`` is modeled by the classic duplication trick: the
``finally`` suite is instantiated once per continuation (normal fall
through, exception re-raise, ``return``/``break``/``continue`` escape),
so a dataflow walk simply follows edges and sees the ``finally`` body on
every path — which is exactly what makes "the pop is provably inside a
``finally``" a reachability fact rather than a syntactic special case.

``with`` blocks get an exception edge from the body to the statement's
exceptional continuation (``__exit__`` runs, then the exception
propagates unless suppressed; for the pairing analysis the conservative
reading is that it propagates).

Two distinguished exit nodes terminate every function graph:
``exit_normal`` (fall-through and ``return``) and ``exit_raise``
(uncaught exceptions). Post-dominators are computed over normal edges
only — "post-dominated by a re-booking call" (RPL104) is a statement
about successful executions; the exceptional paths are the ledger's
problem, handled by RPL102.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

__all__ = ["CFG", "CFGNode", "FunctionCFG", "build_cfg", "iter_function_cfgs"]

#: Statements that can never raise on their own.
_NO_RAISE = (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)


@dataclass
class CFGNode:
    """One executable statement occurrence in the graph.

    The same ``ast`` statement may back several nodes when it lives in a
    duplicated ``finally`` suite; ``stmt`` identity therefore maps
    many-to-one onto source lines, which is fine for reporting.
    """

    index: int
    stmt: ast.stmt | None  # None for the synthetic entry/exit nodes
    label: str = ""

    @property
    def line(self) -> int:
        return self.stmt.lineno if self.stmt is not None else 0


@dataclass
class CFG:
    """A control-flow graph over :class:`CFGNode` indices."""

    nodes: list[CFGNode] = field(default_factory=list)
    #: Normal-flow successor sets.
    succ: dict[int, set[int]] = field(default_factory=dict)
    #: Exceptional successor sets (state-before-effect semantics).
    exc_succ: dict[int, set[int]] = field(default_factory=dict)
    entry: int = -1
    exit_normal: int = -1
    exit_raise: int = -1

    def _new_node(self, stmt: ast.stmt | None, label: str = "") -> int:
        index = len(self.nodes)
        self.nodes.append(CFGNode(index=index, stmt=stmt, label=label))
        self.succ[index] = set()
        self.exc_succ[index] = set()
        return index

    def _edge(self, src: int, dst: int) -> None:
        self.succ[src].add(dst)

    def _exc_edge(self, src: int, dst: int) -> None:
        self.exc_succ[src].add(dst)

    # ------------------------------------------------------------------
    def statement_nodes(self) -> Iterator[CFGNode]:
        """Every node that carries a real statement."""
        for node in self.nodes:
            if node.stmt is not None:
                yield node

    def postdominators(self) -> dict[int, set[int]]:
        """Post-dominator sets over **normal** edges.

        ``d in postdom[n]`` means every normal-flow path from ``n`` to
        ``exit_normal`` passes through ``d``. Nodes that cannot reach the
        normal exit (e.g. statements whose only continuation raises) get
        the full node set, the conventional bottom for unreachable-exit
        nodes — harmless for RPL104, which only queries nodes on booking
        paths.
        """
        all_nodes = set(range(len(self.nodes)))
        postdom: dict[int, set[int]] = {
            n: ({n} if n == self.exit_normal else set(all_nodes)) for n in all_nodes
        }
        changed = True
        while changed:
            changed = False
            for n in all_nodes:
                if n == self.exit_normal:
                    continue
                succs = self.succ[n]
                if succs:
                    new: set[int] = set.intersection(*(postdom[s] for s in succs))
                else:
                    new = set()
                new = new | {n}
                if new != postdom[n]:
                    postdom[n] = new
                    changed = True
        return postdom


@dataclass
class _Frame:
    """Where control escapes to from the suite being built."""

    #: Exceptional continuation (handler head, finally copy, or exit_raise).
    exc: int
    #: ``return`` continuation (exit_normal, or a finally copy chaining out).
    ret: int
    #: ``break`` / ``continue`` continuations (None outside loops).
    brk: int | None = None
    cont: int | None = None


def _can_raise(stmt: ast.stmt) -> bool:
    return not isinstance(stmt, _NO_RAISE)


class _Builder:
    """Recursive-descent CFG construction for one function body."""

    def __init__(self) -> None:
        self.cfg = CFG()
        self.cfg.entry = self.cfg._new_node(None, "entry")
        self.cfg.exit_normal = self.cfg._new_node(None, "exit")
        self.cfg.exit_raise = self.cfg._new_node(None, "raise-exit")

    def build(self, body: list[ast.stmt]) -> CFG:
        frame = _Frame(exc=self.cfg.exit_raise, ret=self.cfg.exit_normal)
        first = self._suite(body, self.cfg.exit_normal, frame)
        self.cfg._edge(self.cfg.entry, first)
        return self.cfg

    # ------------------------------------------------------------------
    def _suite(self, body: list[ast.stmt], follow: int, frame: _Frame) -> int:
        """Build ``body``; control continues to ``follow``. Returns the
        entry node of the suite (``follow`` itself for an empty suite)."""
        entry = follow
        for stmt in reversed(body):
            entry = self._statement(stmt, entry, frame)
        return entry

    def _statement(self, stmt: ast.stmt, follow: int, frame: _Frame) -> int:
        cfg = self.cfg
        if isinstance(stmt, (ast.If,)):
            node = cfg._new_node(stmt, "if")
            then_entry = self._suite(stmt.body, follow, frame)
            else_entry = self._suite(stmt.orelse, follow, frame)
            cfg._edge(node, then_entry)
            cfg._edge(node, else_entry)
            cfg._exc_edge(node, frame.exc)  # the test expression may raise
            return node

        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            node = cfg._new_node(stmt, "loop")
            else_entry = self._suite(stmt.orelse, follow, frame)
            loop_frame = _Frame(exc=frame.exc, ret=frame.ret, brk=follow, cont=node)
            body_entry = self._suite(stmt.body, node, loop_frame)
            cfg._edge(node, body_entry)  # take the loop
            cfg._edge(node, else_entry)  # exhaust / skip the loop
            cfg._exc_edge(node, frame.exc)
            return node

        if isinstance(stmt, ast.Try) or (hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)):
            return self._try(stmt, follow, frame)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = cfg._new_node(stmt, "with")
            body_frame = _Frame(exc=frame.exc, ret=frame.ret, brk=frame.brk, cont=frame.cont)
            body_entry = self._suite(stmt.body, follow, body_frame)
            cfg._edge(node, body_entry)
            cfg._exc_edge(node, frame.exc)
            return node

        if isinstance(stmt, ast.Return):
            node = cfg._new_node(stmt, "return")
            cfg._edge(node, frame.ret)
            cfg._exc_edge(node, frame.exc)  # the returned expression may raise
            return node

        if isinstance(stmt, ast.Raise):
            node = cfg._new_node(stmt, "raise")
            cfg._edge(node, frame.exc)  # normal successor IS the raise target
            cfg._exc_edge(node, frame.exc)
            return node

        if isinstance(stmt, ast.Break):
            node = cfg._new_node(stmt, "break")
            cfg._edge(node, frame.brk if frame.brk is not None else follow)
            return node

        if isinstance(stmt, ast.Continue):
            node = cfg._new_node(stmt, "continue")
            cfg._edge(node, frame.cont if frame.cont is not None else follow)
            return node

        if isinstance(stmt, ast.Match):
            node = cfg._new_node(stmt, "match")
            cfg._exc_edge(node, frame.exc)
            matched_any = False
            for case in stmt.cases:
                case_entry = self._suite(case.body, follow, frame)
                cfg._edge(node, case_entry)
                matched_any = True
            if not matched_any or not any(
                isinstance(c.pattern, ast.MatchAs) and c.pattern.pattern is None
                for c in stmt.cases
            ):
                cfg._edge(node, follow)  # no case matched
            return node

        # Simple statement (expression, assignment, assert, import, nested
        # def/class header, ...): one node, fall through; may raise.
        node = cfg._new_node(stmt, "stmt")
        cfg._edge(node, follow)
        if _can_raise(stmt):
            cfg._exc_edge(node, frame.exc)
        return node

    # ------------------------------------------------------------------
    def _try(self, stmt: "ast.Try | ast.TryStar", follow: int, frame: _Frame) -> int:
        """``try/except/else/finally`` with per-continuation finally copies."""
        cfg = self.cfg

        def finally_to(continuation: int, exc: int) -> int:
            """A fresh copy of the finally suite flowing to ``continuation``."""
            if not stmt.finalbody:
                return continuation
            inner = _Frame(exc=exc, ret=frame.ret, brk=frame.brk, cont=frame.cont)
            return self._suite(stmt.finalbody, continuation, inner)

        # Continuations as seen from inside the try statement. Everything
        # funnels through its own finally copy (if one exists).
        normal_out = finally_to(follow, frame.exc)
        exc_out = finally_to(frame.exc, frame.exc)  # finally, then re-raise
        ret_out = finally_to(frame.ret, frame.exc)
        brk_out = finally_to(frame.brk, frame.exc) if frame.brk is not None else None
        cont_out = finally_to(frame.cont, frame.exc) if frame.cont is not None else None

        # Handlers: an exception in the try body may land in any of them
        # (we cannot evaluate exception types statically); an exception
        # *inside* a handler propagates through the finally.
        handler_frame = _Frame(exc=exc_out, ret=ret_out, brk=brk_out, cont=cont_out)
        handler_entries = [
            self._suite(handler.body, normal_out, handler_frame)
            for handler in stmt.handlers
        ]
        # The body's exceptional continuation: every handler is possible,
        # and so is "no handler matched" (straight to finally + re-raise).
        if handler_entries:
            dispatch = cfg._new_node(None, "except-dispatch")
            for entry in handler_entries:
                cfg._edge(dispatch, entry)
            cfg._edge(dispatch, exc_out)
            body_exc = dispatch
        else:
            body_exc = exc_out

        else_entry = self._suite(stmt.orelse, normal_out, handler_frame)
        body_frame = _Frame(exc=body_exc, ret=ret_out, brk=brk_out, cont=cont_out)
        return self._suite(stmt.body, else_entry, body_frame)


def build_cfg(body: list[ast.stmt]) -> CFG:
    """Build the CFG of one statement suite (a function body or module)."""
    return _Builder().build(body)


@dataclass
class FunctionCFG:
    """A function (or module body) paired with its graph."""

    #: Qualified name for reporting (``"<module>"`` for the module body).
    name: str
    #: The defining node (``None`` for the module body).
    func: ast.FunctionDef | ast.AsyncFunctionDef | None
    cfg: CFG
    #: Parameter names visible in the body (empty for the module body).
    params: tuple[str, ...] = ()


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    a = func.args
    names = [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
    if a.vararg is not None:
        names.append(a.vararg.arg)
    if a.kwarg is not None:
        names.append(a.kwarg.arg)
    return tuple(names)


def iter_function_cfgs(tree: ast.Module) -> Iterator[FunctionCFG]:
    """Yield a :class:`FunctionCFG` for the module body and every function.

    Nested functions get their own graphs (their bodies are *not* part of
    the enclosing function's flow — they execute at call time).
    """
    yield FunctionCFG(name="<module>", func=None, cfg=build_cfg(tree.body))
    stack: list[tuple[str, ast.AST]] = [("", tree)]
    while stack:
        prefix, parent = stack.pop()
        for node in ast.iter_child_nodes(parent):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                yield FunctionCFG(
                    name=qual,
                    func=node,
                    cfg=build_cfg(node.body),
                    params=_param_names(node),
                )
                stack.append((f"{qual}.", node))
            elif isinstance(node, ast.ClassDef):
                stack.append((f"{prefix}{node.name}.", node))
            elif isinstance(node, (ast.Lambda,)):
                continue
            else:
                stack.append((prefix, node))
