"""CURE (Guha, Rastogi & Shim, SIGMOD 1998) — vector-space comparator.

Section 2: "CURE is a sampling-based hierarchical clustering algorithm that
is able to discover clusters of arbitrary shapes. However, it relies on
vector operations and therefore cannot cluster data in a distance space."
We implement it as the second coordinate-space baseline (next to BIRCH): it
demonstrates concretely *which* vector operations (means, coordinate
shrinking of representatives) a distance space denies — the very operations
BUBBLE's clustroid machinery replaces.
"""

from repro.cure.cure import CURE

__all__ = ["CURE"]
