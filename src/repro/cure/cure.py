"""CURE: hierarchical clustering with scattered, shrunken representatives.

The algorithm (on a random sample when the dataset is large):

1. start with singleton clusters;
2. repeatedly merge the pair of clusters with the smallest distance, where
   cluster distance is the minimum distance between their *representative
   points*;
3. a cluster's representatives are up to ``c`` well-scattered members
   (farthest-point selection) shrunk toward the cluster mean by a factor
   ``alpha`` — scattering captures non-spherical extent, shrinking damps
   outliers;
4. stop at ``n_clusters``; label every (non-sample) point by its nearest
   representative.

Note the reliance on coordinate arithmetic in steps 3 (mean, interpolation
toward it) — this is what bars CURE from distance spaces and why the paper
had to invent clustroid-based representatives instead.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_integer, check_positive

__all__ = ["CURE"]


class _Cluster:
    __slots__ = ("points", "mean", "reps")

    def __init__(self, points: np.ndarray, n_reps: int, shrink: float):
        self.points = points
        self.mean = points.mean(axis=0)
        self.reps = _scattered_reps(points, self.mean, n_reps, shrink)


def _scattered_reps(points: np.ndarray, mean: np.ndarray, c: int, alpha: float) -> np.ndarray:
    """Up to ``c`` farthest-point-selected members, shrunk toward the mean."""
    n = len(points)
    if n <= c:
        chosen = points
    else:
        picked = [int(np.argmax(((points - mean) ** 2).sum(axis=1)))]
        min_d2 = ((points - points[picked[0]]) ** 2).sum(axis=1)
        for _ in range(c - 1):
            nxt = int(np.argmax(min_d2))
            picked.append(nxt)
            d2 = ((points - points[nxt]) ** 2).sum(axis=1)
            np.minimum(min_d2, d2, out=min_d2)
        chosen = points[picked]
    return chosen + alpha * (mean - chosen)


def _min_rep_distance(a: np.ndarray, b: np.ndarray) -> float:
    d2 = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
    return float(np.sqrt(d2.min()))


class CURE:
    """CURE clustering of n-dimensional vectors.

    Parameters
    ----------
    n_clusters:
        Target number of clusters.
    n_representatives:
        Scattered representatives per cluster (the paper's ``c``; 10 is the
        authors' default).
    shrink_factor:
        Fraction ``alpha`` by which representatives move toward the mean
        (the authors suggest 0.2–0.7).
    sample_size:
        Hierarchically cluster only a random sample of this size (CURE's
        scalability device); ``None`` clusters all points.
    seed:
        Seed/generator for sampling.

    Attributes
    ----------
    labels_:
        Cluster index per input point.
    representatives_:
        List of ``(c_i, dim)`` arrays, one per final cluster.
    means_:
        ``(n_clusters, dim)`` cluster means.
    """

    def __init__(
        self,
        n_clusters: int,
        n_representatives: int = 10,
        shrink_factor: float = 0.3,
        sample_size: int | None = None,
        seed=None,
    ):
        self.n_clusters = check_integer(n_clusters, "n_clusters", minimum=1)
        self.n_representatives = check_integer(
            n_representatives, "n_representatives", minimum=1
        )
        self.shrink_factor = check_positive(shrink_factor, "shrink_factor", allow_zero=True)
        if self.shrink_factor >= 1.0:
            raise ParameterError(
                f"shrink_factor must be in [0, 1), got {shrink_factor}"
            )
        if sample_size is not None:
            sample_size = check_integer(sample_size, "sample_size", minimum=1)
        self.sample_size = sample_size
        self._rng = ensure_rng(seed)
        self.labels_: np.ndarray | None = None
        self.representatives_: list[np.ndarray] | None = None
        self.means_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, points: Sequence) -> "CURE":
        data = np.asarray(points, dtype=np.float64)
        if data.ndim != 2 or len(data) == 0:
            raise EmptyDatasetError("CURE.fit requires a non-empty 2-d point array")
        n = len(data)
        if self.n_clusters > n:
            raise ParameterError(f"n_clusters={self.n_clusters} exceeds dataset size {n}")

        if self.sample_size is not None and self.sample_size < n:
            sample_idx = self._rng.choice(n, size=max(self.sample_size, self.n_clusters), replace=False)
            sample = data[sample_idx]
        else:
            sample = data

        clusters = [
            _Cluster(sample[i : i + 1], self.n_representatives, self.shrink_factor)
            for i in range(len(sample))
        ]
        # Pairwise cluster distances over representatives.
        m = len(clusters)
        dist = np.full((m, m), np.inf)
        for i in range(m):
            for j in range(i + 1, m):
                d = _min_rep_distance(clusters[i].reps, clusters[j].reps)
                dist[i, j] = dist[j, i] = d

        active = np.ones(m, dtype=bool)
        remaining = m
        while remaining > self.n_clusters:
            masked = np.where(active[:, None] & active[None, :], dist, np.inf)
            flat = int(np.argmin(masked))
            i, j = divmod(flat, m)
            if not np.isfinite(masked[i, j]):
                break
            merged = _Cluster(
                np.vstack([clusters[i].points, clusters[j].points]),
                self.n_representatives,
                self.shrink_factor,
            )
            clusters[i] = merged
            active[j] = False
            remaining -= 1
            for k in range(m):
                if k != i and active[k]:
                    d = _min_rep_distance(merged.reps, clusters[k].reps)
                    dist[i, k] = dist[k, i] = d
            dist[j, :] = np.inf
            dist[:, j] = np.inf

        final = [clusters[i] for i in np.flatnonzero(active)]
        self.representatives_ = [c.reps for c in final]
        self.means_ = np.vstack([c.mean for c in final])

        # Label every input point by its nearest representative.
        all_reps = np.vstack(self.representatives_)
        owner = np.concatenate(
            [np.full(len(c.reps), idx, dtype=np.intp) for idx, c in enumerate(final)]
        )
        x_sq = np.einsum("ij,ij->i", data, data)
        r_sq = np.einsum("ij,ij->i", all_reps, all_reps)
        d2 = x_sq[:, None] + r_sq[None, :] - 2.0 * (data @ all_reps.T)
        self.labels_ = owner[np.argmin(d2, axis=1)]
        return self

    @property
    def n_clusters_(self) -> int:
        if self.representatives_ is None:
            raise NotFittedError("CURE has not been fitted")
        return len(self.representatives_)
