"""Property-based tests: every shipped metric satisfies the metric axioms
the paper's algorithms assume (non-negativity, identity, symmetry, triangle
inequality)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    ChebyshevDistance,
    DamerauLevenshteinDistance,
    EditDistance,
    EuclideanDistance,
    JaccardDistance,
    ManhattanDistance,
    MinkowskiDistance,
    RelativeEditDistance,
)

vectors = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=3, max_size=3
).map(np.asarray)

words = st.text(alphabet="abcdef ,.", min_size=0, max_size=12)

small_sets = st.frozensets(st.integers(min_value=0, max_value=9), max_size=6)

VECTOR_METRICS = [EuclideanDistance(), ManhattanDistance(), ChebyshevDistance(), MinkowskiDistance(3)]
STRING_METRICS = [EditDistance(), DamerauLevenshteinDistance(), RelativeEditDistance()]


def assert_metric_axioms(metric, a, b, c, tol=1e-9):
    dab = metric.distance(a, b)
    dba = metric.distance(b, a)
    dac = metric.distance(a, c)
    dbc = metric.distance(b, c)
    assert dab >= 0
    assert dab == dba
    # Triangle inequality with float slack.
    assert dab <= dac + dbc + tol
    daa = metric.distance(a, a)
    assert daa <= tol


class TestVectorMetricAxioms:
    @given(a=vectors, b=vectors, c=vectors)
    @settings(max_examples=150, deadline=None)
    def test_axioms(self, a, b, c):
        for metric in VECTOR_METRICS:
            assert_metric_axioms(metric, a, b, c, tol=1e-6)

    @given(a=vectors, b=vectors)
    @settings(max_examples=100, deadline=None)
    def test_batch_equals_scalar(self, a, b):
        for metric in VECTOR_METRICS:
            batch = metric.one_to_many(a, [b, a])
            assert np.isclose(batch[0], metric.distance(a, b), rtol=1e-9, atol=1e-12)
            assert batch[1] <= 1e-9


class TestStringMetricAxioms:
    @given(a=words, b=words, c=words)
    @settings(max_examples=150, deadline=None)
    def test_axioms(self, a, b, c):
        for metric in STRING_METRICS[:2]:  # edit + damerau (integral)
            assert_metric_axioms(metric, a, b, c)

    @given(a=words, b=words)
    @settings(max_examples=100, deadline=None)
    def test_edit_distance_bounds(self, a, b):
        d = EditDistance().distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(a=words, b=words)
    @settings(max_examples=100, deadline=None)
    def test_relative_in_unit_interval(self, a, b):
        assert 0.0 <= RelativeEditDistance().distance(a, b) <= 1.0

    @given(a=words, b=words)
    @settings(max_examples=100, deadline=None)
    def test_damerau_never_exceeds_levenshtein(self, a, b):
        assert (
            DamerauLevenshteinDistance().distance(a, b)
            <= EditDistance().distance(a, b)
        )


class TestJaccardAxioms:
    @given(a=small_sets, b=small_sets, c=small_sets)
    @settings(max_examples=150, deadline=None)
    def test_axioms(self, a, b, c):
        assert_metric_axioms(JaccardDistance(), a, b, c)
