"""Unit tests for the synthetic vector dataset generators."""

import numpy as np
import pytest

from repro.datasets import make_cell_dataset, make_ds1, make_ds2
from repro.exceptions import ParameterError


class TestDS1:
    def test_shapes(self):
        ds = make_ds1(n_points=1000, grid_side=5, seed=0)
        assert ds.points.shape == (1000, 2)
        assert ds.labels.shape == (1000,)
        assert ds.centers.shape == (25, 2)
        assert ds.n_clusters == 25

    def test_centers_on_grid(self):
        ds = make_ds1(n_points=100, grid_side=3, spacing=6.0, seed=0)
        xs = np.unique(ds.centers[:, 0])
        np.testing.assert_allclose(xs, [0.0, 6.0, 12.0])

    def test_points_near_their_center(self):
        ds = make_ds1(n_points=2000, grid_side=4, spacing=10.0, std=0.5, seed=1)
        dists = np.linalg.norm(ds.points - ds.centers[ds.labels], axis=1)
        assert np.percentile(dists, 99) < 2.5  # ~5 sigma

    def test_deterministic(self):
        a = make_ds1(n_points=500, seed=7)
        b = make_ds1(n_points=500, seed=7)
        np.testing.assert_array_equal(a.points, b.points)

    def test_balanced_cluster_sizes(self):
        ds = make_ds1(n_points=1003, grid_side=10, seed=0)
        counts = np.bincount(ds.labels, minlength=100)
        assert counts.min() >= 10
        assert counts.max() <= 11

    def test_rejects_bad_grid(self):
        with pytest.raises(ParameterError):
            make_ds1(grid_side=0)


class TestDS2:
    def test_centers_trace_sine(self):
        ds = make_ds2(n_points=100, n_clusters=50, amplitude=20.0, seed=0)
        assert np.abs(ds.centers[:, 1]).max() <= 20.0 + 1e-9
        assert ds.centers[:, 0].min() == 0.0
        assert ds.centers[:, 0].max() == pytest.approx(600.0)

    def test_wave_oscillates(self):
        ds = make_ds2(n_points=100, n_clusters=100, seed=0)
        y = ds.centers[:, 1]
        assert (y > 15).any() and (y < -15).any()

    def test_shuffled_preserves_content(self):
        ds = make_ds2(n_points=300, n_clusters=10, seed=0)
        sh = ds.shuffled(seed=1)
        assert sorted(map(tuple, sh.points.tolist())) == sorted(
            map(tuple, ds.points.tolist())
        )
        # labels permuted consistently with points
        lookup = {tuple(p): l for p, l in zip(ds.points.tolist(), ds.labels.tolist())}
        for p, l in zip(sh.points.tolist(), sh.labels.tolist()):
            assert lookup[tuple(p)] == l

    def test_rejects_bad_clusters(self):
        with pytest.raises(ParameterError):
            make_ds2(n_clusters=0)


class TestCellDataset:
    def test_name_convention(self):
        ds = make_cell_dataset(dim=5, n_clusters=8, n_points=400, seed=0)
        assert ds.name == "DS5d.8c.400"

    def test_shapes(self):
        ds = make_cell_dataset(dim=5, n_clusters=8, n_points=400, seed=0)
        assert ds.points.shape == (400, 5)
        assert ds.centers.shape == (8, 5)
        assert ds.dim == 5

    def test_points_within_radius_of_center(self):
        ds = make_cell_dataset(dim=4, n_clusters=6, n_points=600, seed=1)
        dists = np.linalg.norm(ds.points - ds.centers[ds.labels], axis=1)
        assert dists.max() <= 1.0 + 1e-9  # radius drawn from [0.5, 1.0]

    def test_centers_in_distinct_cells(self):
        ds = make_cell_dataset(dim=3, n_clusters=8, n_points=80, seed=2)
        cells = {tuple((c // 5.0).astype(int)) for c in ds.centers}
        assert len(cells) == 8  # 2^3 cells, all 8 used

    def test_centers_inside_box(self):
        ds = make_cell_dataset(dim=6, n_clusters=10, n_points=100, seed=3)
        assert ds.centers.min() >= 0.0
        assert ds.centers.max() <= 10.0

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            make_cell_dataset(dim=0)
        with pytest.raises(ParameterError):
            make_cell_dataset(n_clusters=0)
        with pytest.raises(ParameterError):
            make_cell_dataset(radius_range=(1.0, 0.5))

    def test_deterministic(self):
        a = make_cell_dataset(dim=3, n_clusters=4, n_points=100, seed=9)
        b = make_cell_dataset(dim=3, n_clusters=4, n_points=100, seed=9)
        np.testing.assert_array_equal(a.points, b.points)

    def test_as_objects(self):
        ds = make_cell_dataset(dim=2, n_clusters=2, n_points=10, seed=0)
        objs = ds.as_objects()
        assert len(objs) == 10
        assert objs[0].shape == (2,)
