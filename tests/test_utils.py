"""Unit tests for shared utilities."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.utils import (
    check_integer,
    check_positive,
    check_probability,
    ensure_rng,
    reservoir_sample,
    sample_without_replacement,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_reproducible(self):
        a = ensure_rng(7).integers(0, 1000, size=5)
        b = ensure_rng(7).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g


class TestSampling:
    def test_sample_without_replacement_distinct(self):
        items = list(range(100))
        out = sample_without_replacement(items, 10, seed=0)
        assert len(out) == 10
        assert len(set(out)) == 10

    def test_sample_more_than_available_returns_all(self):
        out = sample_without_replacement([1, 2, 3], 10, seed=0)
        assert sorted(out) == [1, 2, 3]

    def test_sample_arbitrary_objects(self):
        items = ["a", ("b",), 3.0]
        out = sample_without_replacement(items, 2, seed=0)
        assert len(out) == 2
        assert all(o in items for o in out)

    def test_reservoir_size(self):
        out = reservoir_sample(iter(range(1000)), 10, seed=0)
        assert len(out) == 10
        assert all(0 <= x < 1000 for x in out)

    def test_reservoir_short_stream(self):
        assert sorted(reservoir_sample(iter([1, 2]), 5, seed=0)) == [1, 2]

    def test_reservoir_roughly_uniform(self):
        hits = np.zeros(20)
        for seed in range(400):
            for x in reservoir_sample(iter(range(20)), 5, seed=seed):
                hits[x] += 1
        # Each item expected 100 times; allow generous slack.
        assert hits.min() > 50
        assert hits.max() < 160


class TestValidation:
    def test_check_integer(self):
        assert check_integer(5, "x") == 5
        assert check_integer(np.int64(5), "x") == 5

    def test_check_integer_rejects(self):
        for bad in (1.5, "3", True):
            with pytest.raises(ParameterError):
                check_integer(bad, "x")
        with pytest.raises(ParameterError):
            check_integer(2, "x", minimum=3)

    def test_check_positive(self):
        assert check_positive(0.5, "x") == 0.5
        assert check_positive(0, "x", allow_zero=True) == 0.0

    def test_check_positive_rejects(self):
        with pytest.raises(ParameterError):
            check_positive(0, "x")
        with pytest.raises(ParameterError):
            check_positive(-1, "x", allow_zero=True)
        with pytest.raises(ParameterError):
            check_positive(True, "x")

    def test_check_probability(self):
        assert check_probability(0.0, "x") == 0.0
        assert check_probability(1.0, "x") == 1.0
        with pytest.raises(ParameterError):
            check_probability(1.1, "x")
        with pytest.raises(ParameterError):
            check_probability(-0.1, "x")
