"""Unit tests for the unified metric-index layer (:mod:`repro.index`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preclusterer import BUBBLE
from repro.exceptions import (
    EmptyDatasetError,
    NotFittedError,
    ParameterError,
    StaleIndexError,
)
from repro.index import (
    CFTreeIndex,
    NeighborHeap,
    QueryBoundCache,
    available_backends,
    make_index,
)
from repro.metrics import EditDistance, EuclideanDistance
from repro.persistence import load_checkpoint, save_checkpoint


def _points(n=40, seed=0, dim=3):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=dim) for _ in range(n)]


def _fit_bubble(objects, metric=None):
    metric = metric if metric is not None else EuclideanDistance()
    return BUBBLE(
        metric,
        threshold=0.0,
        max_nodes=None,
        branching_factor=4,
        sample_size=8,
        representation_number=4,
        seed=0,
    ).fit(objects)


class TestQueryBoundCache:
    def test_put_get_and_lru_eviction(self):
        cache = QueryBoundCache(maxsize=2)
        cache.put("q", 0, 1.0)
        cache.put("q", 1, 2.0)
        assert cache.get("q", 0) == 1.0  # refreshes 0's recency
        cache.put("q", 2, 3.0)  # evicts ("q", 1)
        assert cache.get("q", 1) is None
        assert cache.get("q", 0) == 1.0
        assert cache.n_evictions == 1
        assert len(cache) == 2

    def test_hit_miss_counters_and_rate(self):
        cache = QueryBoundCache()
        assert cache.hit_rate == 0.0
        cache.put("q", 0, 1.5)
        assert cache.get("q", 0) == 1.5
        assert cache.get("q", 9) is None
        doc = cache.as_dict()
        assert doc["hits"] == 1 and doc["misses"] == 1
        assert doc["hit_rate"] == 0.5

    def test_unhashable_key_bypasses(self):
        cache = QueryBoundCache()
        # Tuples holding ndarrays hash-fail -> key_for signals bypass.
        assert cache.key_for((np.zeros(2), np.ones(2))) is None
        assert cache.key_for("abc") == "abc"
        key = cache.key_for(np.zeros(2))
        assert key is not None  # ndarrays key by (dtype, shape, bytes)

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ParameterError):
            QueryBoundCache(maxsize=0)


class TestNeighborHeap:
    def test_keeps_k_best_with_lowest_index_ties(self):
        heap = NeighborHeap(2)
        heap.offer(5, 1.0)
        heap.offer(3, 1.0)
        heap.offer(9, 0.5)
        assert heap.items() == [(0.5, 9), (1.0, 3)]
        assert heap.tau == 1.0

    def test_offer_is_idempotent_per_index(self):
        heap = NeighborHeap(3)
        heap.offer(1, 2.0)
        heap.offer(1, 2.0)
        heap.offer(2, 1.0)
        assert heap.items() == [(1.0, 2), (2.0, 1)]

    def test_tau_infinite_until_full(self):
        heap = NeighborHeap(2)
        assert heap.tau == np.inf
        heap.offer(0, 1.0)
        assert heap.tau == np.inf
        heap.offer(1, 3.0)
        assert heap.tau == 3.0


class TestRegistry:
    def test_all_backends_registered(self):
        assert set(available_backends()) >= {"brute", "cftree", "mtree", "vptree"}

    def test_make_index_builds_queryable_backend(self):
        for backend in ("brute", "mtree", "vptree"):
            index = make_index(backend, EuclideanDistance())
            index.build(_points(12))
            assert len(index) == 12
            assert index.nearest(np.zeros(3)).neighbors

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError, match="unknown index backend"):
            make_index("kd-tree", EuclideanDistance())

    def test_non_metric_rejected(self):
        with pytest.raises(ParameterError, match="DistanceFunction"):
            make_index("brute", object())  # type: ignore[arg-type]


class TestQueryResult:
    def test_as_dict_and_sequence_protocol(self):
        index = make_index("brute", EuclideanDistance())
        index.build(_points(10))
        result = index.nearest(np.zeros(3), k=3)
        assert len(result) == 3
        assert [n.index for n in result] == result.indices
        doc = result.as_dict()
        assert doc["kind"] == "knn"
        assert doc["n_candidates"] == 10
        assert doc["n_evaluated"] + doc["n_pruned"] == 10
        assert doc["neighbors"] == [(n.index, n.distance) for n in result]

    def test_invalid_query_parameters(self):
        index = make_index("brute", EuclideanDistance())
        index.build(_points(5))
        with pytest.raises(ParameterError):
            index.nearest(np.zeros(3), k=0)
        with pytest.raises(ParameterError):
            index.within(np.zeros(3), -1.0)


class TestRepeatedQueriesAreFree:
    def test_second_identical_query_costs_zero(self):
        index = make_index("vptree", EuclideanDistance(), seed=0)
        index.build(_points(30))
        query = np.full(3, 0.25)
        first = index.nearest(query, k=3)
        second = index.nearest(query, k=3)
        assert first.n_calls > 0
        assert second.n_calls == 0
        assert second.cache_hits > 0
        assert [(n.distance, n.index) for n in second] == [
            (n.distance, n.index) for n in first
        ]

    def test_shared_cache_across_backends(self):
        cache = QueryBoundCache()
        objects = _points(20, seed=3)
        brute = make_index("brute", EuclideanDistance(), bound_cache=cache)
        brute.build(objects)
        vp = make_index("vptree", EuclideanDistance(), seed=0, bound_cache=cache)
        vp.build(objects)
        query = np.zeros(3)
        brute.nearest(query, k=2)  # pays for all 20 distances
        result = vp.nearest(query, k=2)
        assert result.n_calls == 0  # vp-tree serves entirely from the cache


class TestCFTreeIndex:
    def test_from_tree_queries_match_brute(self):
        metric = EuclideanDistance()
        model = _fit_bubble(_points(60, seed=1), metric)
        index = CFTreeIndex.from_tree(model.tree_, metric=metric)
        query = np.zeros(3)
        row = metric.one_to_many(query, list(index.objects))
        expected = sorted((float(v), i) for i, v in enumerate(row))[:4]
        got = [(n.distance, n.index) for n in index.nearest(query, k=4)]
        assert got == expected

    def test_stale_after_tree_mutation(self):
        model = _fit_bubble(_points(30, seed=2))
        index = CFTreeIndex.from_tree(model.tree_)
        index.nearest(np.zeros(3))  # fine while fresh
        model.tree_.insert(np.full(3, 50.0))
        with pytest.raises(StaleIndexError):
            index.nearest(np.zeros(3))

    def test_empty_tree_rejected(self):
        metric = EuclideanDistance()
        model = BUBBLE(metric, threshold=0.0, max_nodes=None, seed=0)
        with pytest.raises((EmptyDatasetError, NotFittedError)):
            model.index()

    def test_build_grows_private_tree(self):
        index = make_index("cftree", EuclideanDistance())
        index.build(_points(25, seed=4))
        result = index.nearest(np.zeros(3), k=2)
        assert result.neighbors
        assert index.stats.build_calls > 0

    def test_model_index_accessor(self):
        model = _fit_bubble(_points(40, seed=5))
        index = model.index()
        assert index.backend == "cftree"
        assert len(index) == len(model.clustroids_)
        mt = model.index(backend="mtree")
        assert mt.backend == "mtree"
        assert len(mt) == len(model.clustroids_)


class TestCheckpointRoundTrip:
    def test_restored_checkpoint_serves_queries(self, tmp_path):
        metric = EuclideanDistance()
        model = _fit_bubble(_points(50, seed=6), metric)
        path = tmp_path / "scan.ckpt"
        save_checkpoint(path, model.tree_, cursor=50)
        fresh_metric = EuclideanDistance()
        ck = load_checkpoint(path, fresh_metric)
        index = ck.index()
        # Leaf geometry travels in the pickle: building the index costs
        # only the non-leaf anchor gathers, far below one brute scan.
        assert index.stats.build_calls < len(index)
        query = np.zeros(3)
        row = fresh_metric.one_to_many(query, list(index.objects))
        expected = sorted((float(v), i) for i, v in enumerate(row))[:3]
        assert [(n.distance, n.index) for n in index.nearest(query, k=3)] == expected

    def test_restored_index_stats_flow(self, tmp_path):
        metric = EuclideanDistance()
        model = _fit_bubble(_points(30, seed=7), metric)
        path = tmp_path / "scan.ckpt"
        save_checkpoint(path, model.tree_, cursor=30)
        ck = load_checkpoint(path, EuclideanDistance())
        index = ck.index()
        index.nearest(np.zeros(3), k=2)
        doc = index.stats.as_dict()
        assert doc["n_queries"] == 1 and doc["n_knn"] == 1
        assert doc["query_calls"] == doc["last_query_calls"] > 0


class TestStatsSnapshotIntegration:
    def test_apply_index_embeds_query_counters(self):
        from repro.observability.stats import StatsSnapshot

        metric = EuclideanDistance()
        model = _fit_bubble(_points(40, seed=8), metric)
        index = model.index()
        index.nearest(np.zeros(3), k=2)
        index.within(np.zeros(3), 1.0)
        snapshot = StatsSnapshot.from_tree(model.tree_, metric=metric)
        snapshot.apply_index(index)
        assert snapshot.query is not None
        assert snapshot.query["n_queries"] == 2
        assert snapshot.query["backend"] == "cftree"
        assert snapshot.query["bound_cache"]["misses"] >= 0
        text = snapshot.format()
        assert "queries served" in text
        assert "query NCD" in text


class TestStringBackends:
    def test_edit_distance_queries_exact(self):
        words = ["cat", "cot", "dog", "dogs", "cart", "", "act"]
        metric = EditDistance()
        expected_row = metric.one_to_many("cat", words)
        expected = sorted((float(v), i) for i, v in enumerate(expected_row))
        for backend in ("brute", "mtree", "vptree"):
            index = make_index(backend, EditDistance())
            index.build(words)
            got = [(n.distance, n.index) for n in index.nearest("cat", k=3)]
            assert got == expected[:3], backend
            within = index.within("cat", 1.0)
            assert [(n.distance, n.index) for n in within] == [
                (v, i) for v, i in expected if v <= 1.0
            ], backend
