"""Property-based tests for the dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import make_authority_dataset, make_cell_dataset, make_ds1, make_ds2


class TestVectorGeneratorProperties:
    @given(
        n_points=st.integers(min_value=10, max_value=400),
        n_clusters=st.integers(min_value=1, max_value=12),
        dim=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_cell_dataset_contract(self, n_points, n_clusters, dim, seed):
        n_clusters = min(n_clusters, 2**dim)  # cells must exist
        ds = make_cell_dataset(
            dim=dim, n_clusters=n_clusters, n_points=max(n_points, n_clusters), seed=seed
        )
        assert ds.points.shape == (max(n_points, n_clusters), dim)
        assert ds.labels.min() >= 0
        assert ds.labels.max() == n_clusters - 1
        # Every point within its cluster's maximum radius.
        dists = np.linalg.norm(ds.points - ds.centers[ds.labels], axis=1)
        assert dists.max() <= 1.0 + 1e-9
        # Every cluster is populated.
        assert len(np.unique(ds.labels)) == n_clusters

    @given(
        n_points=st.integers(min_value=10, max_value=300),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_ds1_balanced_and_labeled(self, n_points, seed):
        ds = make_ds1(n_points=n_points, grid_side=3, seed=seed)
        counts = np.bincount(ds.labels, minlength=9)
        assert counts.max() - counts.min() <= 1
        assert ds.points.shape == (n_points, 2)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_ds2_shuffle_is_permutation(self, seed):
        ds = make_ds2(n_points=120, n_clusters=6, seed=0)
        sh = ds.shuffled(seed=seed)
        assert sorted(map(tuple, sh.points.tolist())) == sorted(
            map(tuple, ds.points.tolist())
        )


class TestStringGeneratorProperties:
    @given(
        n_classes=st.integers(min_value=1, max_value=40),
        extra=st.integers(min_value=0, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_authority_dataset_contract(self, n_classes, extra, seed):
        n_strings = n_classes + extra
        ds = make_authority_dataset(
            n_classes=n_classes, n_strings=n_strings, seed=seed
        )
        assert ds.n_strings == n_strings
        assert set(ds.labels.tolist()) == set(range(n_classes))
        # Every record string belongs to its labeled class's variant list.
        for s, lab in zip(ds.strings, ds.labels):
            assert s in ds.variants[int(lab)]
        # Variant lists are disjoint across classes.
        seen: set[str] = set()
        for forms in ds.variants:
            for v in forms:
                assert v not in seen
                seen.add(v)
