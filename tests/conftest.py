"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import EuclideanDistance


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def euclidean():
    return EuclideanDistance()


@pytest.fixture
def blob_data(rng):
    """Five well-separated 2-d Gaussian blobs with ground-truth labels."""
    centers = np.array(
        [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0], [5.0, 5.0]]
    )
    points, labels = [], []
    for i, c in enumerate(centers):
        pts = c + 0.3 * rng.normal(size=(60, 2))
        points.extend(pts)
        labels.extend([i] * len(pts))
    order = rng.permutation(len(points))
    points = [points[i] for i in order]
    labels = np.asarray(labels)[order]
    return points, labels, centers


@pytest.fixture
def audit():
    """Run the full CF*-tree invariant sanitizer, failing the test on errors.

    Usage: ``report = audit(tree)`` — returns the :class:`AuditReport` so
    tests can additionally inspect warnings.
    """
    from repro.analysis.audit import audit_tree

    def _audit(tree, **kwargs):
        kwargs.setdefault("raise_on_error", True)
        return audit_tree(tree, **kwargs)

    return _audit


@pytest.fixture
def tiny_strings():
    """A handful of author-name variants in three classes."""
    return (
        [
            "powell, allison l.",
            "powell, a. l.",
            "powell allison l.",
            "french, james c.",
            "french, j. c.",
            "frnech, james c.",
            "ganti, venkatesh",
            "ganti, v.",
        ],
        np.array([0, 0, 0, 1, 1, 1, 2, 2]),
    )
