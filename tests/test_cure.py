"""Unit tests for the CURE comparator."""

import numpy as np
import pytest

from repro.cure import CURE
from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError


class TestValidation:
    def test_params(self):
        with pytest.raises(ParameterError):
            CURE(0)
        with pytest.raises(ParameterError):
            CURE(2, n_representatives=0)
        with pytest.raises(ParameterError):
            CURE(2, shrink_factor=1.0)
        with pytest.raises(ParameterError):
            CURE(2, sample_size=0)

    def test_empty(self):
        with pytest.raises(EmptyDatasetError):
            CURE(2).fit(np.zeros((0, 2)))

    def test_too_many_clusters(self):
        with pytest.raises(ParameterError):
            CURE(5).fit(np.zeros((3, 2)))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            _ = CURE(2).n_clusters_


class TestClustering:
    def test_recovers_blobs(self, blob_data):
        points, truth, centers = blob_data
        model = CURE(5, seed=0).fit(np.vstack(points))
        assert model.n_clusters_ == 5
        for c in centers:
            assert np.min(np.linalg.norm(model.means_ - c, axis=1)) < 1.0

    def test_labels_partition(self, blob_data):
        points, truth, _ = blob_data
        model = CURE(5, seed=0).fit(np.vstack(points))
        assert model.labels_.shape == (len(points),)
        from repro.evaluation import adjusted_rand_index

        assert adjusted_rand_index(truth, model.labels_) > 0.95

    def test_elongated_cluster_single(self):
        """CURE's raison d'etre: scattered representatives follow elongated
        shapes that a single centroid cannot cover."""
        rng = np.random.default_rng(0)
        line = np.column_stack([np.linspace(0, 20, 200), 0.1 * rng.normal(size=200)])
        blob = np.array([10.0, 15.0]) + 0.3 * rng.normal(size=(100, 2))
        data = np.vstack([line, blob])
        model = CURE(2, n_representatives=10, shrink_factor=0.2, seed=0).fit(data)
        labels_line = set(model.labels_[:200].tolist())
        labels_blob = set(model.labels_[200:].tolist())
        assert len(labels_line) == 1
        assert len(labels_blob) == 1
        assert labels_line != labels_blob

    def test_sampling_path(self, blob_data):
        points, truth, _ = blob_data
        model = CURE(5, sample_size=80, seed=0).fit(np.vstack(points))
        from repro.evaluation import adjusted_rand_index

        assert adjusted_rand_index(truth, model.labels_) > 0.9

    def test_representative_count_bounded(self, blob_data):
        points, _, _ = blob_data
        model = CURE(5, n_representatives=4, seed=0).fit(np.vstack(points))
        for reps in model.representatives_:
            assert 1 <= len(reps) <= 4

    def test_shrink_zero_reps_are_members_when_small(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0], [11.0, 0.0]])
        model = CURE(2, n_representatives=2, shrink_factor=0.0, seed=0).fit(pts)
        all_reps = np.vstack(model.representatives_)
        for rep in all_reps:
            assert any(np.allclose(rep, p) for p in pts)

    def test_n_clusters_one(self, blob_data):
        points, _, _ = blob_data
        model = CURE(1, seed=0).fit(np.vstack(points))
        assert model.n_clusters_ == 1
        assert np.all(model.labels_ == 0)
