"""Focused unit tests for internal helpers that the integration paths only
exercise indirectly."""

import numpy as np
import pytest

from repro.core.cftree import CFTree
from repro.exceptions import ParameterError
from repro.metrics import EuclideanDistance, TaggedMetric
from repro.metrics.vector import as_matrix


class TestPartitionBySeeds:
    def partition(self, dm):
        return CFTree._partition_by_seeds(np.asarray(dm, dtype=float))

    def test_two_items(self):
        a, b = self.partition([[0, 5], [5, 0]])
        assert sorted(a + b) == [0, 1]
        assert len(a) == len(b) == 1

    def test_two_obvious_groups(self):
        # Items 0,1 close together; 2,3 close together; groups far apart.
        dm = np.array(
            [
                [0.0, 1.0, 10.0, 11.0],
                [1.0, 0.0, 9.0, 10.0],
                [10.0, 9.0, 0.0, 1.0],
                [11.0, 10.0, 1.0, 0.0],
            ]
        )
        a, b = self.partition(dm)
        groups = {frozenset(a), frozenset(b)}
        assert groups == {frozenset({0, 1}), frozenset({2, 3})}

    def test_all_zero_distances_split_by_position(self):
        a, b = self.partition(np.zeros((4, 4)))
        assert sorted(a + b) == [0, 1, 2, 3]
        assert len(a) == 2 and len(b) == 2

    def test_every_index_assigned_exactly_once(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(9, 2))
        dm = EuclideanDistance().pairwise(list(pts))
        a, b = self.partition(dm)
        assert sorted(a + b) == list(range(9))


class TestAsMatrix:
    def test_list_of_arrays(self):
        out = as_matrix([np.zeros(3), np.ones(3)])
        assert out.shape == (2, 3)

    def test_existing_matrix(self):
        m = np.arange(6, dtype=float).reshape(2, 3)
        out = as_matrix(m)
        assert out.shape == (2, 3)

    def test_list_of_tuples(self):
        assert as_matrix([(1, 2), (3, 4)]).shape == (2, 2)

    def test_rejects_3d(self):
        from repro.exceptions import MetricError

        with pytest.raises(MetricError):
            as_matrix(np.zeros((2, 2, 2)))


class TestTaggedMetric:
    def test_measures_second_component(self):
        inner = EuclideanDistance()
        m = TaggedMetric(inner)
        d = m.distance((0, np.zeros(2)), (1, np.array([3.0, 4.0])))
        assert d == pytest.approx(5.0)

    def test_counting_delegates(self):
        inner = EuclideanDistance()
        m = TaggedMetric(inner)
        m.distance((0, np.zeros(2)), (1, np.ones(2)))
        m.one_to_many((0, np.zeros(2)), [(1, np.ones(2)), (2, np.zeros(2))])
        assert m.n_calls == inner.n_calls == 3
        m.reset_counter()
        assert inner.n_calls == 0

    def test_rejects_non_metric(self):
        with pytest.raises(ParameterError):
            TaggedMetric("x")


class TestAsciiHeightGrowth:
    def test_height_grows_logarithmically_with_entries(self):
        """B-bounded nodes: #leaf entries <= B^height."""
        from repro.core.bubble import BubblePolicy

        metric = EuclideanDistance()
        policy = BubblePolicy(metric, representation_number=4, sample_size=8, seed=0)
        tree = CFTree(policy, branching_factor=4, threshold=0.0, seed=0)
        rng = np.random.default_rng(1)
        for _ in range(500):
            tree.insert(rng.uniform(0, 1000, size=2))
        assert tree.n_clusters <= 4**tree.height


class TestReportHelpers:
    def test_results_fmt_large_small(self):
        from repro.experiments.results import _fmt

        assert _fmt(0.5) == "0.5"
        assert _fmt(1.23456789e9) == "1.235e+09"
        assert _fmt(1e-9) == "1.000e-09"
        assert _fmt("text") == "text"
        assert _fmt(0.0) == "0"
