"""Unit tests for BubblePolicy and BubbleFMPolicy: sampling, routing,
refresh behaviour, FastMap fallback."""

import numpy as np
import pytest

from repro.core.bubble import BubblePolicy
from repro.core.bubble_fm import BubbleFMPolicy
from repro.core.cftree import CFTree
from repro.core.features import object_to_set_distance
from repro.exceptions import ParameterError
from repro.metrics import EuclideanDistance


def grown_tree(policy_cls=BubblePolicy, n_points=120, branching_factor=4, **kw):
    metric = EuclideanDistance()
    policy = policy_cls(metric, representation_number=4, sample_size=12, seed=0, **kw)
    tree = CFTree(policy, branching_factor=branching_factor, threshold=0.0, seed=0)
    rng = np.random.default_rng(0)
    for _ in range(n_points):
        tree.insert(rng.uniform(0, 100, size=2))
    return tree, policy, metric


class TestBubblePolicy:
    def test_rejects_non_metric(self):
        with pytest.raises(ParameterError):
            BubblePolicy("euclidean")

    def test_param_validation(self):
        m = EuclideanDistance()
        with pytest.raises(ParameterError):
            BubblePolicy(m, representation_number=1)
        with pytest.raises(ParameterError):
            BubblePolicy(m, sample_size=0)

    def test_every_entry_has_samples_after_growth(self):
        tree, policy, _ = grown_tree()
        assert tree.height >= 2
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            for entry in node.entries:
                assert entry.summary, "non-leaf entry without samples"
                stack.append(entry.child)

    def test_sample_quota_at_least_one_per_child(self):
        tree, policy, _ = grown_tree()
        node = tree.root
        if node.is_leaf:
            pytest.skip("tree did not grow")
        for entry in node.entries:
            assert len(entry.summary) >= 1

    def test_node_samples_bounded_by_sample_size_plus_children(self):
        tree, policy, _ = grown_tree()
        node = tree.root
        if node.is_leaf:
            pytest.skip("tree did not grow")
        total = sum(len(e.summary) for e in node.entries)
        # The MAX(..., 1) floor can push the total slightly above SS.
        assert total <= policy.sample_size + len(node.entries)

    def test_samples_come_from_subtree(self):
        tree, policy, _ = grown_tree()
        node = tree.root
        if node.is_leaf:
            pytest.skip("tree did not grow")
        for entry in node.entries:
            # Collect the subtree's clustroids (as tuples) and check samples
            # are among them or among deeper sample unions.
            pool = set()
            stack = [entry.child]
            while stack:
                child = stack.pop()
                if child.is_leaf:
                    pool.update(tuple(np.asarray(f.clustroid)) for f in child.entries)
                else:
                    stack.extend(e.child for e in child.entries)
            for s in entry.summary:
                assert tuple(np.asarray(s)) in pool

    def test_routing_matches_d2_definition(self):
        tree, policy, metric = grown_tree(prune=False)
        node = tree.root
        if node.is_leaf:
            pytest.skip("tree did not grow")
        obj = np.array([50.0, 50.0])
        dists = policy.nonleaf_distances(node, obj)
        expected = [
            object_to_set_distance(metric, obj, entry.summary) for entry in node.entries
        ]
        np.testing.assert_allclose(dists, expected, rtol=1e-9)

    def test_pruned_routing_picks_same_entry(self):
        # The pruned path may report +inf for pruned entries, but the
        # selected entry (argmin) must match exhaustive D2 exactly.
        tree, policy, metric = grown_tree()
        node = tree.root
        if node.is_leaf:
            pytest.skip("tree did not grow")
        rng = np.random.default_rng(7)
        for _ in range(10):
            obj = rng.uniform(0, 100, size=2)
            dists = policy.nonleaf_distances(node, obj)
            expected = [
                object_to_set_distance(metric, obj, e.summary) for e in node.entries
            ]
            assert int(np.argmin(dists)) == int(np.argmin(expected))
            i = int(np.argmin(dists))
            assert dists[i] == pytest.approx(expected[i], rel=1e-9)

    def test_leaf_entry_matrix_matches_pairwise(self):
        tree, policy, metric = grown_tree()
        leaf = next(iter(tree.leaves()))
        if len(leaf.entries) < 2:
            pytest.skip("need at least two leaf entries")
        dm = policy.leaf_entry_matrix(leaf.entries)
        d01 = policy.leaf_entry_distance(leaf.entries[0], leaf.entries[1])
        assert dm[0, 1] == pytest.approx(d01)


class TestBubbleFMPolicy:
    def test_param_validation(self):
        m = EuclideanDistance()
        with pytest.raises(ParameterError):
            BubbleFMPolicy(m, image_dim=0)
        with pytest.raises(ParameterError):
            BubbleFMPolicy(m, fm_iterations=0)

    def test_builds_image_spaces(self):
        tree, policy, _ = grown_tree(BubbleFMPolicy, image_dim=2)
        assert policy.n_fastmap_fits > 0
        node = tree.root
        if node.is_leaf:
            pytest.skip("tree did not grow")
        assert node.aux.mapper is not None
        assert node.aux.centroids.shape == (len(node.entries), 2)

    def test_fallback_with_few_samples(self):
        # image_dim so large that 2k exceeds any node's sample count.
        tree, policy, metric = grown_tree(BubbleFMPolicy, image_dim=50, prune=False)
        node = tree.root
        if node.is_leaf:
            pytest.skip("tree did not grow")
        assert node.aux.mapper is None
        # Fallback routing must equal plain BUBBLE's D2 routing.
        obj = np.array([10.0, 10.0])
        dists = policy.nonleaf_distances(node, obj)
        expected = [
            object_to_set_distance(metric, obj, e.summary) for e in node.entries
        ]
        np.testing.assert_allclose(dists, expected, rtol=1e-9)

    def test_fallback_pruned_routing_picks_same_entry(self):
        # With pruning on, the fallback may report +inf for pruned entries,
        # but the selected entry (argmin) must match exhaustive D2 exactly.
        tree, policy, metric = grown_tree(BubbleFMPolicy, image_dim=50)
        node = tree.root
        if node.is_leaf:
            pytest.skip("tree did not grow")
        assert node.aux.mapper is None
        rng = np.random.default_rng(5)
        for _ in range(10):
            obj = rng.uniform(0, 100, size=2)
            dists = policy.nonleaf_distances(node, obj)
            expected = [
                object_to_set_distance(metric, obj, e.summary) for e in node.entries
            ]
            assert int(np.argmin(dists)) == int(np.argmin(expected))
            i = int(np.argmin(dists))
            assert dists[i] == pytest.approx(expected[i], rel=1e-9)

    def test_fm_routing_costs_2k_calls(self):
        tree, policy, metric = grown_tree(BubbleFMPolicy, image_dim=2)
        node = tree.root
        if node.is_leaf or node.aux.mapper is None:
            pytest.skip("no image space at root")
        before = metric.n_calls
        policy.nonleaf_distances(node, np.array([1.0, 2.0]))
        assert metric.n_calls - before == 2 * policy.image_dim

    def test_fm_routing_approximates_d2_ordering(self):
        tree, policy, metric = grown_tree(BubbleFMPolicy, image_dim=2)
        node = tree.root
        if node.is_leaf or node.aux.mapper is None:
            pytest.skip("no image space at root")
        rng = np.random.default_rng(1)
        agree = 0
        trials = 20
        for _ in range(trials):
            obj = rng.uniform(0, 100, size=2)
            fm_choice = int(np.argmin(policy.nonleaf_distances(node, obj)))
            d2 = [object_to_set_distance(metric, obj, e.summary) for e in node.entries]
            if fm_choice == int(np.argmin(d2)):
                agree += 1
        # Approximate routing: most, not necessarily all, choices agree.
        assert agree >= trials * 0.6

    def test_entry_distances_euclidean_when_mapped(self):
        tree, policy, metric = grown_tree(BubbleFMPolicy, image_dim=2)
        node = tree.root
        if node.is_leaf or node.aux.mapper is None:
            pytest.skip("no image space at root")
        before = metric.n_calls
        dm = policy.nonleaf_entry_distances(node)
        assert metric.n_calls == before  # zero calls to d
        assert dm.shape == (len(node.entries), len(node.entries))
        np.testing.assert_allclose(dm, dm.T)
