"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import stream_strings, stream_vectors


class TestGenerate:
    def test_vectors(self, tmp_path, capsys):
        out = tmp_path / "pts.csv"
        labels = tmp_path / "labels.txt"
        code = main([
            "generate", "cell", str(out), "--labels", str(labels),
            "--n-points", "200", "--n-clusters", "4", "--dim", "3",
        ])
        assert code == 0
        pts = list(stream_vectors(out))
        assert len(pts) == 200
        assert pts[0].shape == (3,)
        labs = labels.read_text().splitlines()
        assert len(labs) == 200
        assert set(map(int, labs)) == {0, 1, 2, 3}

    def test_strings(self, tmp_path):
        out = tmp_path / "records.txt"
        code = main([
            "generate", "strings", str(out),
            "--n-points", "100", "--n-clusters", "10",
        ])
        assert code == 0
        assert len(list(stream_strings(out))) == 100

    @pytest.mark.parametrize("name", ["ds1", "ds2"])
    def test_paper_datasets(self, tmp_path, name):
        out = tmp_path / "pts.csv"
        assert main(["generate", name, str(out), "--n-points", "300"]) == 0
        assert len(list(stream_vectors(out))) == 300


class TestCluster:
    def test_vectors_roundtrip(self, tmp_path, capsys):
        data = tmp_path / "pts.csv"
        main(["generate", "cell", str(data), "--n-points", "300",
              "--n-clusters", "3", "--dim", "2"])
        labels_file = tmp_path / "labels.txt"
        code = main([
            "cluster", str(data), "--type", "vectors",
            "--n-clusters", "3", "--max-nodes", "10",
            "--output", str(labels_file),
        ])
        assert code == 0
        labels = [int(x) for x in labels_file.read_text().splitlines()]
        assert len(labels) == 300
        assert set(labels) == {0, 1, 2}
        assert "sub-clusters" in capsys.readouterr().out

    def test_strings_with_bubble_fm(self, tmp_path):
        data = tmp_path / "records.txt"
        main(["generate", "strings", str(data), "--n-points", "80",
              "--n-clusters", "8"])
        code = main([
            "cluster", str(data), "--type", "strings",
            "--algorithm", "bubble-fm", "--threshold", "2.0",
            "--n-clusters", "8",
        ])
        assert code == 0

    def test_unknown_metric_fails(self, tmp_path, capsys):
        data = tmp_path / "pts.csv"
        main(["generate", "cell", str(data), "--n-points", "50",
              "--n-clusters", "2", "--dim", "2"])
        code = main(["cluster", str(data), "--type", "vectors",
                     "--metric", "cosine"])
        assert code == 2
        assert "unknown vector metric" in capsys.readouterr().err

    def test_empty_input_fails(self, tmp_path, capsys):
        data = tmp_path / "empty.csv"
        data.write_text("")
        assert main(["cluster", str(data), "--type", "vectors"]) == 2


class TestAuthority:
    def test_builds_file(self, tmp_path, capsys):
        data = tmp_path / "records.txt"
        main(["generate", "strings", str(data), "--n-points", "120",
              "--n-clusters", "12"])
        out = tmp_path / "authority.tsv"
        code = main(["authority", str(data), str(out), "--threshold", "2.0"])
        assert code == 0
        lines = out.read_text().splitlines()
        assert lines
        for line in lines:
            canonical, member = line.split("\t")
            assert canonical and member
        assert "classes" in capsys.readouterr().out

    def test_empty_input_fails(self, tmp_path):
        data = tmp_path / "empty.txt"
        data.write_text("")
        assert main(["authority", str(data), str(tmp_path / "o.tsv")]) == 2


class TestMisc:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestEvaluate:
    def test_scores_labels(self, tmp_path, capsys):
        data = tmp_path / "pts.csv"
        labels = tmp_path / "truth.txt"
        main(["generate", "cell", str(data), "--labels", str(labels),
              "--n-points", "200", "--n-clusters", "4", "--dim", "2"])
        pred = tmp_path / "pred.txt"
        main(["cluster", str(data), "--type", "vectors", "--n-clusters", "4",
              "--max-nodes", "10", "--output", str(pred)])
        capsys.readouterr()
        code = main(["evaluate", str(pred), str(labels)])
        out = capsys.readouterr().out
        assert code == 0
        assert "adjusted Rand index" in out
        assert "misplaced objects" in out

    def test_perfect_labels(self, tmp_path, capsys):
        truth = tmp_path / "t.txt"
        truth.write_text("0\n0\n1\n1\n")
        code = main(["evaluate", str(truth), str(truth)])
        out = capsys.readouterr().out
        assert code == 0
        assert "adjusted Rand index: 1.0000" in out

    def test_length_mismatch(self, tmp_path, capsys):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        a.write_text("0\n1\n")
        b.write_text("0\n")
        assert main(["evaluate", str(a), str(b)]) == 2


class TestLogging:
    def test_rebuilds_logged_at_debug(self, tmp_path, caplog):
        import logging
        import numpy as np
        from repro import BUBBLE
        from repro.metrics import EuclideanDistance

        rng = np.random.default_rng(0)
        with caplog.at_level(logging.DEBUG, logger="repro.cftree"):
            BUBBLE(EuclideanDistance(), max_nodes=6, seed=0).fit(
                list(rng.uniform(0, 100, size=(400, 2)))
            )
        assert any("rebuild #" in r.message for r in caplog.records)


class TestAuditVerb:
    def _make_checkpoint(self, tmp_path):
        from repro import BUBBLE
        from repro.metrics import EuclideanDistance
        from repro.persistence import save_checkpoint

        rng = np.random.default_rng(4)
        model = BUBBLE(EuclideanDistance(), max_nodes=15, seed=4)
        model.partial_fit(list(rng.normal(size=(200, 2))))
        path = tmp_path / "scan.ckpt"
        save_checkpoint(path, model.tree_, cursor=200)
        return path, model

    def test_clean_checkpoint_exits_zero(self, tmp_path, capsys):
        path, _ = self._make_checkpoint(tmp_path)
        assert main(["audit", str(path), "--type", "vectors"]) == 0
        out = capsys.readouterr().out
        assert "audit:" in out
        assert "0 error(s)" in out

    def test_corrupt_checkpoint_exits_one(self, tmp_path, capsys):
        from repro.persistence import save_checkpoint

        path, model = self._make_checkpoint(tmp_path)
        model.tree_.leaf_features()[0].n += 7  # break object-count accounting
        save_checkpoint(path, model.tree_, cursor=200)
        assert main(["audit", str(path), "--type", "vectors"]) == 1
        out = capsys.readouterr().out
        assert "error" in out

    def test_missing_checkpoint_exits_two(self, tmp_path, capsys):
        assert main(["audit", str(tmp_path / "nope.ckpt"), "--type", "vectors"]) == 2

    def test_lint_verb_dispatch(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text('"""Doc."""\n\n__all__ = ["X"]\n\nX = 1\n')
        assert main(["lint", str(clean)]) == 0

    def test_truncated_pickle_exits_two(self, tmp_path, capsys):
        path, _ = self._make_checkpoint(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # simulate a torn write
        assert main(["audit", str(path), "--type", "vectors"]) == 2
        assert "error:" in capsys.readouterr().err


class TestStatsVerb:
    def _make_checkpoint(self, tmp_path):
        from repro import BUBBLE
        from repro.metrics import EuclideanDistance
        from repro.persistence import save_checkpoint

        rng = np.random.default_rng(4)
        model = BUBBLE(EuclideanDistance(), max_nodes=15, seed=4)
        model.partial_fit(list(rng.normal(size=(200, 2))))
        path = tmp_path / "scan.ckpt"
        save_checkpoint(path, model.tree_, cursor=200)
        return path, model

    def test_clean_checkpoint_prints_table(self, tmp_path, capsys):
        path, model = self._make_checkpoint(tmp_path)
        assert main(["stats", str(path), "--type", "vectors"]) == 0
        out = capsys.readouterr().out
        assert "cursor 200" in out
        assert "sub-clusters" in out
        assert "M-pressure" in out
        import re

        assert re.search(rf"^nodes\s+{model.tree_.n_nodes}$", out, re.MULTILINE)

    def test_json_output_round_trips(self, tmp_path, capsys):
        import json

        path, model = self._make_checkpoint(tmp_path)
        assert main(["stats", str(path), "--type", "vectors", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["cursor"] == 200
        assert doc["n_objects"] == 200
        assert doc["n_nodes"] == model.tree_.n_nodes
        assert doc["max_nodes"] == 15

    def test_truncated_pickle_exits_two(self, tmp_path, capsys):
        path, _ = self._make_checkpoint(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert main(["stats", str(path), "--type", "vectors"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_garbage_bytes_exit_two(self, tmp_path, capsys):
        path = tmp_path / "scan.ckpt"
        path.write_bytes(b"not a pickle at all")
        assert main(["stats", str(path), "--type", "vectors"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_checkpoint_exits_two(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.ckpt"), "--type", "vectors"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_metric_exits_two(self, tmp_path, capsys):
        path, _ = self._make_checkpoint(tmp_path)
        assert main(["stats", str(path), "--type", "vectors", "--metric", "cosine"]) == 2


class TestTraceOption:
    def test_cluster_trace_writes_jsonl_and_summary(self, tmp_path, capsys):
        import json

        data = tmp_path / "pts.csv"
        main(["generate", "cell", str(data), "--n-points", "200",
              "--n-clusters", "3", "--dim", "2"])
        trace = tmp_path / "trace.jsonl"
        capsys.readouterr()
        code = main([
            "cluster", str(data), "--type", "vectors",
            "--n-clusters", "3", "--max-nodes", "10",
            "--trace", str(trace),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "--- trace summary ---" in out
        assert "NCD by site" in out
        assert f"trace written to {trace}" in out
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        assert events[-1]["ev"] == "summary"
        by_site = events[-1]["ncd_by_site"]
        assert sum(by_site.values()) == events[-1]["ncd_total"] > 0
        assert "leaf-d0" in by_site
        assert any(e["ev"] == "enter" and e["span"] == "insert" for e in events)
        assert any(e["ev"] == "enter" and e["span"] == "redistribute" for e in events)

    def test_trace_with_checkpoint_keeps_checkpoint_loadable(self, tmp_path, capsys):
        # A live tracer holds an open trace-file handle; the checkpoint
        # pickler must strip it or mid-scan snapshots would crash.
        data = tmp_path / "pts.csv"
        main(["generate", "cell", str(data), "--n-points", "300",
              "--n-clusters", "3", "--dim", "2"])
        trace = tmp_path / "trace.jsonl"
        ckpt = tmp_path / "scan.ckpt"
        code = main([
            "cluster", str(data), "--type", "vectors",
            "--n-clusters", "3", "--max-nodes", "10",
            "--trace", str(trace), "--checkpoint", str(ckpt),
            "--checkpoint-every", "100",
        ])
        assert code == 0
        capsys.readouterr()
        assert main(["stats", str(ckpt), "--type", "vectors"]) == 0
        assert "distance calls" in capsys.readouterr().out

    def test_authority_trace_writes_jsonl_and_summary(self, tmp_path, capsys):
        import json

        data = tmp_path / "records.txt"
        main(["generate", "strings", str(data), "--n-points", "60",
              "--n-clusters", "6"])
        trace = tmp_path / "trace.jsonl"
        capsys.readouterr()
        code = main([
            "authority", str(data), str(tmp_path / "authority.tsv"),
            "--threshold", "2.0", "--trace", str(trace),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "--- trace summary ---" in out
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        assert events[-1]["ev"] == "summary"
        assert sum(events[-1]["ncd_by_site"].values()) == events[-1]["ncd_total"] > 0
        assert any(e["ev"] == "enter" and e["span"] == "global-phase" for e in events)
