"""Unit tests for the BUBBLE leaf-level CF*: clustroid, RowSum,
representatives, radius, Type I/II maintenance."""

import numpy as np
import pytest

from repro.core.features import (
    BubbleClusterFeature,
    SubCluster,
    average_inter_cluster_distance,
    object_to_set_distance,
)
from repro.exceptions import ParameterError
from repro.metrics import EuclideanDistance, FunctionDistance


def brute_force_clustroid(metric, objects):
    """Reference implementation of Definition 4.1."""
    best, best_rowsum = None, np.inf
    for o in objects:
        rowsum = sum(metric._distance(o, x) ** 2 for x in objects)
        if rowsum < best_rowsum:
            best, best_rowsum = o, rowsum
    return best, best_rowsum


class TestExactMode:
    def test_single_object(self, euclidean):
        f = BubbleClusterFeature(euclidean, np.array([1.0, 2.0]))
        assert f.n == 1
        assert f.radius == 0.0
        np.testing.assert_allclose(f.clustroid, [1.0, 2.0])

    def test_clustroid_matches_brute_force_while_exact(self, euclidean):
        rng = np.random.default_rng(0)
        objs = list(rng.normal(size=(8, 2)))
        f = BubbleClusterFeature(euclidean, objs[0], representation_number=10)
        for o in objs[1:]:
            f.absorb(o)
        assert f.exact
        expected, expected_rowsum = brute_force_clustroid(euclidean, objs)
        np.testing.assert_allclose(f.clustroid, expected)
        # Radius definition 4.3: sqrt(RowSum(clustroid) / n).
        assert f.radius == pytest.approx(np.sqrt(expected_rowsum / len(objs)))

    def test_rowsums_exact(self, euclidean):
        objs = [np.array([0.0]), np.array([1.0]), np.array([3.0])]
        f = BubbleClusterFeature(euclidean, objs[0])
        f.absorb(objs[1])
        f.absorb(objs[2])
        # RowSum(0)=1+9=10, RowSum(1)=1+4=5, RowSum(3)=9+4=13.
        assert sorted(f.rowsums) == pytest.approx([5.0, 10.0, 13.0])
        np.testing.assert_allclose(f.clustroid, [1.0])

    def test_representation_number_validation(self, euclidean):
        with pytest.raises(ParameterError):
            BubbleClusterFeature(euclidean, np.zeros(1), representation_number=3)
        with pytest.raises(ParameterError):
            BubbleClusterFeature(euclidean, np.zeros(1), representation_number=0)


class TestHeuristicMode:
    def test_switches_after_cap(self, euclidean):
        f = BubbleClusterFeature(euclidean, np.zeros(2), representation_number=4)
        rng = np.random.default_rng(1)
        for _ in range(10):
            f.absorb(rng.normal(size=2) * 0.1)
        assert not f.exact
        assert len(f.representatives) == 4
        assert f.n == 11

    def test_clustroid_stays_near_center_of_dense_cluster(self, euclidean):
        rng = np.random.default_rng(2)
        center = np.array([5.0, 5.0])
        f = BubbleClusterFeature(euclidean, center + 0.1 * rng.normal(size=2))
        for _ in range(200):
            f.absorb(center + 0.1 * rng.normal(size=2))
        assert np.linalg.norm(np.asarray(f.clustroid) - center) < 0.2
        assert f.radius == pytest.approx(0.14, abs=0.08)

    def test_nearest_and_peripheral_split(self, euclidean):
        f = BubbleClusterFeature(euclidean, np.zeros(1), representation_number=4)
        for v in [0.1, -0.1, 2.0, -2.0, 0.05, -0.05, 0.2]:
            f.absorb(np.array([v]))
        near = [float(x[0]) for x in f.nearest_representatives]
        far = [float(x[0]) for x in f.peripheral_representatives]
        assert max(abs(v) for v in near) <= min(abs(v) for v in far) + 1e-12

    def test_n_counts_all_insertions(self, euclidean):
        f = BubbleClusterFeature(euclidean, np.zeros(2), representation_number=2)
        for i in range(50):
            f.absorb(np.full(2, 0.01 * i))
        assert f.n == 51


class TestMerge:
    def test_exact_merge_preserves_brute_force_clustroid(self, euclidean):
        objs_a = [np.array([0.0]), np.array([0.5])]
        objs_b = [np.array([1.0]), np.array([1.5])]
        fa = BubbleClusterFeature(euclidean, objs_a[0], representation_number=10)
        fa.absorb(objs_a[1])
        fb = BubbleClusterFeature(euclidean, objs_b[0], representation_number=10)
        fb.absorb(objs_b[1])
        fa.merge(fb)
        assert fa.n == 4
        assert fa.exact
        expected, _ = brute_force_clustroid(euclidean, objs_a + objs_b)
        np.testing.assert_allclose(fa.clustroid, expected)

    def test_heuristic_merge_clustroid_between_old_clustroids(self, euclidean):
        rng = np.random.default_rng(3)
        fa = BubbleClusterFeature(euclidean, np.zeros(2), representation_number=6)
        fb = BubbleClusterFeature(euclidean, np.array([1.0, 0.0]), representation_number=6)
        for _ in range(50):
            fa.absorb(0.2 * rng.normal(size=2))
            fb.absorb(np.array([1.0, 0.0]) + 0.2 * rng.normal(size=2))
        ca, cb = np.asarray(fa.clustroid), np.asarray(fb.clustroid)
        fa.merge(fb)
        assert fa.n == 102
        merged = np.asarray(fa.clustroid)
        # New clustroid lies between the two old ones (Type II geometry).
        assert np.linalg.norm(merged - 0.5 * (ca + cb)) < 0.6

    def test_merge_caps_representatives(self, euclidean):
        rng = np.random.default_rng(4)
        fa = BubbleClusterFeature(euclidean, np.zeros(2), representation_number=4)
        fb = BubbleClusterFeature(euclidean, np.ones(2), representation_number=4)
        for _ in range(20):
            fa.absorb(0.1 * rng.normal(size=2))
            fb.absorb(np.ones(2) + 0.1 * rng.normal(size=2))
        fa.merge(fb)
        assert len(fa.representatives) <= 4

    def test_merge_type_check(self, euclidean):
        f = BubbleClusterFeature(euclidean, np.zeros(1))
        with pytest.raises(ParameterError):
            f.merge("not a feature")

    def test_admits_uses_d0_rule(self, euclidean):
        f = BubbleClusterFeature(euclidean, np.zeros(2))
        assert f.admits(np.array([0.5, 0.0]), dist=0.5, threshold=0.5)
        assert not f.admits(np.array([0.6, 0.0]), dist=0.6, threshold=0.5)


class TestDistanceHelpers:
    def test_d0_between_features(self, euclidean):
        fa = BubbleClusterFeature(euclidean, np.array([0.0, 0.0]))
        fb = BubbleClusterFeature(euclidean, np.array([3.0, 4.0]))
        assert fa.distance_to(fb) == pytest.approx(5.0)

    def test_object_to_set_distance(self, euclidean):
        # D2({o}, S) = sqrt(mean of squared distances).
        s = [np.array([1.0, 0.0]), np.array([-1.0, 0.0])]
        d = object_to_set_distance(euclidean, np.zeros(2), s)
        assert d == pytest.approx(1.0)

    def test_average_inter_cluster_distance_symmetric(self, euclidean):
        rng = np.random.default_rng(5)
        a = list(rng.normal(size=(4, 2)))
        b = list(rng.normal(size=(3, 2)))
        dab = average_inter_cluster_distance(euclidean, a, b)
        dba = average_inter_cluster_distance(euclidean, b, a)
        assert dab == pytest.approx(dba)

    def test_average_inter_cluster_distance_known(self, euclidean):
        a = [np.array([0.0])]
        b = [np.array([3.0]), np.array([4.0])]
        # sqrt((9 + 16) / 2)
        assert average_inter_cluster_distance(euclidean, a, b) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_empty_set_rejected(self, euclidean):
        with pytest.raises(ParameterError):
            average_inter_cluster_distance(euclidean, [], [np.zeros(1)])


class TestSubCluster:
    def test_valid(self):
        s = SubCluster(clustroid="abc", n=3, radius=1.0, representatives=["abc"])
        assert s.n == 3

    def test_invalid_n(self):
        with pytest.raises(ParameterError):
            SubCluster(clustroid="abc", n=0, radius=0.0)

    def test_invalid_radius(self):
        with pytest.raises(ParameterError):
            SubCluster(clustroid="abc", n=1, radius=-1.0)


class TestStrings:
    def test_feature_works_on_strings(self):
        from repro.metrics import EditDistance

        m = EditDistance()
        f = BubbleClusterFeature(m, "clustering", representation_number=4)
        for s in ["clusterin", "lustering", "clusteringg", "clustreing"]:
            f.absorb(s)
        assert f.n == 5
        assert isinstance(f.clustroid, str)
        # The canonical form should win: it is closest to all variants.
        assert f.clustroid == "clustering"
