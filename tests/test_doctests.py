"""Run the executable examples embedded in docstrings.

Keeps the documentation honest: every ``>>>`` block in the public API must
stay runnable.
"""

import doctest

import pytest

import repro
import repro.core.preclusterer
import repro.dbscan.dbscan
import repro.fastmap.fastmap
import repro.metrics.base
import repro.mtree.mtree

MODULES = [
    repro,
    repro.metrics.base,
    repro.fastmap.fastmap,
    repro.core.preclusterer,
    repro.mtree.mtree,
    repro.dbscan.dbscan,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_docstring_examples(module):
    failures, tests = doctest.testmod(
        module, verbose=False, optionflags=doctest.ELLIPSIS
    )
    assert tests > 0, f"{module.__name__} has no doctests to run"
    assert failures == 0
