"""Integration tests: cross-module behaviour and the paper's qualitative
claims at miniature scale."""

import numpy as np
import pytest

from repro import BUBBLE, BUBBLEFM
from repro.datasets import make_authority_dataset, make_cell_dataset, make_ds2
from repro.evaluation import (
    adjusted_rand_index,
    clustroid_quality,
    distortion,
    min_possible_clustroid_quality,
    misplaced_count,
)
from repro.metrics import EditDistance, EuclideanDistance
from repro.pipelines import cluster_dataset
from repro.red import REDClusterer


class TestVectorQuality:
    def test_ds2_clustroids_trace_the_wave(self):
        """Figures 1-2: discovered clustroids follow the sine wave."""
        ds = make_ds2(n_points=2000, n_clusters=20, seed=0)
        for algorithm in ("bubble", "bubble-fm"):
            res = cluster_dataset(
                ds.as_objects(),
                EuclideanDistance(),
                n_clusters=20,
                algorithm=algorithm,
                max_nodes=40,
                image_dim=2,
                assign=False,
                seed=1,
            )
            centers = np.vstack(res.centers)
            cq = clustroid_quality(ds.centers, centers)
            assert cq < 1.0, f"{algorithm} clustroids stray from the wave"

    def test_cq_close_to_floor_on_cell_dataset(self):
        """Table 2: CQ close to its minimum possible value."""
        ds = make_cell_dataset(dim=10, n_clusters=10, n_points=2000, seed=0)
        res = cluster_dataset(
            ds.as_objects(), EuclideanDistance(), 10, max_nodes=30, seed=1
        )
        floor = min_possible_clustroid_quality(ds.centers, ds.points, ds.labels)
        cq = clustroid_quality(ds.centers, np.vstack(res.centers))
        assert cq < max(4 * floor, 0.5)

    def test_computed_distortion_matches_actual(self):
        """Table 2: distortion of discovered clusters ~= distortion of the
        true clustering."""
        ds = make_cell_dataset(dim=10, n_clusters=10, n_points=2000, seed=2)
        res = cluster_dataset(
            ds.as_objects(), EuclideanDistance(), 10, max_nodes=30, seed=3
        )
        actual = distortion(ds.points, ds.labels)
        computed = distortion(ds.points, res.labels)
        assert computed == pytest.approx(actual, rel=0.1)

    def test_high_ari_on_well_separated_data(self):
        ds = make_cell_dataset(dim=6, n_clusters=8, n_points=1600, seed=4)
        res = cluster_dataset(
            ds.as_objects(), EuclideanDistance(), 8, max_nodes=30, seed=5
        )
        assert adjusted_rand_index(ds.labels, res.labels) > 0.9


class TestOrderIndependence:
    def test_quality_stable_under_input_order(self):
        """Footnote 5: results are (nearly) input-order independent."""
        ds = make_cell_dataset(dim=6, n_clusters=6, n_points=1200, seed=6)
        distortions = []
        for order_seed in (0, 1):
            shuffled = ds.shuffled(seed=order_seed)
            res = cluster_dataset(
                shuffled.as_objects(),
                EuclideanDistance(),
                6,
                max_nodes=25,
                seed=7,
            )
            distortions.append(distortion(shuffled.points, res.labels))
        lo, hi = min(distortions), max(distortions)
        assert hi <= lo * 1.25


class TestNCDClaims:
    def test_bubble_fm_reduces_ncd(self):
        """Figure 5's claim: BUBBLE-FM makes fewer calls to d than BUBBLE
        once trees get deep."""
        rng = np.random.default_rng(8)
        points = list(rng.uniform(0, 1000, size=(2000, 2)))
        m_b, m_fm = EuclideanDistance(), EuclideanDistance()
        BUBBLE(m_b, branching_factor=8, sample_size=40, max_nodes=50, seed=0).fit(points)
        BUBBLEFM(
            m_fm, branching_factor=8, sample_size=40, max_nodes=50, image_dim=2, seed=0
        ).fit(points)
        assert m_fm.n_calls < m_b.n_calls


class TestDataCleaning:
    def test_bubble_fm_clusters_string_variants(self):
        """Section 7 at miniature scale: BUBBLE-FM groups author-name
        variants with modest misplacement."""
        ds = make_authority_dataset(n_classes=30, n_strings=300, seed=0)
        metric = EditDistance()
        model = BUBBLEFM(
            metric, branching_factor=10, sample_size=30, image_dim=3,
            threshold=2.0, seed=1,
        ).fit(ds.strings)
        labels = model.assign(ds.strings)
        mis = misplaced_count(ds.labels, labels)
        assert mis <= 0.25 * ds.n_strings

    def test_red_and_bubble_fm_comparable_quality(self):
        ds = make_authority_dataset(n_classes=25, n_strings=250, seed=2)
        red = REDClusterer(threshold=0.25).fit(ds.strings)
        mis_red = misplaced_count(ds.labels, red.labels_)
        metric = EditDistance()
        model = BUBBLEFM(metric, image_dim=3, threshold=2.0, seed=3).fit(ds.strings)
        mis_fm = misplaced_count(ds.labels, model.assign(ds.strings))
        # Both should be decent; BUBBLE-FM may misplace somewhat more
        # (Table 3 run 1) but not catastrophically.
        assert mis_red <= 0.2 * ds.n_strings
        assert mis_fm <= 0.3 * ds.n_strings


class TestScalability:
    def test_tree_height_logarithmic(self):
        rng = np.random.default_rng(9)
        points = list(rng.uniform(0, 10_000, size=(3000, 2)))
        model = BUBBLE(
            EuclideanDistance(), branching_factor=10, max_nodes=200, seed=0
        ).fit(points)
        assert model.tree_.height <= 6

    def test_memory_bound_respected_throughout(self):
        rng = np.random.default_rng(10)
        model = BUBBLE(EuclideanDistance(), max_nodes=20, seed=0)
        points = list(rng.uniform(0, 100, size=(2000, 2)))
        model.fit(points)
        assert model.tree_.n_nodes <= 20
