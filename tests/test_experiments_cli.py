"""Unit tests for the experiments CLI (python -m repro.experiments)."""

import json

import pytest

from repro.experiments.__main__ import _EXPERIMENTS, main


class TestExperimentsCLI:
    def test_registry_covers_every_table_and_figure(self):
        assert set(_EXPERIMENTS) == {
            "table1", "table1b", "table2", "table3",
            "fig123", "fig4", "fig5", "fig6",
            "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8",
        }

    def test_single_experiment_prints_table(self, capsys):
        code = main(["a7", "--scale", "smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Ablation A7" in out
        assert "CLARANS" in out

    def test_out_file_written(self, tmp_path, capsys):
        out_file = tmp_path / "results.json"
        code = main(["a5", "--scale", "smoke", "--out", str(out_file)])
        assert code == 0
        docs = json.loads(out_file.read_text())
        assert len(docs) == 1
        assert docs[0]["experiment"] == "Ablation A5"
        assert docs[0]["context"]["scale"] == "smoke"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["a5", "--scale", "galactic"])
