"""Unit tests for the RDS-surrogate string dataset generator."""

import numpy as np
import pytest

from repro.datasets import make_authority_dataset
from repro.datasets.strings import (
    add_char,
    initialize_given_name,
    omit_char,
    transpose_chars,
    transpose_words,
)
from repro.exceptions import ParameterError
from repro.metrics import EditDistance


class TestCorruptions:
    def test_omit_char_shortens(self, rng):
        assert len(omit_char("abcdef", rng)) == 5

    def test_omit_char_single(self, rng):
        assert omit_char("a", rng) == "a"

    def test_add_char_lengthens(self, rng):
        assert len(add_char("abc", rng)) == 4

    def test_transpose_chars_same_multiset(self, rng):
        out = transpose_chars("abcdef", rng)
        assert sorted(out) == sorted("abcdef")
        assert len(out) == 6

    def test_transpose_chars_short(self, rng):
        assert transpose_chars("a", rng) == "a"

    def test_transpose_words_same_words(self, rng):
        out = transpose_words("alpha beta gamma", rng)
        assert sorted(out.split()) == ["alpha", "beta", "gamma"]

    def test_transpose_words_single_word(self, rng):
        assert transpose_words("alpha", rng) == "alpha"

    def test_initialize_given_name(self, rng):
        assert initialize_given_name("powell, allison l.", rng) == "powell, a. l."

    def test_initialize_no_comma(self, rng):
        assert initialize_given_name("nocomma", rng) == "nocomma"

    def test_corruption_keeps_small_edit_distance(self, rng):
        m = EditDistance()
        base = "ramakrishnan, raghu t."
        for op in (omit_char, add_char, transpose_chars):
            assert m._distance(base, op(base, rng)) <= 2


class TestAuthorityDataset:
    def test_sizes(self):
        ds = make_authority_dataset(n_classes=20, n_strings=200, seed=0)
        assert ds.n_strings == 200
        assert ds.n_classes == 20
        assert len(ds.labels) == 200

    def test_every_class_appears(self):
        ds = make_authority_dataset(n_classes=15, n_strings=100, seed=1)
        assert set(ds.labels.tolist()) == set(range(15))

    def test_labels_match_variants(self):
        ds = make_authority_dataset(n_classes=10, n_strings=80, seed=2)
        for s, lab in zip(ds.strings, ds.labels):
            assert s in ds.variants[int(lab)]

    def test_canonical_is_first_variant(self):
        ds = make_authority_dataset(n_classes=10, n_strings=50, seed=3)
        for canon, forms in zip(ds.canonical, ds.variants):
            assert forms[0] == canon

    def test_variants_distinct_across_classes(self):
        ds = make_authority_dataset(n_classes=30, n_strings=100, seed=4)
        all_variants = [v for forms in ds.variants for v in forms]
        assert len(all_variants) == len(set(all_variants))

    def test_variants_close_to_canonical(self):
        ds = make_authority_dataset(n_classes=10, n_strings=50, max_corruptions=2, seed=5)
        m = EditDistance()
        for canon, forms in zip(ds.canonical, ds.variants):
            for v in forms:
                # Each corruption changes at most 2 units of edit distance
                # (word transposition can cost more); generous bound.
                assert m._distance(canon, v) <= 2 * 2 * max(1, len(canon) // 4)

    def test_deterministic(self):
        a = make_authority_dataset(n_classes=10, n_strings=50, seed=6)
        b = make_authority_dataset(n_classes=10, n_strings=50, seed=6)
        assert a.strings == b.strings
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_duplicates_allowed(self):
        ds = make_authority_dataset(n_classes=5, n_strings=500, seed=7)
        assert ds.n_distinct_variants < 500  # heavy duplication, like RDS

    def test_validation(self):
        with pytest.raises(ParameterError):
            make_authority_dataset(n_classes=0)
        with pytest.raises(ParameterError):
            make_authority_dataset(n_classes=10, n_strings=5)
        with pytest.raises(ParameterError):
            make_authority_dataset(max_corruptions=0)
