"""Unit tests for the end-to-end pipelines."""

import numpy as np
import pytest

from repro.datasets import make_authority_dataset, make_cell_dataset
from repro.evaluation import adjusted_rand_index, distortion
from repro.exceptions import ParameterError
from repro.metrics import EditDistance, EuclideanDistance
from repro.pipelines import (
    cluster_dataset,
    map_first_cluster,
    nearest_assignment,
)


class TestNearestAssignment:
    def test_basic(self, euclidean):
        centers = [np.array([0.0, 0.0]), np.array([10.0, 0.0])]
        labels = nearest_assignment(
            euclidean, [np.array([1.0, 0.0]), np.array([9.0, 0.0])], centers
        )
        np.testing.assert_array_equal(labels, [0, 1])

    def test_empty_centers(self, euclidean):
        with pytest.raises(ParameterError):
            nearest_assignment(euclidean, [np.zeros(2)], [])

    def test_call_count(self, euclidean):
        centers = [np.zeros(2), np.ones(2)]
        euclidean.reset_counter()
        nearest_assignment(euclidean, [np.zeros(2)] * 5, centers)
        assert euclidean.n_calls == 10


class TestClusterDataset:
    @pytest.mark.parametrize("algorithm", ["bubble", "bubble-fm"])
    def test_recovers_blob_structure(self, blob_data, algorithm):
        points, labels, centers = blob_data
        res = cluster_dataset(
            points,
            EuclideanDistance(),
            n_clusters=5,
            algorithm=algorithm,
            max_nodes=10,
            image_dim=2,
            seed=0,
        )
        assert res.n_clusters == 5
        assert adjusted_rand_index(labels, res.labels) > 0.95

    def test_rejects_unknown_algorithm(self, blob_data):
        points, _, _ = blob_data
        with pytest.raises(ParameterError):
            cluster_dataset(points, EuclideanDistance(), 3, algorithm="kmeans")

    def test_rejects_unknown_center_method(self, blob_data):
        points, _, _ = blob_data
        with pytest.raises(ParameterError):
            cluster_dataset(points, EuclideanDistance(), 3, center_method="mean")

    def test_skip_assignment(self, blob_data):
        points, _, _ = blob_data
        res = cluster_dataset(
            points, EuclideanDistance(), 5, max_nodes=10, assign=False, seed=0
        )
        assert res.labels is None
        assert res.n_clusters == 5

    def test_vector_centers_are_centroids(self, blob_data):
        points, _, centers = blob_data
        res = cluster_dataset(points, EuclideanDistance(), 5, max_nodes=10, seed=0)
        found = np.vstack(res.centers)
        for c in centers:
            assert np.min(np.linalg.norm(found - c, axis=1)) < 0.5

    def test_string_centers_are_medoids(self):
        ds = make_authority_dataset(n_classes=8, n_strings=60, seed=0)
        metric = EditDistance()
        res = cluster_dataset(
            ds.strings, metric, n_clusters=8, algorithm="bubble", seed=0
        )
        # Medoid centers must be actual strings from the dataset.
        for c in res.centers:
            assert isinstance(c, str)
            assert c in ds.strings

    def test_diagnostics_populated(self, blob_data):
        points, _, _ = blob_data
        res = cluster_dataset(points, EuclideanDistance(), 5, max_nodes=10, seed=0)
        assert res.n_distance_calls > 0
        assert 0 < res.scan_seconds <= res.total_seconds
        assert res.model is not None
        assert len(res.subcluster_labels) == len(res.subclusters)

    def test_n_clusters_capped_by_subclusters(self, euclidean):
        # Only 2 distinct objects -> at most 2 clusters even if 10 requested.
        points = [np.zeros(2)] * 10 + [np.ones(2) * 5] * 10
        res = cluster_dataset(points, euclidean, 10, seed=0)
        assert res.n_clusters == 2


class TestMapFirst:
    def test_runs_and_labels(self, blob_data):
        points, labels, _ = blob_data
        res = map_first_cluster(
            points, EuclideanDistance(), n_clusters=5, image_dim=2, max_nodes=10, seed=0
        )
        assert res.labels.shape == (len(points),)
        assert res.images.shape == (len(points), 2)
        assert res.n_clusters == 5

    def test_quality_on_easy_data(self, blob_data):
        points, labels, _ = blob_data
        res = map_first_cluster(
            points, EuclideanDistance(), n_clusters=5, image_dim=2, max_nodes=10, seed=0
        )
        # 2-d Euclidean data maps near-isometrically: quality should be fine.
        assert adjusted_rand_index(labels, res.labels) > 0.8

    def test_ncd_only_from_fastmap(self, blob_data):
        points, _, _ = blob_data
        metric = EuclideanDistance()
        res = map_first_cluster(points, metric, 5, image_dim=2, max_nodes=10, seed=0)
        # FastMap cost is O(N * k); nothing else may touch the metric.
        n, k = len(points), 2
        assert res.n_distance_calls <= (2 * 1 + 1) * n * k + 4 * k * k

    def test_rejects_bad_n_clusters(self, blob_data):
        points, _, _ = blob_data
        with pytest.raises(ParameterError):
            map_first_cluster(points, EuclideanDistance(), 0, image_dim=2)


class TestQualityComparison:
    def test_bubble_beats_or_ties_map_first_on_high_dim(self):
        """Table 1's qualitative claim at miniature scale: pre-clustering in
        the original space is at least as good as Map-First on the
        cell dataset."""
        ds = make_cell_dataset(dim=10, n_clusters=8, n_points=800, seed=0)
        bubble = cluster_dataset(
            ds.as_objects(), EuclideanDistance(), 8, max_nodes=30, seed=1
        )
        mf = map_first_cluster(
            ds.as_objects(), EuclideanDistance(), 8, image_dim=10, max_nodes=30, seed=1
        )
        d_bubble = distortion(ds.points, bubble.labels)
        d_mf = distortion(ds.points, mf.labels)
        assert d_bubble <= d_mf * 1.05


class TestGlobalMethod:
    def test_clarans_global_phase(self, blob_data):
        points, labels, _ = blob_data
        res = cluster_dataset(
            points,
            EuclideanDistance(),
            n_clusters=5,
            global_method="clarans",
            max_nodes=10,
            seed=0,
        )
        assert res.n_clusters == 5
        assert adjusted_rand_index(labels, res.labels) > 0.9

    def test_unknown_global_method(self, blob_data):
        points, _, _ = blob_data
        with pytest.raises(ParameterError):
            cluster_dataset(points, EuclideanDistance(), 3, global_method="kmeans")
