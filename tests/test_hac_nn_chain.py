"""Equivalence and property tests for the nearest-neighbour-chain HAC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.hac import AgglomerativeClusterer
from repro.metrics import EuclideanDistance


def partitions_equal(labels_a, labels_b) -> bool:
    """Same partition up to label renaming."""
    mapping = {}
    for a, b in zip(labels_a, labels_b):
        if a in mapping and mapping[a] != b:
            return False
        mapping[a] = b
    return len(set(mapping.values())) == len(mapping)


point_sets = st.lists(
    st.tuples(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    ),
    min_size=2,
    max_size=25,
    unique=True,
)


class TestEquivalence:
    @pytest.mark.parametrize("linkage", ["single", "complete", "average", "weighted"])
    def test_methods_agree_on_random_data(self, linkage, rng):
        pts = list(rng.normal(size=(30, 2)))
        dm = EuclideanDistance().pairwise(pts)
        for k in (1, 3, 7):
            generic = AgglomerativeClusterer(
                n_clusters=k, linkage=linkage, method="generic"
            ).fit(distance_matrix=dm)
            chain = AgglomerativeClusterer(
                n_clusters=k, linkage=linkage, method="nn-chain"
            ).fit(distance_matrix=dm)
            assert partitions_equal(generic.labels_, chain.labels_), (linkage, k)

    @pytest.mark.parametrize("linkage", ["single", "average"])
    def test_methods_agree_with_threshold(self, linkage, rng):
        pts = list(rng.normal(size=(25, 2)))
        dm = EuclideanDistance().pairwise(pts)
        for t in (0.3, 1.0, 3.0):
            generic = AgglomerativeClusterer(
                distance_threshold=t, linkage=linkage, method="generic"
            ).fit(distance_matrix=dm.copy())
            chain = AgglomerativeClusterer(
                distance_threshold=t, linkage=linkage, method="nn-chain"
            ).fit(distance_matrix=dm.copy())
            assert generic.n_clusters_ == chain.n_clusters_
            assert partitions_equal(generic.labels_, chain.labels_)

    @given(pts=point_sets)
    @settings(max_examples=50, deadline=None)
    def test_property_agreement_average_linkage(self, pts):
        dm = EuclideanDistance().pairwise([np.asarray(p) for p in pts])
        k = max(1, len(pts) // 3)
        generic = AgglomerativeClusterer(n_clusters=k, method="generic").fit(
            distance_matrix=dm.copy()
        )
        chain = AgglomerativeClusterer(n_clusters=k, method="nn-chain").fit(
            distance_matrix=dm.copy()
        )
        assert partitions_equal(generic.labels_, chain.labels_)


class TestNNChainDetails:
    def test_unknown_method_rejected(self):
        with pytest.raises(ParameterError):
            AgglomerativeClusterer(n_clusters=1, method="heap")

    def test_auto_is_default(self):
        assert AgglomerativeClusterer(n_clusters=1).method == "auto"

    def test_single_item(self):
        model = AgglomerativeClusterer(n_clusters=1, method="nn-chain").fit(
            distance_matrix=np.zeros((1, 1))
        )
        assert model.labels_.tolist() == [0]

    def test_merges_heights_valid(self, rng):
        pts = list(rng.normal(size=(20, 2)))
        dm = EuclideanDistance().pairwise(pts)
        model = AgglomerativeClusterer(n_clusters=1, method="nn-chain").fit(
            distance_matrix=dm
        )
        assert len(model.merges_) == 19
        heights = [d for _, _, d in model.merges_]
        assert heights == sorted(heights)  # applied in height order

    def test_weighted_sizes_respected(self, rng):
        pts = [np.array([0.0]), np.array([1.0]), np.array([5.0])]
        dm = EuclideanDistance().pairwise(pts)
        for method in ("generic", "nn-chain"):
            model = AgglomerativeClusterer(
                n_clusters=2, linkage="average", method=method
            ).fit(distance_matrix=dm.copy(), weights=[10.0, 1.0, 1.0])
            assert model.labels_[0] == model.labels_[1] != model.labels_[2]

    def test_faster_than_generic_at_scale(self, rng):
        import time

        pts = list(rng.normal(size=(300, 2)))
        dm = EuclideanDistance().pairwise(pts)
        start = time.perf_counter()
        AgglomerativeClusterer(n_clusters=5, method="generic").fit(distance_matrix=dm.copy())
        t_generic = time.perf_counter() - start
        start = time.perf_counter()
        AgglomerativeClusterer(n_clusters=5, method="nn-chain").fit(distance_matrix=dm.copy())
        t_chain = time.perf_counter() - start
        # Not a strict benchmark; just ensure the chain path is not
        # pathologically slower while its asymptotics are better.
        assert t_chain < max(t_generic * 2, 1.0)
