"""Unit tests for the refinement phase (BIRCH Phase 4 analogue)."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.metrics import EditDistance, EuclideanDistance
from repro.pipelines import refine_labels


class TestValidation:
    def test_bad_iterations(self, euclidean):
        with pytest.raises(ParameterError):
            refine_labels([np.zeros(2)], euclidean, [np.zeros(2)], iterations=0)

    def test_bad_center_method(self, euclidean):
        with pytest.raises(ParameterError):
            refine_labels([np.zeros(2)], euclidean, [np.zeros(2)], center_method="mode")

    def test_no_centers(self, euclidean):
        with pytest.raises(ParameterError):
            refine_labels([np.zeros(2)], euclidean, [])


class TestVectorRefinement:
    def test_recovers_from_perturbed_centers(self, euclidean, blob_data):
        points, labels_true, centers = blob_data
        rng = np.random.default_rng(0)
        bad_centers = [c + rng.normal(scale=1.5, size=2) for c in centers]
        labels, refined = refine_labels(
            points, euclidean, bad_centers, iterations=3, seed=0
        )
        refined = np.vstack(refined)
        for c in centers:
            assert np.min(np.linalg.norm(refined - c, axis=1)) < 0.3

    def test_monotone_improvement(self, euclidean, blob_data):
        """Refinement never worsens the within-cluster cost."""
        points, _, centers = blob_data
        rng = np.random.default_rng(1)
        bad = [c + rng.normal(scale=1.0, size=2) for c in centers]

        def cost(centers_, labels_):
            return sum(
                float(np.linalg.norm(np.asarray(points[i]) - centers_[l]) ** 2)
                for i, l in enumerate(labels_)
            )

        labels0 = None
        prev = None
        for rounds in (1, 3):
            labels, cc = refine_labels(points, euclidean, bad, iterations=rounds, seed=1)
            c = cost([np.asarray(x) for x in cc], labels)
            if prev is not None:
                assert c <= prev * 1.001
            prev = c

    def test_empty_cluster_keeps_center(self, euclidean):
        points = [np.zeros(2)] * 10
        centers = [np.zeros(2), np.array([100.0, 100.0])]
        labels, refined = refine_labels(points, euclidean, centers, iterations=1)
        np.testing.assert_allclose(refined[1], [100.0, 100.0])
        assert np.all(labels == 0)

    def test_labels_passed_in(self, euclidean, blob_data):
        points, _, centers = blob_data
        initial = np.zeros(len(points), dtype=np.intp)
        labels, _ = refine_labels(
            points, euclidean, list(centers), labels=initial, iterations=2, seed=0
        )
        assert len(set(labels.tolist())) == len(centers)


class TestMedoidRefinement:
    def test_string_medoids_are_members(self):
        strings = (["clustering"] * 5 + ["clusterin g", "clusterng"]
                   + ["database"] * 5 + ["databse", "dtabase"])
        metric = EditDistance()
        labels, centers = refine_labels(
            strings, metric, ["xlustering", "databaze"],
            iterations=2, seed=0,
        )
        assert set(centers) <= set(strings)
        assert centers[0] == "clustering"
        assert centers[1] == "database"

    def test_medoid_sampling_bounded(self, euclidean, rng):
        points = list(rng.normal(size=(500, 2)))
        before = euclidean.n_calls
        refine_labels(
            points, euclidean, [np.zeros(2)],
            iterations=1, medoid_sample=16, center_method="medoid", seed=0,
        )
        # One labeling scan (500 calls) + initial assignment (500) +
        # medoid recomputation bounded by 16 * 16.
        assert euclidean.n_calls - before <= 500 * 2 + 16 * 16 + 16
