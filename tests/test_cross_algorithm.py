"""Cross-algorithm consistency: every clusterer in the library must agree on
an unambiguous dataset."""

import numpy as np
import pytest

from repro import BIRCH, BUBBLE, BUBBLEFM, CLARANS, CURE, MetricDBSCAN
from repro.evaluation import adjusted_rand_index
from repro.metrics import EuclideanDistance
from repro.pipelines import cluster_dataset, map_first_cluster


@pytest.fixture(scope="module")
def easy_blobs():
    rng = np.random.default_rng(123)
    centers = np.array([[0.0, 0.0], [30.0, 0.0], [0.0, 30.0]])
    points, labels = [], []
    for i, c in enumerate(centers):
        points.extend(list(c + 0.5 * rng.normal(size=(80, 2))))
        labels.extend([i] * 80)
    order = rng.permutation(len(points))
    return [points[i] for i in order], np.asarray(labels)[order]


class TestEveryAlgorithmAgrees:
    def test_bubble(self, easy_blobs):
        points, truth = easy_blobs
        res = cluster_dataset(points, EuclideanDistance(), 3, max_nodes=10, seed=0)
        assert adjusted_rand_index(truth, res.labels) == 1.0

    def test_bubble_fm(self, easy_blobs):
        points, truth = easy_blobs
        res = cluster_dataset(
            points, EuclideanDistance(), 3, algorithm="bubble-fm",
            image_dim=2, max_nodes=10, seed=0,
        )
        assert adjusted_rand_index(truth, res.labels) == 1.0

    def test_map_first(self, easy_blobs):
        points, truth = easy_blobs
        res = map_first_cluster(points, EuclideanDistance(), 3, image_dim=2,
                                max_nodes=10, seed=0)
        assert adjusted_rand_index(truth, res.labels) == 1.0

    def test_birch_subclusters_cover(self, easy_blobs):
        points, truth = easy_blobs
        model = BIRCH(max_nodes=10, seed=0).fit(points)
        labels = model.assign(points)
        # Sub-clusters are finer than truth; majority purity must be total.
        from repro.evaluation import misplaced_count

        assert misplaced_count(truth, labels) == 0

    def test_clarans(self, easy_blobs):
        points, truth = easy_blobs
        model = CLARANS(3, EuclideanDistance(), max_neighbors=60, seed=0).fit(points)
        assert adjusted_rand_index(truth, model.labels_) == 1.0

    def test_cure(self, easy_blobs):
        points, truth = easy_blobs
        model = CURE(3, seed=0).fit(np.vstack(points))
        assert adjusted_rand_index(truth, model.labels_) == 1.0

    def test_dbscan(self, easy_blobs):
        points, truth = easy_blobs
        model = MetricDBSCAN(eps=1.5, min_pts=4, metric=EuclideanDistance()).fit(points)
        assert model.n_clusters_ == 3
        assert adjusted_rand_index(truth, np.maximum(model.labels_, 0)) > 0.99


class TestNCDOrdering:
    def test_ncd_sanity_across_algorithms(self, easy_blobs):
        """On this easy workload the single-scan algorithms must use far
        fewer distance calls than CLARANS' randomized search."""
        points, _ = easy_blobs
        costs = {}
        for name, run in {
            "bubble": lambda m: BUBBLE(m, max_nodes=10, seed=0).fit(points),
            "bubble-fm": lambda m: BUBBLEFM(m, max_nodes=10, image_dim=2, seed=0).fit(points),
            "clarans": lambda m: CLARANS(3, m, max_neighbors=60, seed=0).fit(points),
        }.items():
            metric = EuclideanDistance()
            run(metric)
            costs[name] = metric.n_calls
        assert costs["bubble"] < costs["clarans"]
        assert costs["bubble-fm"] < costs["clarans"]
