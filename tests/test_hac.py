"""Unit tests for the hierarchical agglomerative global phase."""

import numpy as np
import pytest

from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.hac import AgglomerativeClusterer, linkage_matrix
from repro.metrics import EuclideanDistance


def two_pairs_matrix():
    # Items 0,1 close; 2,3 close; the pairs far apart.
    pts = [np.array([0.0]), np.array([1.0]), np.array([10.0]), np.array([11.0])]
    return EuclideanDistance().pairwise(pts)


class TestConstruction:
    def test_requires_exactly_one_stop_rule(self):
        with pytest.raises(ParameterError):
            AgglomerativeClusterer()
        with pytest.raises(ParameterError):
            AgglomerativeClusterer(n_clusters=2, distance_threshold=1.0)

    def test_rejects_unknown_linkage(self):
        with pytest.raises(ParameterError):
            AgglomerativeClusterer(n_clusters=2, linkage="ward")

    def test_rejects_bad_counts(self):
        with pytest.raises(ParameterError):
            AgglomerativeClusterer(n_clusters=0)
        with pytest.raises(ParameterError):
            AgglomerativeClusterer(distance_threshold=-1.0)


class TestFit:
    @pytest.mark.parametrize("linkage", ["single", "complete", "average", "weighted"])
    def test_two_obvious_clusters(self, linkage):
        model = AgglomerativeClusterer(n_clusters=2, linkage=linkage)
        model.fit(distance_matrix=two_pairs_matrix())
        labels = model.labels_
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_from_objects_and_metric(self):
        pts = [np.array([0.0, 0.0]), np.array([0.1, 0.0]), np.array([9.0, 9.0])]
        model = AgglomerativeClusterer(n_clusters=2).fit(
            objects=pts, metric=EuclideanDistance()
        )
        assert model.labels_[0] == model.labels_[1] != model.labels_[2]

    def test_requires_inputs(self):
        with pytest.raises(ParameterError):
            AgglomerativeClusterer(n_clusters=1).fit()

    def test_empty_matrix(self):
        with pytest.raises(EmptyDatasetError):
            AgglomerativeClusterer(n_clusters=1).fit(distance_matrix=np.zeros((0, 0)))

    def test_n_clusters_exceeds_items(self):
        with pytest.raises(ParameterError):
            AgglomerativeClusterer(n_clusters=5).fit(distance_matrix=np.zeros((2, 2)))

    def test_rejects_non_square(self):
        with pytest.raises(ParameterError):
            AgglomerativeClusterer(n_clusters=1).fit(distance_matrix=np.zeros((2, 3)))

    def test_n_clusters_equals_items_is_identity(self):
        dm = two_pairs_matrix()
        model = AgglomerativeClusterer(n_clusters=4).fit(distance_matrix=dm)
        assert len(set(model.labels_.tolist())) == 4

    def test_single_item(self):
        model = AgglomerativeClusterer(n_clusters=1).fit(distance_matrix=np.zeros((1, 1)))
        assert model.labels_.tolist() == [0]


class TestDistanceThreshold:
    def test_threshold_stops_merging(self):
        model = AgglomerativeClusterer(distance_threshold=2.0)
        model.fit(distance_matrix=two_pairs_matrix())
        assert model.n_clusters_ == 2

    def test_huge_threshold_single_cluster(self):
        model = AgglomerativeClusterer(distance_threshold=100.0)
        model.fit(distance_matrix=two_pairs_matrix())
        assert model.n_clusters_ == 1


class TestLinkageSemantics:
    def test_single_chains_complete_does_not(self):
        # A chain of points: single linkage merges the chain into one
        # cluster before bridging a gap; complete linkage is more reluctant.
        pts = [np.array([float(i)]) for i in range(6)] + [np.array([100.0])]
        dm = EuclideanDistance().pairwise(pts)
        single = AgglomerativeClusterer(n_clusters=2, linkage="single").fit(distance_matrix=dm)
        assert single.labels_[0] == single.labels_[5]
        assert single.labels_[0] != single.labels_[6]

    def test_weights_shift_average_linkage(self):
        # Item 2 sits between clusters {0,1} and {3}; a heavy weight on the
        # far side of an average-linkage merge pulls distances.
        pts = [np.array([0.0]), np.array([0.5]), np.array([5.0]), np.array([10.0])]
        dm = EuclideanDistance().pairwise(pts)
        unweighted = AgglomerativeClusterer(n_clusters=2, linkage="average").fit(
            distance_matrix=dm
        )
        weighted = AgglomerativeClusterer(n_clusters=2, linkage="average").fit(
            distance_matrix=dm, weights=[100.0, 100.0, 1.0, 1.0]
        )
        assert unweighted.n_clusters_ == weighted.n_clusters_ == 2

    def test_weights_validation(self):
        with pytest.raises(ParameterError):
            AgglomerativeClusterer(n_clusters=1).fit(
                distance_matrix=np.zeros((2, 2)), weights=[1.0]
            )


class TestIntrospection:
    def test_not_fitted(self):
        model = AgglomerativeClusterer(n_clusters=2)
        with pytest.raises(NotFittedError):
            _ = model.n_clusters_
        with pytest.raises(NotFittedError):
            model.cluster_members()

    def test_cluster_members_partition(self):
        model = AgglomerativeClusterer(n_clusters=2).fit(distance_matrix=two_pairs_matrix())
        members = model.cluster_members()
        assert sorted(i for grp in members for i in grp) == [0, 1, 2, 3]

    def test_merge_history_length(self):
        model = AgglomerativeClusterer(n_clusters=1).fit(distance_matrix=two_pairs_matrix())
        assert len(model.merges_) == 3  # n - 1 merges to a single cluster

    def test_linkage_matrix_shape_and_sizes(self):
        model = AgglomerativeClusterer(n_clusters=1).fit(distance_matrix=two_pairs_matrix())
        z = linkage_matrix(model.merges_, 4)
        assert z.shape == (3, 4)
        assert z[-1, 3] == 4  # final cluster holds everything

    def test_merge_distances_monotone_for_average(self):
        rng = np.random.default_rng(0)
        pts = list(rng.normal(size=(12, 2)))
        dm = EuclideanDistance().pairwise(pts)
        model = AgglomerativeClusterer(n_clusters=1, linkage="complete").fit(distance_matrix=dm)
        dists = [d for (_, _, d) in model.merges_]
        assert all(b >= a - 1e-9 for a, b in zip(dists, dists[1:]))
