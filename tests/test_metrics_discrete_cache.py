"""Unit tests for discrete metrics and the caching wrapper."""

import numpy as np
import pytest

from repro.exceptions import MetricError, ParameterError
from repro.metrics import (
    CachedDistance,
    DiscreteMetric,
    EditDistance,
    HammingDistance,
    JaccardDistance,
)


class TestHamming:
    def test_known(self):
        assert HammingDistance().distance("karolin", "kathrin") == 3

    def test_equal_length_required(self):
        with pytest.raises(MetricError):
            HammingDistance().distance("ab", "abc")

    def test_works_on_tuples(self):
        assert HammingDistance().distance((1, 2, 3), (1, 0, 3)) == 1


class TestJaccard:
    def test_known(self):
        assert JaccardDistance().distance({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_disjoint(self):
        assert JaccardDistance().distance({1}, {2}) == 1.0

    def test_both_empty(self):
        assert JaccardDistance().distance(set(), set()) == 0.0

    def test_accepts_iterables(self):
        assert JaccardDistance().distance("abc", "abd") == pytest.approx(0.5)


class TestDiscrete:
    def test_zero_one(self):
        m = DiscreteMetric()
        assert m.distance("x", "x") == 0.0
        assert m.distance("x", "y") == 1.0


class TestCachedDistance:
    def test_cache_hit_avoids_call(self):
        inner = EditDistance()
        m = CachedDistance(inner)
        d1 = m.distance("kitten", "sitting")
        d2 = m.distance("kitten", "sitting")
        assert d1 == d2 == 3
        assert inner.n_calls == 1
        assert m.n_hits == 1

    def test_symmetric_key(self):
        inner = EditDistance()
        m = CachedDistance(inner)
        m.distance("abc", "abd")
        m.distance("abd", "abc")
        assert inner.n_calls == 1

    def test_eviction(self):
        inner = EditDistance()
        m = CachedDistance(inner, maxsize=2)
        m.distance("a", "b")
        m.distance("c", "d")
        m.distance("e", "f")  # evicts (a, b)
        m.distance("a", "b")
        assert inner.n_calls == 4

    def test_one_to_many_uses_cache(self):
        inner = EditDistance()
        m = CachedDistance(inner)
        m.one_to_many("cat", ["car", "cut"])
        m.one_to_many("cat", ["car", "bat"])
        assert inner.n_calls == 3
        assert m.n_hits == 1

    def test_reset_clears_hits(self):
        m = CachedDistance(EditDistance())
        m.distance("a", "b")
        m.distance("a", "b")
        m.reset_counter()
        assert m.n_hits == 0
        assert m.n_calls == 0

    def test_rejects_bad_inner(self):
        with pytest.raises(ParameterError):
            CachedDistance(lambda a, b: 0)

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ParameterError):
            CachedDistance(EditDistance(), maxsize=0)

    def test_custom_key_for_vectors(self):
        from repro.metrics import EuclideanDistance

        inner = EuclideanDistance()
        m = CachedDistance(inner, key=lambda v: np.asarray(v).tobytes())
        a, b = np.array([0.0, 0.0]), np.array([3.0, 4.0])
        assert m.distance(a, b) == pytest.approx(5.0)
        assert m.distance(a, b) == pytest.approx(5.0)
        assert inner.n_calls == 1
