"""Unit tests for discrete metrics and the caching wrapper."""

import numpy as np
import pytest

from repro.exceptions import MetricError, ParameterError
from repro.metrics import (
    CachedDistance,
    DiscreteMetric,
    EditDistance,
    HammingDistance,
    JaccardDistance,
)


class TestHamming:
    def test_known(self):
        assert HammingDistance().distance("karolin", "kathrin") == 3

    def test_equal_length_required(self):
        with pytest.raises(MetricError):
            HammingDistance().distance("ab", "abc")

    def test_works_on_tuples(self):
        assert HammingDistance().distance((1, 2, 3), (1, 0, 3)) == 1


class TestJaccard:
    def test_known(self):
        assert JaccardDistance().distance({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_disjoint(self):
        assert JaccardDistance().distance({1}, {2}) == 1.0

    def test_both_empty(self):
        assert JaccardDistance().distance(set(), set()) == 0.0

    def test_accepts_iterables(self):
        assert JaccardDistance().distance("abc", "abd") == pytest.approx(0.5)


class TestDiscrete:
    def test_zero_one(self):
        m = DiscreteMetric()
        assert m.distance("x", "x") == 0.0
        assert m.distance("x", "y") == 1.0


class TestCachedDistance:
    def test_cache_hit_avoids_call(self):
        inner = EditDistance()
        m = CachedDistance(inner)
        d1 = m.distance("kitten", "sitting")
        d2 = m.distance("kitten", "sitting")
        assert d1 == d2 == 3
        assert inner.n_calls == 1
        assert m.n_hits == 1

    def test_symmetric_key(self):
        inner = EditDistance()
        m = CachedDistance(inner)
        m.distance("abc", "abd")
        m.distance("abd", "abc")
        assert inner.n_calls == 1

    def test_eviction(self):
        inner = EditDistance()
        m = CachedDistance(inner, maxsize=2)
        m.distance("a", "b")
        m.distance("c", "d")
        m.distance("e", "f")  # evicts (a, b)
        m.distance("a", "b")
        assert inner.n_calls == 4

    def test_one_to_many_uses_cache(self):
        inner = EditDistance()
        m = CachedDistance(inner)
        m.one_to_many("cat", ["car", "cut"])
        m.one_to_many("cat", ["car", "bat"])
        assert inner.n_calls == 3
        assert m.n_hits == 1

    def test_reset_clears_hits(self):
        m = CachedDistance(EditDistance())
        m.distance("a", "b")
        m.distance("a", "b")
        m.reset_counter()
        assert m.n_hits == 0
        assert m.n_calls == 0

    def test_rejects_bad_inner(self):
        with pytest.raises(ParameterError):
            CachedDistance(lambda a, b: 0)

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ParameterError):
            CachedDistance(EditDistance(), maxsize=0)

    def test_custom_key_for_vectors(self):
        from repro.metrics import EuclideanDistance

        inner = EuclideanDistance()
        m = CachedDistance(inner, key=lambda v: np.asarray(v).tobytes())
        a, b = np.array([0.0, 0.0]), np.array([3.0, 4.0])
        assert m.distance(a, b) == pytest.approx(5.0)
        assert m.distance(a, b) == pytest.approx(5.0)
        assert inner.n_calls == 1


class TestCachedDistanceAccounting:
    """Regression tests: symmetric canonicalization and exact hit/miss counts."""

    def test_symmetric_pairs_share_one_slot(self):
        m = CachedDistance(EditDistance())
        assert m.distance("kitten", "sitting") == m.distance("sitting", "kitten")
        assert m.n_calls == 1
        assert m.n_hits == 1
        assert len(m._cache) == 1

    def test_pairwise_routes_through_cache(self):
        m = CachedDistance(EditDistance())
        objs = ["ab", "abc", "abcd", "b"]
        first = m.pairwise(objs)
        n_pairs = len(objs) * (len(objs) - 1) // 2
        assert m.n_calls == n_pairs  # one true evaluation per unordered pair
        assert m.n_hits == 0
        second = m.pairwise(objs)
        assert np.array_equal(first, second)
        assert m.n_calls == n_pairs  # fully served from cache
        assert m.n_hits == n_pairs
        assert np.allclose(first, first.T)
        assert np.all(np.diag(first) == 0.0)

    def test_pairwise_counts_inner_metric_calls(self):
        # The base-class fallback used the raw hook, leaving the inner
        # counter at zero; the override must keep NCD accounting honest.
        inner = EditDistance()
        m = CachedDistance(inner)
        m.pairwise(["x", "xy", "xyz"])
        assert inner.n_calls == 3

    def test_one_to_many_then_pairwise_shares_cache(self):
        m = CachedDistance(EditDistance())
        objs = ["a", "ab", "abc"]
        m.one_to_many("a", objs)  # caches (a,a), (a,ab), (a,abc)
        assert m.n_calls == 3
        m.pairwise(objs)  # only (ab,abc) is new
        assert m.n_calls == 4
        assert m.n_hits == 2

    def test_unorderable_keys_still_canonicalized(self):
        # Keys whose ordering comparison raises (numpy-style ValueError)
        # must fall back to repr ordering, not lose symmetry.
        class AmbiguousKey:
            def __init__(self, payload):
                self.payload = payload

            def __hash__(self):
                return hash(self.payload)

            def __eq__(self, other):
                return self.payload == other.payload

            def __lt__(self, other):
                raise ValueError("truth value is ambiguous")

            def __repr__(self):
                return f"AmbiguousKey({self.payload!r})"

        from repro.metrics import EuclideanDistance

        m = CachedDistance(EuclideanDistance(), key=lambda v: AmbiguousKey(v.tobytes()))
        a, b = np.array([0.0, 0.0]), np.array([3.0, 4.0])
        assert m.distance(a, b) == pytest.approx(5.0)
        assert m.distance(b, a) == pytest.approx(5.0)
        assert m.n_calls == 1
        assert m.n_hits == 1

    def test_cross_routes_through_cache(self):
        m = CachedDistance(EditDistance())
        a, b = ["cat", "dog"], ["cart", "dot"]
        first = m.cross(a, b)
        assert first.shape == (2, 2)
        assert m.n_calls == 4
        second = m.cross(a, b)
        assert np.array_equal(first, second)
        assert m.n_calls == 4  # fully served from cache
        assert m.n_hits == 4

    def test_mixed_type_keys_still_canonicalized(self):
        from repro.metrics import FunctionDistance

        inner = FunctionDistance(lambda a, b: abs(float(a) - float(b)), name="absdiff")
        m = CachedDistance(inner)
        assert m.distance(1, "2") == 1.0  # int vs str: `<` raises TypeError
        assert m.distance("2", 1) == 1.0
        assert m.n_calls == 1
        assert m.n_hits == 1


class TestCachedDistanceEviction:
    """Regression tests: bounded cache, LRU order, and eviction accounting."""

    def test_eviction_counter(self):
        m = CachedDistance(EditDistance(), maxsize=2)
        m.distance("a", "b")
        m.distance("c", "d")
        assert m.n_evictions == 0
        m.distance("e", "f")
        assert m.n_evictions == 1
        assert len(m._cache) == 2

    def test_cache_never_exceeds_maxsize(self):
        m = CachedDistance(EditDistance(), maxsize=3)
        words = ["a", "ab", "abc", "abcd", "abcde", "b"]
        for i, x in enumerate(words):
            for y in words[i + 1 :]:
                m.distance(x, y)
        assert len(m._cache) <= 3

    def test_reevaluated_evicted_pair_counts_as_miss(self):
        inner = EditDistance()
        m = CachedDistance(inner, maxsize=1)
        m.distance("a", "b")
        m.distance("c", "d")  # evicts (a, b)
        before_hits = m.n_hits
        m.distance("a", "b")  # genuine re-evaluation
        assert inner.n_calls == 3
        assert m.n_hits == before_hits
        assert m.n_evictions == 2

    def test_hit_refreshes_lru_order(self):
        inner = EditDistance()
        m = CachedDistance(inner, maxsize=2)
        m.distance("a", "b")
        m.distance("c", "d")
        m.distance("a", "b")  # hit: (a, b) becomes most recently used
        m.distance("e", "f")  # must evict (c, d), not (a, b)
        m.distance("a", "b")
        assert m.n_hits == 2  # both (a, b) re-reads were hits
        m.distance("c", "d")  # was evicted: a miss
        assert inner.n_calls == 4

    def test_unbounded_cache_never_evicts(self):
        m = CachedDistance(EditDistance(), maxsize=None)
        for i in range(50):
            m.distance("a" * (i + 1), "b")
        assert m.n_evictions == 0
        assert len(m._cache) == 50


class TestCachedDistanceBatching:
    """Regression tests for the batched gathers: ``one_to_many``/``cross``
    must hit the inner metric's *vectorized* path exactly once per batch of
    unique misses, with scalar-loop-exact hit/miss accounting, and the
    default key must make the wrapper work on (and pickle with) ndarrays."""

    def test_cross_counts_pinned_with_overlap(self):
        m = CachedDistance(EditDistance())
        first = m.cross(["abc", "abd"], ["abc", "xyz", "abd"])
        assert first.shape == (2, 3)
        # (abc,abc) self-pair and (abc,abd)/(abd,abc) share one slot:
        # 6 lookups, 5 true evaluations, 1 symmetric hit.
        assert m.n_calls == 5
        assert m.n_hits == 1
        second = m.cross(["abc", "abd"], ["abc", "xyz", "abd"])
        assert np.array_equal(first, second)
        assert m.n_calls == 5
        assert m.n_hits == 7

    def test_unique_misses_gathered_in_one_inner_batch(self):
        calls = []

        class SpyMetric(EditDistance):
            def one_to_many(self, obj, objects):
                calls.append(len(objects))
                return super().one_to_many(obj, objects)

        m = CachedDistance(SpyMetric())
        m.one_to_many("cat", ["car", "cut", "car", "cat"])
        # One vectorized gather for the three unique misses; the duplicate
        # "car" is a within-batch hit served from the resolved values.
        assert calls == [3]
        assert m.n_calls == 3
        assert m.n_hits == 1

    def test_within_batch_repeat_is_a_hit(self):
        inner = EditDistance()
        m = CachedDistance(inner)
        out = m.one_to_many("a", ["ab", "ab", "ab"])
        assert np.array_equal(out, [1.0, 1.0, 1.0])
        assert inner.n_calls == 1
        assert m.n_calls == 1
        assert m.n_hits == 2

    def test_default_key_handles_ndarrays(self):
        from repro.metrics import EuclideanDistance

        m = CachedDistance(EuclideanDistance())
        a, b = np.array([0.0, 0.0]), np.array([3.0, 4.0])
        assert m.distance(a, b) == pytest.approx(5.0)
        assert m.distance(b, a) == pytest.approx(5.0)
        assert m.n_calls == 1
        assert m.n_hits == 1

    def test_default_key_distinguishes_dtype_and_shape(self):
        from repro.metrics.cache import _default_key as probe
        a64 = np.array([1.0, 2.0])
        a32 = np.array([1.0, 2.0], dtype=np.float32)
        assert probe(a64) != probe(a32)
        assert probe(np.array([[1.0, 2.0]])) != probe(a64)
        assert probe("abc") == "abc"

    def test_default_cache_pickles(self):
        import pickle

        m = CachedDistance(EditDistance())
        m.distance("kitten", "sitting")
        clone = pickle.loads(pickle.dumps(m))
        assert clone.distance("kitten", "sitting") == 3.0

    def test_pairwise_uses_batched_rows(self):
        gathers = []

        class SpyMetric(EditDistance):
            def one_to_many(self, obj, objects):
                gathers.append(len(objects))
                return super().one_to_many(obj, objects)

        m = CachedDistance(SpyMetric())
        m.pairwise(["a", "ab", "abc", "abcd"])
        # Row-batched: one gather per leading row over its trailing objects.
        assert gathers == [3, 2, 1]
        assert m.n_calls == 6
