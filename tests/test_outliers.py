"""Unit tests for the optional BIRCH-style outlier handling."""

import numpy as np
import pytest

from repro import BUBBLE
from repro.core.bubble import BubblePolicy
from repro.core.cftree import CFTree
from repro.exceptions import ParameterError
from repro.metrics import EuclideanDistance


def noisy_blobs(rng, n_noise=30):
    """Two dense blobs plus scattered noise points."""
    pts = []
    for c in (np.array([0.0, 0.0]), np.array([50.0, 50.0])):
        pts.extend(list(c + 0.5 * rng.normal(size=(150, 2))))
    pts.extend(list(rng.uniform(-200, 250, size=(n_noise, 2))))
    order = rng.permutation(len(pts))
    return [pts[i] for i in order]


class TestValidation:
    def test_rejects_bad_fraction(self, euclidean):
        policy = BubblePolicy(euclidean)
        with pytest.raises(ParameterError):
            CFTree(policy, outlier_fraction=0.0)
        with pytest.raises(ParameterError):
            CFTree(policy, outlier_fraction=1.0)
        with pytest.raises(ParameterError):
            CFTree(policy, outlier_fraction=-0.5)

    def test_disabled_by_default(self, euclidean, rng):
        model = BUBBLE(euclidean, max_nodes=8, seed=0).fit(noisy_blobs(rng))
        assert model.tree_.n_outliers_parked == 0


class TestParking:
    def test_rebuilds_park_small_clusters(self, rng):
        metric = EuclideanDistance()
        model = BUBBLE(
            metric, max_nodes=8, outlier_fraction=0.25, seed=0
        ).fit(noisy_blobs(rng))
        tree = model.tree_
        assert tree.n_rebuilds >= 1
        assert tree.n_outliers_parked > 0
        tree.check_invariants()

    def test_population_conserved_through_parking(self, rng):
        pts = noisy_blobs(rng)
        metric = EuclideanDistance()
        model = BUBBLE(metric, max_nodes=8, outlier_fraction=0.25, seed=0).fit(pts)
        tree = model.tree_
        in_tree = sum(f.n for f in tree.leaf_features())
        parked = sum(f.n for f in tree.outliers)
        assert in_tree + parked == len(pts)

    def test_reabsorb_empties_parked_list_population(self, rng):
        metric = EuclideanDistance()
        policy = BubblePolicy(metric, representation_number=4, sample_size=10, seed=0)
        tree = CFTree(
            policy, branching_factor=4, max_nodes=6, outlier_fraction=0.25, seed=0
        )
        for p in noisy_blobs(rng):
            tree.insert(p)
        parked_before = len(tree.outliers)
        reabsorbed = tree.reabsorb_outliers()
        assert reabsorbed == parked_before
        tree.check_invariants()

    def test_dense_clusters_survive_parking(self, rng):
        pts = noisy_blobs(rng)
        metric = EuclideanDistance()
        model = BUBBLE(metric, max_nodes=8, outlier_fraction=0.25, seed=0).fit(pts)
        clustroids = np.asarray(model.clustroids_)
        for c in (np.array([0.0, 0.0]), np.array([50.0, 50.0])):
            assert np.min(np.linalg.norm(clustroids - c, axis=1)) < 2.0

    def test_uniform_data_parks_nothing_catastrophic(self, rng):
        # With all clusters the same size, the fraction cutoff parks little.
        pts = list(rng.normal(size=(200, 2)) * 0.01)
        metric = EuclideanDistance()
        model = BUBBLE(metric, max_nodes=8, outlier_fraction=0.25, seed=0).fit(pts)
        assert sum(s.n for s in model.subclusters_) == 200
