"""Unit tests for FastMap: embedding quality, incremental mapping, NCD cost."""

import numpy as np
import pytest

from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.fastmap import FastMap, stress
from repro.metrics import EuclideanDistance, FunctionDistance


def euclidean_points(seed, n=40, dim=3):
    return list(np.random.default_rng(seed).normal(size=(n, dim)))


class TestFit:
    def test_embedding_shape(self):
        pts = euclidean_points(0)
        fm = FastMap(EuclideanDistance(), k=3, seed=0)
        images = fm.fit(pts)
        assert images.shape == (40, 3)
        assert fm.embedding_ is images

    def test_empty_raises(self):
        with pytest.raises(EmptyDatasetError):
            FastMap(EuclideanDistance(), k=2, seed=0).fit([])

    def test_param_validation(self):
        with pytest.raises(ParameterError):
            FastMap(EuclideanDistance(), k=0)
        with pytest.raises(ParameterError):
            FastMap(EuclideanDistance(), k=2, iterations=0)
        with pytest.raises(ParameterError):
            FastMap(lambda a, b: 0, k=2)

    def test_preserves_euclidean_distances_with_full_dim(self):
        # Euclidean data embedded into its own dimensionality: low stress.
        pts = euclidean_points(1, n=30, dim=2)
        metric = EuclideanDistance()
        fm = FastMap(metric, k=2, iterations=2, seed=1)
        images = fm.fit(pts)
        s = stress(pts, images, EuclideanDistance())
        assert s < 0.15

    def test_exact_for_collinear_points(self):
        pts = [np.array([float(i), 0.0]) for i in range(10)]
        fm = FastMap(EuclideanDistance(), k=1, seed=0)
        images = fm.fit(pts)
        dm = np.abs(images[:, 0][:, None] - images[:, 0][None, :])
        true = np.abs(np.arange(10)[:, None] - np.arange(10)[None, :]).astype(float)
        np.testing.assert_allclose(dm, true, atol=1e-9)

    def test_identical_objects_degenerate_axis(self):
        pts = [np.zeros(2)] * 5
        fm = FastMap(EuclideanDistance(), k=2, seed=0)
        images = fm.fit(pts)
        np.testing.assert_allclose(images, 0.0)
        assert fm.axis_lengths_ == [0.0, 0.0]

    def test_single_object(self):
        fm = FastMap(EuclideanDistance(), k=2, seed=0)
        images = fm.fit([np.array([1.0, 2.0])])
        assert images.shape == (1, 2)


class TestTransform:
    def test_requires_fit(self):
        fm = FastMap(EuclideanDistance(), k=2, seed=0)
        with pytest.raises(NotFittedError):
            fm.transform(np.zeros(2))

    def test_transform_consistent_with_fit(self):
        # Mapping a fitted object incrementally should land near its image.
        pts = euclidean_points(2, n=25, dim=2)
        fm = FastMap(EuclideanDistance(), k=2, iterations=2, seed=2)
        images = fm.fit(pts)
        for i in [0, 7, 19]:
            v = fm.transform(pts[i])
            assert np.linalg.norm(v - images[i]) < 1e-6

    def test_transform_costs_2k_calls(self):
        pts = euclidean_points(3, n=20, dim=3)
        metric = EuclideanDistance()
        fm = FastMap(metric, k=3, seed=3)
        fm.fit(pts)
        before = metric.n_calls
        fm.transform(np.zeros(3))
        assert metric.n_calls - before == 2 * 3
        assert fm.n_pivot_calls_per_object == 6

    def test_transform_many(self):
        pts = euclidean_points(4, n=15, dim=2)
        fm = FastMap(EuclideanDistance(), k=2, seed=4)
        fm.fit(pts)
        out = fm.transform_many(pts[:5])
        assert out.shape == (5, 2)

    def test_transform_many_empty(self):
        pts = euclidean_points(5, n=10, dim=2)
        fm = FastMap(EuclideanDistance(), k=2, seed=5)
        fm.fit(pts)
        assert fm.transform_many([]).shape == (0, 2)

    def test_new_object_distance_preserved(self):
        rng = np.random.default_rng(6)
        pts = list(rng.normal(size=(30, 2)))
        metric = EuclideanDistance()
        fm = FastMap(metric, k=2, iterations=2, seed=6)
        images = fm.fit(pts)
        new = rng.normal(size=2)
        v = fm.transform(new)
        # Image-space distances to fitted objects approximate true ones.
        true = np.array([float(np.linalg.norm(new - p)) for p in pts])
        approx = np.linalg.norm(images - v, axis=1)
        rel_err = np.abs(true - approx) / (true + 1e-9)
        assert np.median(rel_err) < 0.25


class TestCostModel:
    def test_fit_linear_in_n(self):
        metric = EuclideanDistance()
        pts = euclidean_points(7, n=50, dim=2)
        fm = FastMap(metric, k=2, iterations=1, seed=7)
        fm.fit(pts)
        # Per axis: 2 pivot scans + 1 projection scan of N objects each,
        # i.e. <= (2c + 1) * N * k (paper: "3Nkc").
        assert metric.n_calls <= (2 * 1 + 1) * 50 * 2

    def test_works_on_non_euclidean_metric(self):
        metric = FunctionDistance(lambda a, b: abs(a - b) ** 0.5, name="sqrt-diff")
        objs = list(range(20))
        fm = FastMap(metric, k=2, seed=8)
        images = fm.fit(objs)
        assert images.shape == (20, 2)
        assert np.all(np.isfinite(images))
