"""Observability layer: tracer, sinks, NCD attribution, stats snapshots.

The two load-bearing guarantees, each pinned by a regression test here:

* **conservation** — the site-attributed NCD histogram partitions the
  metric's global counter *exactly* (sum over sites == ``n_calls``), for
  BUBBLE, BUBBLE-FM, and wrapped metrics alike;
* **zero disabled-path overhead** — the default :data:`NULL_TRACER`
  changes neither the distance-call count nor (beyond a loose factor) the
  wall time of a scan.
"""

from __future__ import annotations

import io
import json
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.preclusterer import BUBBLE, BUBBLEFM
from repro.datasets import make_ds2
from repro.exceptions import ParameterError
from repro.metrics import EuclideanDistance
from repro.metrics.base import (
    CallLedger,
    activate_ledger,
    active_ledger,
    deactivate_ledger,
    pop_site,
    push_site,
)
from repro.metrics.cache import CachedDistance
from repro.observability import (
    NULL_TRACER,
    JsonlSink,
    ListSink,
    NullTracer,
    StatsSnapshot,
    SummarySink,
    Tracer,
    format_summary,
)


def _ds2_objects(n=500, seed=13):
    return make_ds2(n_points=n, seed=seed).as_objects()


def _check_event_stream(events):
    """Assert the enter/exit events form a well-nested, monotone trace."""
    stack = []
    last_seq = -1
    last_ncd = 0
    for ev in events:
        if ev["ev"] == "summary":
            continue
        assert ev["ncd"] >= last_ncd, "ledger total must be monotone"
        last_ncd = ev["ncd"]
        if ev["ev"] == "enter":
            assert ev["seq"] > last_seq, "span seq must be strictly increasing"
            last_seq = ev["seq"]
            assert ev["depth"] == len(stack)
            stack.append((ev["span"], ev["seq"]))
        else:
            assert ev["ev"] == "exit"
            assert stack, f"exit {ev['span']!r} with no open span"
            name, seq = stack.pop()
            assert name == ev["span"], "exit must match the innermost open span"
            assert seq == ev["seq"]
            assert ev["dncd"] >= 0
            assert ev["dt"] >= 0
    assert not stack, f"spans left open: {[s for s, _ in stack]}"


# ----------------------------------------------------------------------
# Satellite 1: conservation — sites partition the global NCD counter
# ----------------------------------------------------------------------
class TestConservation:
    @pytest.mark.parametrize("cls", [BUBBLE, BUBBLEFM])
    def test_sites_sum_to_metric_counter(self, cls):
        metric = EuclideanDistance()
        tracer = Tracer()
        model = cls(metric, max_nodes=25, seed=3, tracer=tracer)
        model.fit(_ds2_objects())
        model.assign(_ds2_objects(n=100, seed=14))
        by_site = tracer.calls_by_site
        assert sum(by_site.values()) == tracer.total_calls == metric.n_calls
        # The taxonomy actually fired: routing and maintenance sites exist.
        assert by_site["leaf-d0"] > 0
        assert by_site["redistribute"] > 0
        if cls is BUBBLEFM:
            assert by_site["fastmap-refit"] > 0

    def test_conservation_under_wrapped_metric(self):
        # CachedDistance counts through the inner metric's public API, so
        # attribution must conserve against the *wrapper's* counter too.
        metric = CachedDistance(EuclideanDistance(), key=lambda v: v.tobytes())
        tracer = Tracer()
        model = BUBBLE(metric, max_nodes=20, seed=5, tracer=tracer)
        model.fit(_ds2_objects(n=300, seed=21))
        assert sum(tracer.calls_by_site.values()) == metric.n_calls

    def test_untraced_metrics_do_not_leak_into_ledger(self):
        tracer = Tracer()
        outside = EuclideanDistance()
        with tracer:
            pass  # nothing measured while active
        outside.distance(np.zeros(2), np.ones(2))
        assert tracer.total_calls == 0


# ----------------------------------------------------------------------
# Satellite 2: trace well-formedness under splits and rebuilds (property)
# ----------------------------------------------------------------------
class TestTraceProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=60, max_value=160),
        max_nodes=st.integers(min_value=5, max_value=12),
    )
    def test_events_always_well_nested(self, seed, n, max_nodes):
        # Tiny node budgets and branching force splits and repeated
        # rebuilds, the paths where span pairing could break.
        rng = np.random.default_rng(seed)
        objs = list(rng.uniform(0, 50, size=(n, 2)))
        sink = ListSink()
        tracer = Tracer(sinks=[sink])
        metric = EuclideanDistance()
        model = BUBBLE(
            metric, branching_factor=3, max_nodes=max_nodes, seed=seed, tracer=tracer
        )
        model.fit(objs)
        tracer.close()
        _check_event_stream(sink.events)
        assert sum(tracer.calls_by_site.values()) == metric.n_calls

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_events_well_nested_for_bubble_fm(self, seed):
        rng = np.random.default_rng(seed)
        objs = list(rng.normal(size=(120, 2)))
        sink = ListSink()
        tracer = Tracer(sinks=[sink])
        model = BUBBLEFM(
            EuclideanDistance(), branching_factor=4, max_nodes=8, seed=seed, tracer=tracer
        )
        model.fit(objs)
        tracer.close()
        _check_event_stream(sink.events)


# ----------------------------------------------------------------------
# Satellite 3: the disabled path is free
# ----------------------------------------------------------------------
class TestOverheadGuard:
    def _build(self, tracer):
        metric = EuclideanDistance()
        model = BUBBLE(metric, max_nodes=30, seed=9, tracer=tracer)
        start = time.perf_counter()
        model.fit(_ds2_objects(n=2_000, seed=17))
        return metric.n_calls, time.perf_counter() - start

    def test_null_tracer_adds_zero_distance_calls(self):
        untraced, t_plain = self._build(NULL_TRACER)
        nulled, t_null = self._build(NullTracer())
        traced_tracer = Tracer()
        metric = EuclideanDistance()
        model = BUBBLE(metric, max_nodes=30, seed=9, tracer=traced_tracer)
        model.fit(_ds2_objects(n=2_000, seed=17))
        assert untraced == nulled == metric.n_calls
        assert sum(traced_tracer.calls_by_site.values()) == metric.n_calls
        # Loose wall-clock guard only: the null path must not be pathologically
        # slower than itself run twice (catches accidental O(n) tracer work).
        assert t_null < 10 * max(t_plain, 1e-3)


# ----------------------------------------------------------------------
# Tracer / ledger mechanics
# ----------------------------------------------------------------------
class TestLedger:
    def test_push_pop_are_noops_without_active_ledger(self):
        assert active_ledger() is None
        push_site("anywhere")
        pop_site()  # must not raise
        assert active_ledger() is None

    def test_pop_tolerates_empty_stack(self):
        ledger = CallLedger()
        previous = activate_ledger(ledger)
        try:
            pop_site()  # reprolint: disable=RPL102 -- exercises the empty-stack tolerance on purpose
            assert ledger.stack == []
        finally:
            deactivate_ledger(previous)

    def test_charge_books_to_innermost_site(self):
        ledger = CallLedger()
        ledger.charge(2)
        ledger.stack.append("outer")
        ledger.charge(3)
        ledger.stack.append("inner")
        ledger.charge(5)
        assert ledger.by_site == {"unattributed": 2, "outer": 3, "inner": 5}
        assert ledger.total == 10

    def test_activation_nests_and_restores_previous(self):
        first = Tracer()
        second = Tracer()
        with first:
            with second:
                assert active_ledger() is second.ledger
            assert active_ledger() is first.ledger
        assert active_ledger() is None

    def test_over_deactivation_raises(self):
        tracer = Tracer()
        with pytest.raises(ParameterError):
            tracer._deactivate()


class TestTracer:
    def test_out_of_order_span_exit_raises(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(ParameterError):
            outer.__exit__(None, None, None)

    def test_span_aggregates_are_inclusive(self):
        tracer = Tracer()
        metric = EuclideanDistance()
        a, b = np.zeros(2), np.ones(2)
        with tracer:
            with tracer.span("outer"):
                metric.distance(a, b)
                with tracer.span("inner"):
                    metric.distance(a, b)
        spans = tracer.span_aggregates()
        assert spans["outer"]["ncd"] == 2  # includes the nested span's call
        assert spans["inner"]["ncd"] == 1
        assert tracer.calls_by_site == {"outer": 1, "inner": 1}  # disjoint

    def test_close_is_idempotent_and_emits_summary(self):
        sink = ListSink()
        tracer = Tracer(sinks=[sink])
        with tracer, tracer.span("phase"):
            pass
        tracer.close()
        tracer.close()
        summaries = [e for e in sink.events if e["ev"] == "summary"]
        assert len(summaries) == 1
        assert summaries[0]["spans"]["phase"]["count"] == 1

    def test_null_tracer_contexts_are_shared_singletons(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        assert NULL_TRACER.activation() is NULL_TRACER.span("c")
        assert NULL_TRACER.enabled is False
        NULL_TRACER.close()


class TestSinks:
    def test_jsonl_sink_round_trips_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sinks=[JsonlSink(str(path))])
        metric = EuclideanDistance()
        with tracer, tracer.span("work"):
            metric.distance(np.zeros(2), np.ones(2))
        tracer.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        _check_event_stream(events)
        assert events[-1]["ev"] == "summary"
        assert events[-1]["ncd_by_site"] == {"work": 1}

    def test_jsonl_sink_on_stream_does_not_close_it(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        sink.emit({"ev": "enter", "span": "x"})
        sink.close()
        assert not stream.closed
        assert json.loads(stream.getvalue()) == {"ev": "enter", "span": "x"}

    def test_summary_sink_prints_table(self):
        stream = io.StringIO()
        tracer = Tracer(sinks=[SummarySink(stream)])
        metric = EuclideanDistance()
        with tracer, tracer.span("scan"):
            metric.distance(np.zeros(2), np.ones(2))
        tracer.close()
        text = stream.getvalue()
        assert "NCD by site" in text
        assert "scan" in text

    def test_format_summary_handles_empty_trace(self):
        assert "distance calls: 0" in format_summary({"ncd_total": 0})


class TestStatsSnapshot:
    def test_from_model_reports_tree_and_sites(self):
        tracer = Tracer()
        metric = EuclideanDistance()
        model = BUBBLE(metric, max_nodes=20, seed=2, tracer=tracer)
        model.fit(_ds2_objects(n=300, seed=23))
        snap = StatsSnapshot.from_model(model)
        assert snap.n_objects == 300
        assert snap.n_nodes == model.tree_.n_nodes
        assert snap.n_leaves >= 1
        assert snap.max_nodes == 20
        assert snap.m_pressure == pytest.approx(model.tree_.n_nodes / 20)
        assert snap.ncd_total == metric.n_calls
        assert sum(snap.ncd_by_site.values()) == metric.n_calls
        doc = snap.to_dict()
        assert json.loads(json.dumps(doc)) == doc
        text = snap.format()
        assert "M-pressure" in text and "NCD by site" in text

    def test_cache_discovered_through_wrapper_chain(self):
        metric = CachedDistance(EuclideanDistance(), key=lambda v: v.tobytes())
        model = BUBBLE(metric, max_nodes=20, seed=2)
        model.fit(_ds2_objects(n=200, seed=29))
        snap = StatsSnapshot.from_model(model)
        assert snap.cache_misses == metric.n_calls
        assert snap.cache_hits == metric.n_hits

    def test_checkpoint_strips_live_tracer(self, tmp_path):
        from repro.persistence import load_checkpoint, save_checkpoint

        tracer = Tracer(sinks=[JsonlSink(str(tmp_path / "t.jsonl"))])
        metric = EuclideanDistance()
        model = BUBBLE(metric, max_nodes=15, seed=6, tracer=tracer)
        model.partial_fit(_ds2_objects(n=150, seed=31))
        path = tmp_path / "scan.ckpt"
        save_checkpoint(path, model.tree_, cursor=150)
        tracer.close()
        ck = load_checkpoint(path, metric=EuclideanDistance())
        assert ck.tree.tracer is NULL_TRACER
        assert ck.tree.policy.tracer is NULL_TRACER
