"""Unit tests for the experiments package: results containers, config, and
smoke-scale runs of each experiment function."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.experiments import (
    SCALES,
    Scale,
    TableResult,
    run_ablation_clarans,
    run_ablation_labeling,
    run_ablation_mappers,
    run_table1b_strings,
    run_table3,
)
from repro.experiments.config import paper_max_nodes, resolve_scale
from repro.experiments.results import load_results, save_results

TINY = Scale(
    name="tiny",
    table_points=600,
    sweep_points=(200, 400),
    sweep_clusters=(4, 8),
    fig6_points=400,
    string_classes=15,
    string_records=150,
    ablation_points=600,
)


class TestTableResult:
    def test_row_width_validated(self):
        with pytest.raises(ParameterError):
            TableResult("T", "d", ["a", "b"], [[1]])

    def test_render_contains_everything(self):
        r = TableResult("T9", "demo", ["x", "y"], [[1, 2.5], [3, 4.0]])
        out = r.render()
        assert "T9" in out and "demo" in out
        assert "2.5" in out

    def test_column_access(self):
        r = TableResult("T", "d", ["x", "y"], [[1, 2], [3, 4]])
        assert r.column("y") == [2, 4]
        with pytest.raises(ParameterError):
            r.column("z")

    def test_row_map(self):
        r = TableResult("T", "d", ["name", "v"], [["a", 1], ["b", 2]])
        assert r.row_map()["b"] == ["b", 2]
        assert r.row_map(key_column="name")["a"][1] == 1

    def test_round_trip(self, tmp_path):
        r = TableResult("T", "d", ["x"], [[1.5]], context={"seed": 3})
        path = tmp_path / "r.json"
        save_results(path, [r])
        [back] = load_results(path)
        assert back.experiment == "T"
        assert back.rows == [[1.5]]
        assert back.context == {"seed": 3}

    def test_empty_rows_render(self):
        r = TableResult("T", "d", ["x"], [])
        assert "T" in r.render()


class TestConfig:
    def test_presets_exist(self):
        assert set(SCALES) == {"smoke", "laptop", "paper"}

    def test_resolve_by_name(self):
        assert resolve_scale("smoke").name == "smoke"

    def test_resolve_passthrough(self):
        assert resolve_scale(TINY) is TINY

    def test_resolve_unknown(self):
        with pytest.raises(ParameterError):
            resolve_scale("galactic")

    def test_paper_max_nodes_monotone(self):
        values = [paper_max_nodes(k) for k in (10, 50, 100, 250)]
        assert values == sorted(values)
        assert values[0] >= 8

    def test_scales_ordered_by_size(self):
        assert (
            SCALES["smoke"].table_points
            < SCALES["laptop"].table_points
            < SCALES["paper"].table_points
        )


class TestSmokeRuns:
    """Each experiment function runs end to end at tiny scale and produces
    a structurally complete result. (The laptop-scale shape assertions live
    in benchmarks/.)"""

    def test_table1b(self):
        r = run_table1b_strings(scale=TINY)
        assert r.experiment == "Table 1b"
        assert len(r.rows) == 2
        assert all(0.0 <= row[1] <= 1.0 for row in r.rows)

    def test_table3(self):
        r = run_table3(scale=TINY)
        assert len(r.rows) == 3
        assert r.columns[0] == "algorithm"
        for row in r.rows:
            assert row[1] > 0  # clusters
            assert row[4] > 0  # NCD

    def test_ablation_mappers(self):
        r = run_ablation_mappers(scale=TINY)
        assert {row[0] for row in r.rows} == {"fastmap", "landmark"}

    def test_ablation_labeling(self):
        r = run_ablation_labeling(scale=TINY)
        by = r.row_map()
        assert by["linear"][3] == 1.0  # self-agreement
        assert set(by) == {"linear", "tree", "mtree"}

    def test_ablation_clarans(self):
        r = run_ablation_clarans(scale=TINY)
        assert len(r.rows) == 2
        assert r.context["scale"] == "tiny"


class TestFigureSmokeRuns:
    def test_fig123(self):
        from repro.experiments import run_fig123_ds2_centers

        r = run_fig123_ds2_centers(scale=TINY)
        assert len(r.rows) == 3
        # Raw coordinates preserved for replotting.
        assert set(r.context["centers"]) == {row[0] for row in r.rows}
        assert len(r.context["true_centers"]) == 100

    def test_fig4(self):
        from repro.experiments import run_fig4_time_vs_points

        r = run_fig4_time_vs_points(scale=TINY)
        assert r.column("#points") == [200, 400]
        assert all(t > 0 for t in r.column("BUBBLE (s)"))

    def test_fig5(self):
        from repro.experiments import run_fig5_ncd_vs_points

        r = run_fig5_ncd_vs_points(scale=TINY, seeds=(6,))
        assert all(v > 0 for v in r.column("BUBBLE NCD"))
        assert all(v > 0 for v in r.column("BUBBLE-FM NCD"))

    def test_fig6(self):
        from repro.experiments import run_fig6_time_vs_clusters

        r = run_fig6_time_vs_clusters(scale=TINY)
        assert r.column("#clusters") == [4, 8]

    def test_table1(self):
        from repro.experiments import run_table1

        r = run_table1(scale=TINY)
        assert [row[0] for row in r.rows] == ["DS1", "DS2", "DS20d.50c"]
        for row in r.rows:
            assert all(v > 0 for v in row[1:4])

    def test_table2(self):
        from repro.experiments import run_table2

        r = run_table2(scale=TINY)
        assert {row[0] for row in r.rows} == {"bubble", "bubble-fm"}

    def test_indexes(self):
        from repro.experiments import run_ablation_indexes

        r = run_ablation_indexes(scale=TINY)
        assert {row[0] for row in r.rows} == {
            "linear scan",
            "m-tree",
            "vp-tree",
            "cf-tree",
        }
        assert all(row[5] == 1.0 for row in r.rows)  # exactness
